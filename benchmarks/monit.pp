# monit — process supervisor (deterministic in the paper's study).

package { 'monit': ensure => present }

file { '/etc/monit/monitrc':
  content => 'set daemon 120 set logfile /var/log/monit.log',
  require => Package['monit'],
}

service { 'monit':
  ensure  => running,
  enable  => true,
  require   => Package['monit'],
  subscribe => File['/etc/monit/monitrc'],
}
