# logstash — log pipeline (fixed version).

package { 'openjdk-7-jre-headless': ensure => present }

package { 'logstash':
  ensure  => present,
  require => Package['openjdk-7-jre-headless'],
}

file { '/etc/logstash/conf.d/input-syslog.conf':
  content => 'input tcp port 5000 codec json',
  require => Package['logstash'],
}

service { 'logstash':
  ensure    => running,
  require   => Package['logstash'],
  subscribe => File['/etc/logstash/conf.d/input-syslog.conf'],
}
