# bind — DNS server (deterministic in the paper's study).

package { 'bind9': ensure => present }

file { '/etc/bind/named.conf.local':
  content => 'zone example.com in type master file db.example.com',
  require => Package['bind9'],
}

service { 'bind9':
  ensure  => running,
  require   => Package['bind9'],
  subscribe => File['/etc/bind/named.conf.local'],
}
