# hosting — a LAMP-style shared-hosting node (deterministic in the
# paper's study).

package { 'apache2': ensure => present }

package { 'mysql-server': ensure => present }

package { 'php5':
  ensure  => present,
  require => Package['apache2'],
}

file { '/etc/apache2/sites-available/000-default.conf':
  content => 'VirtualHost 80 DocumentRoot /var/www/html',
  require => Package['apache2'],
}

file { '/var/www/html/index.html':
  content => 'Welcome to example hosting',
  require => Package['apache2'],
}

service { 'apache2':
  ensure  => running,
  enable  => true,
  require   => Package['php5'],
  subscribe => File['/etc/apache2/sites-available/000-default.conf'],
}

service { 'mysql':
  ensure  => running,
  require => Package['mysql-server'],
}
