# amavis — mail content filter gluing postfix, spamassassin, and clamav
# (deterministic in the paper's study; the largest benchmark by package
# footprint, which is what makes path pruning shine in fig. 11a).

package { 'postfix': ensure => present }

package { 'spamassassin': ensure => present }

package { 'clamav': ensure => present }

package { 'amavisd-new':
  ensure  => present,
  require => [Package['postfix'], Package['spamassassin'], Package['clamav']],
}

file { '/etc/amavis/conf.d/50-user':
  content => 'use strict 1 bypass_virus_checks_maps 0',
  require => Package['amavisd-new'],
}

service { 'amavis':
  ensure  => running,
  require   => Package['amavisd-new'],
  subscribe => File['/etc/amavis/conf.d/50-user'],
}
