# irc — ircd-hybrid server (as found: non-deterministic).
# BUG: the ircd configuration is not ordered after Package['ircd-hybrid'],
# which ships /etc/ircd-hybrid/ircd.conf; the writes race, and without the
# package the target directory does not exist.

package { 'ircd-hybrid': ensure => present }

file { '/etc/ircd-hybrid/ircd.conf':
  content => 'serverinfo name irc.example.com description example network',
}

service { 'ircd-hybrid':
  ensure  => running,
  require => Package['ircd-hybrid'],
}
