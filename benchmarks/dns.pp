# dns — caching resolver on dnsmasq (fixed version).

package { 'dnsmasq': ensure => present }

file { '/etc/dnsmasq.conf':
  content => 'cache-size=1000 no-resolv server=8.8.8.8',
  require => Package['dnsmasq'],
}

service { 'dnsmasq':
  ensure    => running,
  require   => Package['dnsmasq'],
  subscribe => File['/etc/dnsmasq.conf'],
}
