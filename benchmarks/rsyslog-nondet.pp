# rsyslog — system logging (as found: non-deterministic).
# BUG: /etc/rsyslog.d/50-default.conf is not ordered after
# Package['rsyslog'], which ships the same file; the writes race.

package { 'rsyslog': ensure => present }

file { '/etc/rsyslog.d/50-default.conf':
  content => 'auth.log /var/log/auth.log syslog.all /var/log/syslog',
}

service { 'rsyslog':
  ensure  => running,
  require => Package['rsyslog'],
}
