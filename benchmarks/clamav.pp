# clamav — antivirus scanner and daemon (deterministic in the paper's
# study).

package { 'clamav-freshclam': ensure => present }

package { 'clamav':
  ensure  => present,
  require => Package['clamav-freshclam'],
}

package { 'clamav-daemon':
  ensure  => present,
  require => Package['clamav'],
}

file { '/etc/clamav/clamd.conf':
  content => 'LocalSocket /var/run/clamav/clamd.ctl MaxThreads 12',
  require => Package['clamav'],
}

service { 'clamav-daemon':
  ensure  => running,
  require   => Package['clamav-daemon'],
  subscribe => File['/etc/clamav/clamd.conf'],
}
