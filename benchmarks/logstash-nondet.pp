# logstash — log pipeline (as found: non-deterministic).
# BUG: the pipeline config under /etc/logstash/conf.d is not ordered after
# Package['logstash'], and only the package creates that directory.

package { 'openjdk-7-jre-headless': ensure => present }

package { 'logstash':
  ensure  => present,
  require => Package['openjdk-7-jre-headless'],
}

file { '/etc/logstash/conf.d/input-syslog.conf':
  content => 'input tcp port 5000 codec json',
}

service { 'logstash':
  ensure  => running,
  require => Package['logstash'],
}
