# ntp — network time daemon (as found: non-deterministic).
# BUG: /etc/ntp.conf is not ordered after Package['ntp']. The package also
# ships /etc/ntp.conf, so one order ends with the distribution default and
# the other with our managed config — and if /etc does not exist yet, the
# file resource errors outright.

package { 'ntp': ensure => present }

file { '/etc/ntp.conf':
  content => 'driftfile /var/lib/ntp/ntp.drift server 0.ubuntu.pool.ntp.org iburst',
}

service { 'ntp':
  ensure  => running,
  require => Package['ntp'],
}
