# nginx — web server (deterministic in the paper's study).

package { 'nginx': ensure => present }

file { '/etc/nginx/nginx.conf':
  content => 'worker_processes 4; include /etc/nginx/sites-enabled/default;',
  require => Package['nginx'],
}

service { 'nginx':
  ensure    => running,
  enable    => true,
  require   => Package['nginx'],
  subscribe => File['/etc/nginx/nginx.conf'],
}
