# rsyslog — system logging (fixed version).

package { 'rsyslog': ensure => present }

file { '/etc/rsyslog.d/50-default.conf':
  content => 'auth.log /var/log/auth.log syslog.all /var/log/syslog',
  require => Package['rsyslog'],
}

service { 'rsyslog':
  ensure    => running,
  require   => Package['rsyslog'],
  subscribe => File['/etc/rsyslog.d/50-default.conf'],
}
