# xinetd — super-server (as found: non-deterministic).
# BUG: the drop-in under /etc/xinetd.d is not ordered after
# Package['xinetd'], and only the package creates that directory — one
# order errors out, the other succeeds.

package { 'xinetd': ensure => present }

file { '/etc/xinetd.d/tftp':
  content => 'service tftp socket_type dgram wait yes disable no',
}

service { 'xinetd':
  ensure  => running,
  require => Package['xinetd'],
}
