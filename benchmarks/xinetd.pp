# xinetd — super-server (fixed version).

package { 'xinetd': ensure => present }

file { '/etc/xinetd.d/tftp':
  content => 'service tftp socket_type dgram wait yes disable no',
  require => Package['xinetd'],
}

service { 'xinetd':
  ensure    => running,
  require   => Package['xinetd'],
  subscribe => File['/etc/xinetd.d/tftp'],
}
