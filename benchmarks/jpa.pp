# jpa — a Java web application stack on tomcat + maven (deterministic in
# the paper's study).

package { 'openjdk-7-jre-headless': ensure => present }

package { 'openjdk-7-jdk':
  ensure  => present,
  require => Package['openjdk-7-jre-headless'],
}

package { 'maven':
  ensure  => present,
  require => Package['openjdk-7-jdk'],
}

package { 'tomcat7':
  ensure  => present,
  require => Package['openjdk-7-jre-headless'],
}

file { '/etc/tomcat7/tomcat-users.xml':
  content => 'role manager-gui user deployer password secret',
  require => Package['tomcat7'],
}

file { '/etc/maven/settings.xml':
  content => 'localRepository /srv/m2 offline false',
  require => Package['maven'],
}

service { 'tomcat7':
  ensure  => running,
  require   => Package['tomcat7'],
  subscribe => File['/etc/tomcat7/tomcat-users.xml'],
}
