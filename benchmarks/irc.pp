# irc — ircd-hybrid server (fixed version).

package { 'ircd-hybrid': ensure => present }

file { '/etc/ircd-hybrid/ircd.conf':
  content => 'serverinfo name irc.example.com description example network',
  require => Package['ircd-hybrid'],
}

service { 'ircd-hybrid':
  ensure    => running,
  require   => Package['ircd-hybrid'],
  subscribe => File['/etc/ircd-hybrid/ircd.conf'],
}
