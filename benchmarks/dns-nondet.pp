# dns — caching resolver on dnsmasq (as found: non-deterministic).
# BUG: /etc/dnsmasq.conf is not ordered after Package['dnsmasq'], which
# also ships that file; the two writes race.

package { 'dnsmasq': ensure => present }

file { '/etc/dnsmasq.conf':
  content => 'cache-size=1000 no-resolv server=8.8.8.8',
}

service { 'dnsmasq':
  ensure  => running,
  require => Package['dnsmasq'],
}
