# ntp — network time daemon (fixed version).
# The config file and service are explicitly ordered after the package,
# which is the repair Rehearsal suggests for ntp-nondet.pp.

package { 'ntp': ensure => present }

file { '/etc/ntp.conf':
  content => 'driftfile /var/lib/ntp/ntp.drift server 0.ubuntu.pool.ntp.org iburst',
  require => Package['ntp'],
}

service { 'ntp':
  ensure  => running,
  require   => Package['ntp'],
  subscribe => File['/etc/ntp.conf'],
}
