//! Integration tests for the `rehearsal` command-line tool.

use std::path::Path;
use std::process::Command;

fn rehearsal() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rehearsal"))
}

fn manifest(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("benchmarks")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn check_deterministic_manifest_exits_zero() {
    let out = rehearsal()
        .args(["check", &manifest("ntp.pp")])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("deterministic"), "{stdout}");
    assert!(stdout.contains("idempotent"), "{stdout}");
}

#[test]
fn check_nondeterministic_manifest_exits_nonzero() {
    let out = rehearsal()
        .args(["check", &manifest("ntp-nondet.pp")])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success());
    assert!(stdout.contains("NON-DETERMINISTIC"), "{stdout}");
    assert!(
        stdout.contains("order A"),
        "counterexample printed: {stdout}"
    );
    assert!(stdout.contains("counterexample initial state"), "{stdout}");
}

#[test]
fn graph_command_prints_resources_and_edges() {
    let out = rehearsal()
        .args(["graph", &manifest("ntp.pp")])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("Package[ntp]"), "{stdout}");
    assert!(stdout.contains("->"), "{stdout}");
}

#[test]
fn idempotence_command() {
    let out = rehearsal()
        .args(["idempotence", &manifest("monit.pp")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("idempotent"));
}

#[test]
fn platform_flag_is_accepted() {
    let out = rehearsal()
        .args(["check", &manifest("ntp.pp"), "--platform", "ubuntu"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
}

#[test]
fn unknown_platform_is_rejected() {
    let out = rehearsal()
        .args(["check", &manifest("ntp.pp"), "--platform", "beos"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown platform"));
}

#[test]
fn missing_file_reports_error() {
    let out = rehearsal()
        .args(["check", "/no/such/manifest.pp"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_prints_usage() {
    let out = rehearsal().args(["--help"]).output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn ablation_flags_are_accepted() {
    let out = rehearsal()
        .args([
            "check",
            &manifest("monit.pp"),
            "--no-pruning",
            "--no-elimination",
            "--timeout",
            "60",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn repair_suggests_missing_dependency() {
    let out = rehearsal()
        .args(["repair", &manifest("ntp-nondet.pp")])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("repairable"), "{stdout}");
    assert!(
        stdout.contains("Package[ntp] -> File[/etc/ntp.conf]"),
        "the classic missing edge: {stdout}"
    );
}

#[test]
fn repair_on_deterministic_manifest() {
    let out = rehearsal()
        .args(["repair", &manifest("monit.pp")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("already deterministic"));
}

#[test]
fn apply_simulates_a_run() {
    let out = rehearsal()
        .args(["apply", &manifest("ntp.pp")])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("applied Package[ntp]"), "{stdout}");
    assert!(stdout.contains("final machine state:"), "{stdout}");
    assert!(stdout.contains("/etc/ntp.conf"), "{stdout}");
}

#[test]
fn apply_with_initial_state_file() {
    let dir = std::env::temp_dir().join("rehearsal-cli-apply");
    std::fs::create_dir_all(&dir).unwrap();
    let state = dir.join("initial.state");
    std::fs::write(
        &state,
        "/ dir
/etc dir
/etc/ntp.conf file stale
",
    )
    .unwrap();
    let out = rehearsal()
        .args([
            "apply",
            &manifest("ntp.pp"),
            "--state",
            state.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("driftfile"),
        "stale config replaced by ours: {stdout}"
    );
}

#[test]
fn parse_error_is_reported_with_position() {
    let dir = std::env::temp_dir().join("rehearsal-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.pp");
    std::fs::write(&bad, "package { 'x' ensure => present }").unwrap();
    let out = rehearsal()
        .args(["check", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parse error"), "{err}");
}
