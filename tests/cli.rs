//! Integration tests for the `rehearsal` command-line tool.

use std::path::Path;
use std::process::Command;

fn rehearsal() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rehearsal"))
}

fn manifest(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("benchmarks")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn check_deterministic_manifest_exits_zero() {
    let out = rehearsal()
        .args(["check", &manifest("ntp.pp")])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("deterministic"), "{stdout}");
    assert!(stdout.contains("idempotent"), "{stdout}");
}

#[test]
fn check_nondeterministic_manifest_exits_nonzero() {
    let out = rehearsal()
        .args(["check", &manifest("ntp-nondet.pp")])
        .env("NO_COLOR", "1")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stdout.contains("NON-DETERMINISTIC"), "{stdout}");
    assert!(
        stdout.contains("order A"),
        "counterexample printed: {stdout}"
    );
    assert!(stdout.contains("counterexample initial state"), "{stdout}");
    // The acceptance shape: a two-snippet race report pointing at both
    // racing resource declarations (findings go to stderr, like every
    // other diagnostic), preceded by the lint pass's R2001 advisory for
    // the same pair — two snippets each.
    assert!(stderr.contains("error[R3001]"), "{stderr}");
    assert!(stderr.contains("warning[R2001]"), "lint advisory: {stderr}");
    assert_eq!(
        stderr.matches("-->").count(),
        4,
        "both declarations rendered by both reports: {stderr}"
    );
    assert!(stderr.contains("this resource races with"), "{stderr}");
    assert!(
        !stdout.contains('\x1b') && !stderr.contains('\x1b'),
        "NO_COLOR suppresses ANSI: {stdout:?} {stderr:?}"
    );
}

#[test]
fn check_error_format_json_emits_machine_diagnostics() {
    let out = rehearsal()
        .args([
            "check",
            &manifest("ntp-nondet.pp"),
            "--error-format",
            "json",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The race finding is one compact JSON object on its own stderr line;
    // the classic verdict output on stdout stays parseable.
    let line = stderr
        .lines()
        .find(|l| l.starts_with('{') && l.contains("\"R3001\""))
        .unwrap_or_else(|| panic!("no JSON diagnostic line in {stderr}"));
    assert!(line.contains("\"severity\":\"error\""), "{line}");
    assert!(line.contains("\"primary\""), "{line}");
    assert!(line.contains("\"line\":"), "{line}");
    assert!(
        !stdout.lines().any(|l| l.starts_with('{')),
        "no JSON interleaved into the stdout dump: {stdout}"
    );
}

#[test]
fn graph_command_prints_resources_and_edges() {
    let out = rehearsal()
        .args(["graph", &manifest("ntp.pp")])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("Package[ntp]"), "{stdout}");
    assert!(stdout.contains("->"), "{stdout}");
}

#[test]
fn idempotence_command() {
    let out = rehearsal()
        .args(["idempotence", &manifest("monit.pp")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("idempotent"));
}

#[test]
fn platform_flag_is_accepted() {
    let out = rehearsal()
        .args(["check", &manifest("ntp.pp"), "--platform", "ubuntu"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
}

#[test]
fn unknown_platform_is_rejected() {
    let out = rehearsal()
        .args(["check", &manifest("ntp.pp"), "--platform", "beos"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown platform"));
}

#[test]
fn missing_file_reports_error() {
    let out = rehearsal()
        .args(["check", "/no/such/manifest.pp"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_prints_usage() {
    let out = rehearsal().args(["--help"]).output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn ablation_flags_are_accepted() {
    let out = rehearsal()
        .args([
            "check",
            &manifest("monit.pp"),
            "--no-pruning",
            "--no-elimination",
            "--timeout",
            "60",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn repair_suggests_missing_dependency() {
    let out = rehearsal()
        .args(["repair", &manifest("ntp-nondet.pp")])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("repairable"), "{stdout}");
    assert!(
        stdout.contains("Package[ntp] -> File[/etc/ntp.conf]"),
        "the classic missing edge: {stdout}"
    );
}

#[test]
fn repair_on_deterministic_manifest() {
    let out = rehearsal()
        .args(["repair", &manifest("monit.pp")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("already deterministic"));
}

#[test]
fn apply_simulates_a_run() {
    let out = rehearsal()
        .args(["apply", &manifest("ntp.pp")])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("applied Package[ntp]"), "{stdout}");
    assert!(stdout.contains("final machine state:"), "{stdout}");
    assert!(stdout.contains("/etc/ntp.conf"), "{stdout}");
}

#[test]
fn apply_with_initial_state_file() {
    let dir = std::env::temp_dir().join("rehearsal-cli-apply");
    std::fs::create_dir_all(&dir).unwrap();
    let state = dir.join("initial.state");
    std::fs::write(
        &state,
        "/ dir
/etc dir
/etc/ntp.conf file stale
",
    )
    .unwrap();
    let out = rehearsal()
        .args([
            "apply",
            &manifest("ntp.pp"),
            "--state",
            state.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("driftfile"),
        "stale config replaced by ours: {stdout}"
    );
}

#[test]
fn parse_error_is_reported_with_position() {
    let dir = std::env::temp_dir().join("rehearsal-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.pp");
    std::fs::write(&bad, "package { 'x' ensure => present }").unwrap();
    let out = rehearsal()
        .args(["check", bad.to_str().unwrap()])
        .env("NO_COLOR", "1")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parse error"), "{err}");
    // The error renders as a snippet with carets under the bad token.
    assert!(err.contains("error[R0001]"), "{err}");
    assert!(err.contains("bad.pp:1:15"), "{err}");
    assert!(err.contains("^^^^^^"), "{err}");
}

#[test]
fn fleet_annotations_print_under_github_actions() {
    let dir = std::env::temp_dir().join("rehearsal-cli-annotations");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("race.pp"),
        "package { 'vim': }\nfile { '/home/carol/.vimrc': content => 'x' }\n\
         user { 'carol': ensure => present, managehome => true }\n",
    )
    .unwrap();

    // With GITHUB_ACTIONS set, --annotations emits ::error lines with
    // file + line anchors from the diagnostics stream.
    let out = rehearsal()
        .args([
            "fleet",
            dir.to_str().unwrap(),
            "--jobs",
            "1",
            "--annotations",
        ])
        .env("GITHUB_ACTIONS", "true")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "race fails the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let annotation = stdout
        .lines()
        .find(|l| l.starts_with("::error file="))
        .unwrap_or_else(|| panic!("no annotation line in {stdout}"));
    assert!(annotation.contains("race.pp"), "{annotation}");
    assert!(annotation.contains(",line="), "{annotation}");
    assert!(annotation.contains("R3001"), "{annotation}");

    // Without GITHUB_ACTIONS, the flag is inert.
    let out = rehearsal()
        .args([
            "fleet",
            dir.to_str().unwrap(),
            "--jobs",
            "1",
            "--annotations",
        ])
        .env_remove("GITHUB_ACTIONS")
        .output()
        .expect("binary runs");
    assert!(!String::from_utf8_lossy(&out.stdout).contains("::error"));
}
