//! Integration tests for the observability layer: tracing must never
//! change verdicts, disabled-mode overhead stays within noise, and trace
//! output is deterministic modulo timestamps.

use rehearsal::benchmarks::{by_name, METADATA_SUITE, SUITE};
use rehearsal::fleet::{
    parse_json, BaselineStore, FleetEngine, FleetJob, FleetOptions, Json, Verdict,
};
use rehearsal::trace::{Session, TraceSnapshot};
use rehearsal::{Platform, Rehearsal};
use std::time::{Duration, Instant};

/// Runs the full verify pipeline on `source` in a fresh thread with its
/// own trace session, returning the session's snapshot. The fresh thread
/// gives every run the same thread-local world (tid 0, no inherited
/// session), so two calls are structurally comparable.
fn verify_traced(source: &'static str) -> TraceSnapshot {
    std::thread::spawn(move || {
        let session = Session::new();
        let _guard = session.install();
        let tool = Rehearsal::new(Platform::Ubuntu);
        let _ = tool.verify_source("bench.pp", source);
        session.snapshot()
    })
    .join()
    .expect("analysis thread panicked")
}

/// One span's timestamp-free skeleton: name, category, parent name.
type SpanShape = (String, String, Option<String>);

/// The timestamp-free skeleton of a snapshot: span names, categories, and
/// parent links (by name), plus sampled event names, in order.
fn shape(snap: &TraceSnapshot) -> (Vec<SpanShape>, Vec<String>) {
    let name_of = |id: u64| {
        snap.spans
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.name.to_string())
    };
    let spans = snap
        .spans
        .iter()
        .map(|s| (s.name.to_string(), s.cat.to_string(), name_of(s.parent)))
        .collect();
    let events = snap.events.iter().map(|e| e.name.to_string()).collect();
    (spans, events)
}

/// Two identical runs produce identical trace structure and metrics —
/// everything but the timestamps. (A warmup run first levels the
/// process-global caches: the arena and the structural memos are
/// append-only, so after warmup both measured runs see the same world.)
#[test]
fn trace_output_is_deterministic_modulo_timestamps() {
    let source = by_name("ntp-nondet").expect("bundled benchmark").source;
    let _warmup = verify_traced(source);
    let a = verify_traced(source);
    let b = verify_traced(source);

    assert_eq!(shape(&a), shape(&b), "span/event structure must be stable");
    // The interning arena is process-global, so its *hit* counters keep
    // climbing run over run by design; every other metric — including the
    // arena's node counts, which stop growing once the warmup interned
    // everything — must be bit-identical.
    let stable = |m: &rehearsal::trace::MetricsSnapshot| {
        (
            m.counters()
                .map(|(k, v)| (k.to_string(), v))
                .collect::<Vec<_>>(),
            m.gauges()
                .filter(|(k, _)| !k.ends_with("_dedup_hits"))
                .map(|(k, v)| (k.to_string(), v))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(
        stable(&a.metrics),
        stable(&b.metrics),
        "metrics must be bit-identical"
    );
    assert!(
        !a.spans.is_empty(),
        "the pipeline must have recorded phase spans"
    );
    assert!(
        a.metrics.counter("explore.sequences").unwrap_or(0) > 0,
        "explorer work must be visible in the registry"
    );
}

/// The Chrome trace-event export is valid JSON with the documented shape.
#[test]
fn chrome_trace_export_shape() {
    let source = by_name("ntp").expect("bundled benchmark").source;
    let snap = verify_traced(source);
    let doc = parse_json(&snap.to_chrome_trace()).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("ph").and_then(Json::as_str).is_some());
        assert!(e.get("ts").is_some());
    }
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("explore")),
        "the explore phase must appear in the profile"
    );
    assert!(doc.get("rehearsalMetrics").is_some(), "metrics ride along");
}

/// With tracing fully enabled, every bundled verdict is unchanged: the
/// paper suite stays 7 deterministic / 6 nondeterministic and the
/// metadata suite stays 3/3 — observability is read-only.
#[test]
fn verdicts_are_identical_under_tracing() {
    let session = Session::new();
    let _guard = session.install();

    let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(2));
    let report = engine.run(
        SUITE
            .iter()
            .map(|b| FleetJob {
                name: format!("{}.pp", b.name),
                source: b.source.to_string(),
                platform: Platform::Ubuntu,
            })
            .collect(),
    );
    for (row, b) in report.rows.iter().zip(SUITE) {
        let expected = if b.deterministic {
            Verdict::Deterministic
        } else {
            Verdict::Nondeterministic
        };
        assert_eq!(row.verdict, expected, "{}", b.name);
        assert!(
            !row.phases.is_empty(),
            "{}: traced rows carry phase timings",
            b.name
        );
    }
    let c = report.counts();
    assert_eq!((c.deterministic, c.nondeterministic), (7, 6));
    assert!(
        report.metrics.counter("explore.sequences").unwrap_or(0) > 0,
        "per-job metrics aggregate into the report"
    );
    assert_eq!(report.metrics.counter("fleet.jobs"), Some(13));

    let mut options = FleetOptions::default().with_jobs(2);
    options.analysis.model_metadata = true;
    let meta = FleetEngine::new(options).run(
        METADATA_SUITE
            .iter()
            .map(|b| FleetJob {
                name: format!("{}.pp", b.name),
                source: b.source.to_string(),
                platform: Platform::Ubuntu,
            })
            .collect(),
    );
    let c = meta.counts();
    assert_eq!((c.deterministic, c.nondeterministic), (3, 3));
}

/// Differential runs surface their reuse accounting as `incremental.*`
/// counters in the fleet report's metrics (and therefore in any
/// installed trace session's registry).
#[test]
fn incremental_metrics_ride_the_fleet_report() {
    let trio = "file { '/etc/motd': content => 'a' }\n\
                file { '/srv/app.conf': content => 'b' }\n\
                file { '/var/banner': content => 'c' }";
    let job = |source: &str| FleetJob {
        name: "trio.pp".to_string(),
        source: source.to_string(),
        platform: Platform::Ubuntu,
    };
    let mut cold_engine = FleetEngine::new(FleetOptions::default().with_jobs(1))
        .with_baseline(BaselineStore::in_memory());
    cold_engine.run(vec![job(trio)]);
    let baseline = cold_engine.state().take_baseline().unwrap();

    let edited = trio.replace("content => 'c'", "content => 'changed'");
    let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(1)).with_baseline(baseline);
    let report = engine.run(vec![job(&edited)]);
    assert_eq!(
        report.metrics.counter("incremental.resources_dirty"),
        Some(1)
    );
    assert_eq!(
        report.metrics.counter("incremental.resources_clean"),
        Some(2)
    );
    assert!(
        report
            .metrics
            .counter("incremental.pairs_reused")
            .unwrap_or(0)
            > 0,
        "clean pair verdicts reused"
    );
}

/// Disabled tracing (no session installed) must cost nothing measurable:
/// each instrumentation site is a single relaxed atomic load. The bound
/// is deliberately loose — this suite runs on loaded single-core CI
/// machines — and exists to catch gross regressions (e.g. an always-on
/// mutex on the hot path), not to measure the real overhead; the
/// `obs_overhead` bench does that.
#[test]
fn disabled_tracing_overhead_is_in_the_noise() {
    let source = by_name("ntp").expect("bundled benchmark").source;
    let run = |traced: bool| -> Duration {
        let mut times = Vec::new();
        for _ in 0..3 {
            let start = Instant::now();
            let session = traced.then(Session::new);
            let _guard = session.as_ref().map(Session::install);
            let tool = Rehearsal::new(Platform::Ubuntu);
            let _ = tool.verify_source("ntp.pp", source);
            times.push(start.elapsed());
        }
        times.sort();
        times[1] // median of 3
    };
    run(false); // warmup (arena, memos, lazy package DB)
    let disabled = run(false);
    let enabled = run(true);
    assert!(
        disabled < enabled * 3 + Duration::from_millis(250),
        "disabled tracing should not be slower than enabled \
         (disabled {disabled:?}, enabled {enabled:?})"
    );
}
