//! Integration tests for the unified diagnostics API: golden-file tests
//! for the rendered human output (snippet + carets, multi-label race
//! report), a seeded property test that every emitted span lies within the
//! source and every code is registered, and round-trips through the
//! documented JSON encoding.
//!
//! Regenerate the golden files with
//! `REGENERATE_GOLDEN=1 cargo test --test diagnostics`.

use rehearsal::fleet::{diagnostic_from_json, diagnostic_json, parse_json};
use rehearsal::{codes, Diagnostic, Platform, Rehearsal, SourceMap};
use std::path::PathBuf;

fn tool() -> Rehearsal {
    Rehearsal::new(Platform::Ubuntu)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares rendered text against a committed golden file (or rewrites it
/// under `REGENERATE_GOLDEN=1`).
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("REGENERATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "rendered output diverged from {} (set REGENERATE_GOLDEN=1 to update)",
        path.display()
    );
}

/// Renders every diagnostic of a manifest (plain, no color) for golden
/// comparison.
fn render_all(name: &str, source: &str) -> String {
    let analysis = tool().verify_source(name, source);
    analysis
        .diagnostics
        .iter()
        .map(|d| analysis.source_map.render(d))
        .collect::<Vec<_>>()
        .join("\n")
}

// ---- golden-file tests (satellite: rendered human diagnostics) ----

#[test]
fn golden_parse_error_snippet() {
    let out = render_all("bad.pp", "package { 'x'\n  oops => true }\n");
    assert_golden("parse_error.txt", &out);
}

#[test]
fn golden_duplicate_resource_two_labels() {
    let src = "package { 'vim': ensure => present }\n\
               package { 'vim': ensure => absent }\n";
    let out = render_all("dup.pp", src);
    assert!(out.contains("first declared here"), "{out}");
    assert_golden("duplicate_resource.txt", &out);
}

#[test]
fn golden_race_report_two_snippets() {
    let src = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benchmarks/ntp-nondet.pp"),
    )
    .unwrap();
    let out = render_all("benchmarks/ntp-nondet.pp", &src);
    // The acceptance shape: a two-snippet R3001 report pointing at both
    // racing resource declarations.
    assert!(out.contains("error[R3001]"), "{out}");
    assert_eq!(
        out.matches("--> benchmarks/ntp-nondet.pp:").count(),
        2,
        "both declarations rendered: {out}"
    );
    assert!(out.contains('^'), "primary carets: {out}");
    assert!(out.contains('-'), "secondary underline: {out}");
    assert_golden("race_ntp_nondet.txt", &out);
}

#[test]
fn golden_cycle_report_cites_edges() {
    let src = "package { 'm4': require => Package['make'] }\n\
               package { 'make': require => Package['m4'] }\n";
    let out = render_all("cycle.pp", src);
    assert!(out.contains("error[R0201]"), "{out}");
    assert!(out.contains("declared here"), "{out}");
    assert_golden("cycle.txt", &out);
}

#[test]
fn golden_nonidempotent_report() {
    let src = "file { '/dst': source => '/src' }\n\
               file { '/src': ensure => absent }\n\
               File['/dst'] -> File['/src']\n";
    let out = render_all("fig3d.pp", src);
    assert!(out.contains("error[R3002]"), "{out}");
    assert_golden("nonidempotent.txt", &out);
}

// ---- span/code well-formedness (satellite: seeded property test) ----

/// Deterministic splitmix64 generator (the workspace's offline stand-in
/// for a property-testing crate).
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// Every label's span must lie within the source text (1-based lines;
/// columns within the line plus one past the end).
fn assert_spans_within(d: &Diagnostic, name: &str, source: &str) {
    let lines: Vec<&str> = source.lines().collect();
    for label in d.labels() {
        let s = label.span;
        if s.is_dummy() {
            continue;
        }
        assert!(s.lo.line >= 1 && s.hi.line >= s.lo.line, "{name}: {d}");
        // End-of-input errors may point one line past the last newline.
        assert!(
            (s.lo.line as usize) <= lines.len().max(1) + 1,
            "{name}: span line {} beyond {} lines ({d})",
            s.lo.line,
            lines.len()
        );
        assert!(
            (s.hi.line as usize) <= lines.len().max(1) + 1,
            "{name}: span end {} beyond source ({d})",
            s.hi.line,
        );
        if let Some(line) = lines.get(s.lo.line as usize - 1) {
            assert!(
                (s.lo.col as usize) <= line.chars().count() + 1,
                "{name}: col {} beyond line {:?} ({d})",
                s.lo.col,
                line
            );
        }
        if s.hi.line == s.lo.line {
            assert!(s.hi.col >= s.lo.col, "{name}: inverted span ({d})");
        }
    }
    assert!(
        codes::is_registered(&d.code),
        "{name}: code {} not in the registry ({d})",
        d.code
    );
}

/// One manifest per error code plus the analysis findings: every
/// `RehearsalError`-producing input and every NONDET/non-idempotent
/// verdict must emit registered codes with in-source spans — and every
/// *error* must carry at least one resolvable span (the acceptance bar).
#[test]
fn every_failure_mode_is_anchored_and_registered() {
    let cases: &[(&str, &str, &str)] = &[
        ("syntax", "package { 'x' oops }", codes::SYNTAX_ERROR),
        (
            "undef-var",
            "file { '/x': content => $nope }",
            codes::UNDEFINED_VARIABLE,
        ),
        ("unknown-class", "include ghost", codes::UNKNOWN_CLASS),
        (
            "dup-resource",
            "package { 'v': }\npackage { 'v': }",
            codes::DUPLICATE_RESOURCE,
        ),
        (
            "unknown-ref",
            "Package['ghost'] -> Package['ghost2']",
            codes::UNKNOWN_REFERENCE,
        ),
        (
            "unknown-stage",
            "class s { package { 'p': } }\nclass { 's': stage => 'nope' }",
            codes::UNKNOWN_STAGE,
        ),
        (
            "missing-param",
            "define d($x) { }\nd { 't': }",
            codes::MISSING_PARAMETER,
        ),
        (
            "unexpected-param",
            "define d() { }\nd { 't': y => 2 }",
            codes::UNEXPECTED_PARAMETER,
        ),
        (
            "dup-class",
            "class c { }\nclass { 'c': }\nclass { 'c': }",
            codes::DUPLICATE_CLASS,
        ),
        ("fail", "fail('boom')", codes::EVAL_ERROR),
        (
            "cycle",
            "package { 'a': require => Package['b'] }\npackage { 'b': require => Package['a'] }",
            codes::DEPENDENCY_CYCLE,
        ),
        ("unmodeled", "mount { '/mnt': }", codes::UNMODELED_TYPE),
        (
            "exec",
            "exec { 'apt-get update': }",
            codes::EXEC_UNSUPPORTED,
        ),
        ("missing-attr", "cron { 'x': }", codes::MISSING_ATTRIBUTE),
        (
            "invalid-attr",
            "file { '/x': frobnicate => 1 }",
            codes::INVALID_ATTRIBUTE,
        ),
        (
            "unknown-pkg",
            "package { 'no-such-pkg-xyz': }",
            codes::UNKNOWN_PACKAGE,
        ),
        ("bad-path", "file { 'not/absolute': }", codes::BAD_PATH),
        (
            "race",
            "package { 'vim': }\nfile { '/home/carol/.vimrc': content => 'x' }\n\
             user { 'carol': ensure => present, managehome => true }",
            codes::NONDETERMINISTIC,
        ),
        (
            "nonidempotent",
            "file { '/dst': source => '/src' }\nfile { '/src': ensure => absent }\n\
             File['/dst'] -> File['/src']",
            codes::NONIDEMPOTENT,
        ),
        (
            "latest-warning",
            "package { 'vim': ensure => latest }",
            codes::LATEST_MODELING,
        ),
    ];
    for (name, src, want_code) in cases {
        let analysis = tool().verify_source(name, src);
        let hit = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == *want_code)
            .unwrap_or_else(|| {
                panic!(
                    "{name}: expected a {want_code} diagnostic, got {:?}",
                    analysis
                        .diagnostics
                        .iter()
                        .map(|d| d.code.clone())
                        .collect::<Vec<_>>()
                )
            });
        assert!(
            hit.has_resolvable_span(),
            "{name}: {want_code} must point into the source ({hit})"
        );
        for d in &analysis.diagnostics {
            assert_spans_within(d, name, src);
        }
    }
}

/// Every bundled benchmark (both suites, both metadata configurations):
/// all emitted diagnostics are registered and in-source, and every NONDET
/// verdict is anchored.
#[test]
fn bundled_suites_emit_anchored_findings() {
    let mut checked = 0;
    for b in rehearsal::benchmarks::SUITE
        .iter()
        .chain(rehearsal::benchmarks::FIXED_SUITE)
    {
        let analysis = tool().verify_source(b.name, b.source);
        for d in &analysis.diagnostics {
            assert_spans_within(d, b.name, b.source);
        }
        if !b.deterministic {
            let race = analysis
                .diagnostics
                .iter()
                .find(|d| d.code == codes::NONDETERMINISTIC)
                .unwrap_or_else(|| panic!("{}: no race diagnostic", b.name));
            assert!(race.has_resolvable_span(), "{}", b.name);
            assert!(
                !race.secondary.is_empty(),
                "{}: both resources cited",
                b.name
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 6, "all six NONDET benchmarks verified");
    for b in rehearsal::benchmarks::METADATA_SUITE {
        let analysis = tool()
            .with_model_metadata(true)
            .verify_source(b.name, b.source);
        for d in &analysis.diagnostics {
            assert_spans_within(d, b.name, b.source);
        }
        if !b.deterministic_with_metadata {
            assert!(
                analysis
                    .diagnostics
                    .iter()
                    .any(|d| d.code == codes::NONDETERMINISTIC && d.has_resolvable_span()),
                "{}: metadata race must be anchored",
                b.name
            );
        }
    }
}

/// Seeded mutations of the bundled sources (truncations and single-byte
/// edits): whatever the pipeline reports, spans stay inside the mutated
/// source and codes stay registered.
#[test]
fn mutated_sources_never_emit_out_of_range_spans() {
    let mut rng = Prng::new(42);
    let pool: Vec<&str> = rehearsal::benchmarks::SUITE
        .iter()
        .map(|b| b.source)
        .collect();
    for case in 0..128 {
        let base = pool[rng.usize(pool.len())];
        let mut src: String = match rng.usize(3) {
            0 => {
                // Truncate at a char boundary.
                let cut = rng.usize(base.len() + 1);
                let mut cut = cut.min(base.len());
                while !base.is_char_boundary(cut) {
                    cut -= 1;
                }
                base[..cut].to_string()
            }
            1 => {
                // Flip one byte to punctuation.
                let mut bytes = base.as_bytes().to_vec();
                if !bytes.is_empty() {
                    let i = rng.usize(bytes.len());
                    bytes[i] = b"{}[]'\"$,:>"[rng.usize(10)];
                }
                String::from_utf8_lossy(&bytes).into_owned()
            }
            _ => {
                // Duplicate a random line (often a duplicate resource).
                let lines: Vec<&str> = base.lines().collect();
                let i = rng.usize(lines.len());
                let mut out: Vec<&str> = lines.clone();
                out.insert(i, lines[i]);
                out.join("\n")
            }
        };
        src.push('\n');
        let analysis = tool().verify_source("mutated.pp", &src);
        for d in &analysis.diagnostics {
            assert_spans_within(d, &format!("case {case}"), &src);
        }
    }
}

// ---- JSON round-trips (the documented machine encoding) ----

/// Every diagnostic the pipeline emits survives the documented JSON
/// encoding byte-for-byte (structure, spans, payload).
#[test]
fn pipeline_diagnostics_roundtrip_through_json() {
    let sources = [
        "package { 'x' oops }",
        "package { 'vim': }\nfile { '/home/carol/.vimrc': content => 'x' }\n\
         user { 'carol': ensure => present, managehome => true }",
        "package { 'vim': ensure => latest }",
    ];
    let mut total = 0;
    for src in sources {
        let analysis = tool().verify_source("roundtrip.pp", src);
        for d in &analysis.diagnostics {
            let text = diagnostic_json(d).render();
            let back = diagnostic_from_json(&parse_json(&text).unwrap())
                .unwrap_or_else(|| panic!("decode failed for {text}"));
            assert_eq!(&back, d, "round-trip changed the diagnostic");
            assert!(back.span().same(&d.span()), "span survived");
            total += 1;
        }
    }
    assert!(total >= 3, "exercised {total} diagnostics");
}

/// Rendering against a `SourceMap` never panics, whatever the span (a
/// fuzz-ish guard for the renderer's clamping).
#[test]
fn renderer_clamps_arbitrary_spans() {
    use rehearsal::{Pos, Span};
    let map = SourceMap::single("clamp.pp", "line one\nline two\n");
    let mut rng = Prng::new(7);
    for _ in 0..256 {
        let lo = Pos::new(rng.usize(6) as u32, rng.usize(30) as u32);
        let hi = Pos::new(rng.usize(6) as u32, rng.usize(30) as u32);
        let d = Diagnostic::error("R0001", "x").with_primary(Span::new(lo, hi), "y");
        let _ = map.render(&d);
    }
}
