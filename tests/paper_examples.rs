//! End-to-end tests for every example manifest in the paper (§1–§2).

use rehearsal::{DeterminismReport, Platform, Rehearsal};

fn tool() -> Rehearsal {
    Rehearsal::new(Platform::Ubuntu)
}

/// §1: the introductory vim/carol manifest without the dependency.
#[test]
fn intro_manifest_nondeterministic() {
    let report = tool()
        .check_determinism(
            r#"
            package { 'vim': ensure => present }
            file { '/home/carol/.vimrc': content => 'syntax on' }
            user { 'carol': ensure => present, managehome => true }
            "#,
        )
        .unwrap();
    match report {
        DeterminismReport::NonDeterministic(cex, _) => {
            // One order fails (file before user), the other succeeds.
            assert_ne!(cex.outcome_a.is_ok(), cex.outcome_b.is_ok());
        }
        DeterminismReport::Deterministic(_) => panic!("§1 example must be nondeterministic"),
    }
}

/// §1: the fix `User['carol'] -> File['/home/carol/.vimrc']`.
#[test]
fn intro_manifest_fixed() {
    let report = tool()
        .verify(
            r#"
            package { 'vim': ensure => present }
            file { '/home/carol/.vimrc': content => 'syntax on' }
            user { 'carol': ensure => present, managehome => true }
            User['carol'] -> File['/home/carol/.vimrc']
            "#,
        )
        .unwrap();
    assert!(report.is_correct());
}

/// Fig. 2: the `myuser` defined type instantiated for alice and carol.
#[test]
fn fig2_defined_type() {
    let report = tool()
        .verify(
            r#"
            define myuser() {
              user {"$title":
                ensure     => present,
                managehome => true
              }
              file {"/home/${title}/.vimrc":
                content => "syntax on"
              }
              User["$title"] -> File["/home/${title}/.vimrc"]
            }
            myuser {"alice": }
            myuser {"carol": }
            "#,
        )
        .unwrap();
    assert!(report.is_correct(), "fig. 2 is correct Puppet");
}

/// Fig. 3a: package/config-file race.
#[test]
fn fig3a_nondeterministic_error() {
    let report = tool()
        .check_determinism(
            r#"
            file {"/etc/apache2/sites-available/000-default.conf":
              content => 'my site',
            }
            package{"apache2": ensure => present }
            "#,
        )
        .unwrap();
    assert!(!report.is_deterministic());
}

/// Fig. 3b: over-constrained modules cannot be composed — Puppet reports a
/// dependency cycle.
#[test]
fn fig3b_composition_cycle() {
    let err = tool()
        .check_determinism(
            r#"
            define cpp() {
              if !defined(Package['m4']) { package{'m4': ensure => present} }
              if !defined(Package['make']) { package{'make': ensure => present} }
              package{'gcc': ensure => present}
              Package['m4'] -> Package['make']
              Package['make'] -> Package['gcc']
            }
            define ocaml() {
              if !defined(Package['make']) { package{'make': ensure => present} }
              if !defined(Package['m4']) { package{'m4': ensure => present} }
              package{'ocaml': ensure => present}
              Package['make'] -> Package['m4']
              Package['m4'] -> Package['ocaml']
            }
            cpp { 'dev': }
            ocaml { 'dev': }
            "#,
        )
        .unwrap_err();
    assert_eq!(err.kind(), rehearsal::RehearsalErrorKind::Cycle, "{err}");
    assert_eq!(err.code(), "R0201");
    let cycle = &err.diagnostics()[0];
    assert!(
        cycle.message.contains("Package[m4]") || cycle.message.contains("Package[make]"),
        "{}",
        cycle.message
    );
    assert!(
        cycle.has_resolvable_span(),
        "the cycle cites its edges' declaration sites"
    );
}

/// Fig. 3b, composable version: each module orders only what it must.
#[test]
fn fig3b_composable_fix() {
    let report = tool()
        .verify(
            r#"
            define cpp() {
              if !defined(Package['m4']) { package{'m4': ensure => present} }
              if !defined(Package['make']) { package{'make': ensure => present} }
              package{'gcc': ensure => present}
            }
            define ocaml() {
              if !defined(Package['make']) { package{'make': ensure => present} }
              if !defined(Package['m4']) { package{'m4': ensure => present} }
              package{'ocaml': ensure => present}
            }
            cpp { 'dev': }
            ocaml { 'dev': }
            "#,
        )
        .unwrap();
    assert!(report.is_correct(), "independent packages commute");
}

/// Fig. 3c: with dependency-closure modeling (our §8 extension), the
/// golang-go/perl manifest reaches two different success states.
#[test]
fn fig3c_silent_failure() {
    let report = tool()
        .with_dependency_closures(true)
        .check_determinism(
            r#"
            package{'golang-go': ensure => present }
            package{'perl': ensure => absent }
            "#,
        )
        .unwrap();
    match report {
        DeterminismReport::NonDeterministic(cex, _) => {
            assert!(cex.outcome_a.is_ok(), "order A succeeds");
            assert!(cex.outcome_b.is_ok(), "order B succeeds");
            assert_ne!(cex.outcome_a, cex.outcome_b, "but states differ");
        }
        DeterminismReport::Deterministic(_) => panic!("fig. 3c must be nondeterministic"),
    }
}

/// Fig. 3c under the faithful model (no dependency metadata, as the
/// original tool): invisible, exactly as the paper's §8 limitation states.
#[test]
fn fig3c_invisible_without_dependency_metadata() {
    let report = tool()
        .check_determinism(
            r#"
            package{'golang-go': ensure => present }
            package{'perl': ensure => absent }
            "#,
        )
        .unwrap();
    assert!(report.is_deterministic());
}

/// Fig. 3d: copy-then-delete is deterministic but not idempotent.
#[test]
fn fig3d_not_idempotent() {
    let report = tool()
        .verify(
            r#"
            file{"/dst": source => "/src" }
            file{"/src": ensure => absent }
            File["/dst"] -> File["/src"]
            "#,
        )
        .unwrap();
    assert!(report.determinism.is_deterministic());
    let idem = report.idempotence.expect("checked because deterministic");
    match idem {
        rehearsal::IdempotenceReport::NotIdempotent(cex) => {
            assert!(cex.after_once.is_ok());
            assert!(cex.after_twice.is_err(), "second run fails: /src is gone");
        }
        rehearsal::IdempotenceReport::Idempotent => panic!("fig. 3d is not idempotent"),
    }
}

/// §3.1: the resource-collector example (global attribute override).
#[test]
fn collector_override_applies_globally() {
    let catalog = tool()
        .catalog(
            r#"
            define dotfile($owner) {
              file { "/home/${owner}/.${title}":
                content => 'x',
                owner   => $owner,
                mode    => 'rw',
              }
            }
            dotfile { 'vimrc': owner => 'carol' }
            dotfile { 'bashrc': owner => 'carol' }
            dotfile { 'profile': owner => 'dave' }
            File<| owner == 'carol' |> { mode => "go-rwx" }
            "#,
        )
        .unwrap();
    let carols: Vec<_> = catalog
        .resources()
        .iter()
        .filter(|r| r.attr_str("owner").as_deref() == Some("carol"))
        .collect();
    assert_eq!(carols.len(), 2);
    for r in carols {
        assert_eq!(r.attr_str("mode").as_deref(), Some("go-rwx"));
    }
    let dave = catalog
        .resources()
        .iter()
        .find(|r| r.attr_str("owner").as_deref() == Some("dave"))
        .unwrap();
    assert_eq!(dave.attr_str("mode").as_deref(), Some("rw"));
}

/// §8: exec resources are rejected, not silently mis-modeled.
#[test]
fn exec_rejected() {
    let err = tool()
        .check_determinism("exec { '/usr/bin/make install': }")
        .unwrap_err();
    assert_eq!(err.kind(), rehearsal::RehearsalErrorKind::Compile);
    assert!(err.to_string().contains("exec"));
}

/// The platform flag (§8): same manifest, different verdict inputs per
/// platform package database.
#[test]
fn platform_flag_changes_model() {
    let manifest = r#"
        if $osfamily == 'Debian' {
          package { 'apache2': ensure => present }
          service { 'apache2': ensure => running, require => Package['apache2'] }
        } else {
          package { 'httpd': ensure => present }
          service { 'httpd': ensure => running, require => Package['httpd'] }
        }
    "#;
    let ubuntu = Rehearsal::new(Platform::Ubuntu).verify(manifest).unwrap();
    assert!(ubuntu.is_correct());
    let centos = Rehearsal::new(Platform::Centos).verify(manifest).unwrap();
    assert!(centos.is_correct());
}
