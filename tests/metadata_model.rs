//! Acceptance tests for the metadata-aware FS model.
//!
//! * With `model_metadata` disabled, the bundled 13-benchmark suite is
//!   bit-identical to the metadata-free analyzer: same verdicts *and*
//!   same exploration statistics, with zero metadata terms anywhere.
//! * With it enabled, the permission-race benchmarks report NONDET with a
//!   concrete two-order counterexample, and their `->`-fixed twins verify
//!   deterministic and idempotent.
//! * `ensure => latest` still aliases to `present` by default (with a
//!   diagnostic) and differs once distinct modeling is on.

use rehearsal::benchmarks::{METADATA_SUITE, SUITE};
use rehearsal::{AnalysisOptions, DeterminismReport, Platform, Rehearsal};

fn tool() -> Rehearsal {
    Rehearsal::new(Platform::Ubuntu)
}

/// (a) Bit-identical suite with the model off: the default configuration
/// and an explicit `model_metadata: false` agree on verdict and on every
/// exploration counter, and no metadata is ever tracked.
#[test]
fn suite_is_bit_identical_with_metadata_off() {
    let mut det = 0;
    let mut nondet = 0;
    for b in SUITE {
        let default_report = tool().check_determinism(b.source).unwrap();
        let explicit_off = AnalysisOptions {
            model_metadata: false,
            ..AnalysisOptions::default()
        };
        let off_report = tool()
            .with_options(explicit_off)
            .check_determinism(b.source)
            .unwrap();
        assert_eq!(
            default_report.is_deterministic(),
            off_report.is_deterministic(),
            "{}",
            b.name
        );
        assert_eq!(
            default_report.is_deterministic(),
            b.deterministic,
            "{}: pinned verdict",
            b.name
        );
        let (ds, os) = (default_report.stats(), off_report.stats());
        assert_eq!(ds, os, "{}: stats must be bit-identical", b.name);
        assert_eq!(ds.meta_ops, 0, "{}", b.name);
        assert_eq!(ds.meta_tracked_paths, 0, "{}", b.name);
        if default_report.is_deterministic() {
            det += 1;
        } else {
            nondet += 1;
        }
    }
    assert_eq!((det, nondet), (7, 6), "the paper's 7/6 split");
}

/// (Acceptance) The permission-race benchmarks under the metadata model:
/// NONDET with a replayed two-order counterexample; fixed twins verify
/// fully (deterministic *and* idempotent).
#[test]
fn permission_races_are_caught_and_fixable() {
    for b in METADATA_SUITE {
        let t = tool().with_model_metadata(true);
        if b.deterministic_with_metadata {
            let report = t
                .verify(b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(
                report.determinism.is_deterministic(),
                "{}: fixed twin must be deterministic",
                b.name
            );
            assert!(
                report
                    .idempotence
                    .as_ref()
                    .map(|r| r.is_idempotent())
                    .unwrap_or(false),
                "{}: fixed twin must be idempotent",
                b.name
            );
        } else {
            let report = t
                .check_determinism(b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let DeterminismReport::NonDeterministic(cex, stats) = report else {
                panic!("{}: the race must be caught", b.name);
            };
            assert!(stats.meta_ops > 0, "{}", b.name);
            assert!(stats.meta_tracked_paths > 0, "{}", b.name);
            // A concrete two-order counterexample: both orders run (and
            // succeed — these races are silent divergences), with
            // observably different outcomes.
            assert_ne!(cex.order_a, cex.order_b, "{}", b.name);
            assert!(
                cex.outcome_a.is_ok() && cex.outcome_b.is_ok(),
                "{}: metadata races are silent (both orders succeed)",
                b.name
            );
            assert_ne!(cex.outcome_a, cex.outcome_b, "{}: must replay", b.name);
        }
        // And without the model, every manifest in the suite verifies
        // clean — the races are metadata-only by construction.
        let plain = tool().verify(b.source).unwrap();
        assert!(
            plain.is_correct(),
            "{}: invisible without the model",
            b.name
        );
    }
}

/// The fleet engine honors `model_latest` (it rides in
/// `AnalysisOptions`, so the engine and the verdict-cache key both see
/// it): a file resource pinning a package file to the *install* payload
/// is clean when `latest` aliases to `present`, and a genuine race once
/// the upgrade is modeled distinctly. The two configurations must not
/// share cache entries.
#[test]
fn fleet_honors_model_latest() {
    use rehearsal::fleet::{FleetEngine, FleetJob, FleetOptions, Verdict};
    // /etc is managed explicitly (and auto-required / required by both
    // sides), so the package and the pinning file race only over the
    // *payload* of /etc/ntp.conf — identical when latest aliases to the
    // install, version-bumped when the upgrade is modeled.
    let src = "file { '/etc': ensure => directory }\n\
               package { 'ntp': ensure => latest, require => File['/etc'] }\n\
               file { '/etc/ntp.conf': content => 'pkg:ntp:/etc/ntp.conf' }\n";
    let job = || {
        vec![FleetJob {
            name: "latest-race.pp".to_string(),
            source: src.to_string(),
            platform: Platform::Ubuntu,
        }]
    };
    let mut aliased = FleetEngine::new(FleetOptions::default().with_jobs(1));
    let report = aliased.run(job());
    assert_eq!(
        report.rows[0].verdict,
        Verdict::Deterministic,
        "aliased latest writes the same payload as the pinning file"
    );

    let mut options = FleetOptions::default().with_jobs(1);
    options.analysis.model_latest = true;
    let mut distinct = FleetEngine::new(options);
    let report = distinct.run(job());
    assert_eq!(
        report.rows[0].verdict,
        Verdict::Nondeterministic,
        "the modeled upgrade races the pinned file"
    );
    assert!(
        !report.rows[0].cached,
        "distinct options → distinct cache key"
    );
}

/// `ensure => latest` satellite: aliased (with a diagnostic) by default,
/// distinct — up to manifest-level divergence — with the model on.
#[test]
fn latest_vs_present_through_the_pipeline() {
    let latest_src = "package { 'vim': ensure => latest }";
    let present_src = "package { 'vim': ensure => present }";

    // Default: same graph, plus a source-anchored diagnostic.
    let (latest_graph, diags) = tool().lower_source(latest_src).unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "R1101");
    assert!(diags[0].message.contains("latest"), "{diags:?}");
    assert!(
        diags[0].has_resolvable_span(),
        "points at `ensure => latest`"
    );
    let (present_graph, no_diags) = tool().lower_source(present_src).unwrap();
    assert!(no_diags.is_empty());
    assert_eq!(
        latest_graph.exprs, present_graph.exprs,
        "aliased by default"
    );

    // Distinct modeling: the compiled programs are observably different.
    let t = tool().with_model_latest(true);
    let (latest_graph, _) = t.lower_source(latest_src).unwrap();
    assert_ne!(latest_graph.exprs, present_graph.exprs);
    let report = rehearsal::check_expr_equivalence(
        latest_graph.exprs[0],
        present_graph.exprs[0],
        &AnalysisOptions::default(),
    )
    .unwrap();
    assert!(
        !report.is_equivalent(),
        "latest and present must now differ semantically"
    );
}
