//! The paper's evaluation, as tests (§6 "Bugs found"): the 13 third-party
//! benchmarks produce the expected verdicts — six non-deterministic, seven
//! deterministic — and all fixed versions verify deterministic *and*
//! idempotent.

use rehearsal::benchmarks::{by_name, Benchmark, FIXED_SUITE, SUITE};
use rehearsal::{DeterminismReport, Platform, Rehearsal};

fn tool() -> Rehearsal {
    Rehearsal::new(Platform::Ubuntu)
}

#[test]
fn suite_has_paper_composition() {
    assert_eq!(SUITE.len(), 13, "13 third-party benchmarks");
    let nondet = SUITE.iter().filter(|b| !b.deterministic).count();
    assert_eq!(nondet, 6, "six have determinism bugs");
    for b in SUITE.iter().filter(|b| !b.deterministic) {
        assert!(b.name.ends_with("-nondet"), "{}", b.name);
    }
}

fn check(b: &Benchmark) {
    let report = tool()
        .check_determinism(b.source)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    assert_eq!(
        report.is_deterministic(),
        b.deterministic,
        "{}: wrong verdict",
        b.name
    );
    if let DeterminismReport::NonDeterministic(cex, _) = report {
        // Every counterexample must replay to a real divergence.
        assert_ne!(
            cex.outcome_a, cex.outcome_b,
            "{}: counterexample failed to replay",
            b.name
        );
    }
}

#[test]
fn amavis_verdict() {
    check(&by_name("amavis").unwrap());
}

#[test]
fn bind_verdict() {
    check(&by_name("bind").unwrap());
}

#[test]
fn clamav_verdict() {
    check(&by_name("clamav").unwrap());
}

#[test]
fn dns_nondet_verdict() {
    check(&by_name("dns-nondet").unwrap());
}

#[test]
fn hosting_verdict() {
    check(&by_name("hosting").unwrap());
}

#[test]
fn irc_nondet_verdict() {
    check(&by_name("irc-nondet").unwrap());
}

#[test]
fn jpa_verdict() {
    check(&by_name("jpa").unwrap());
}

#[test]
fn logstash_nondet_verdict() {
    check(&by_name("logstash-nondet").unwrap());
}

#[test]
fn monit_verdict() {
    check(&by_name("monit").unwrap());
}

#[test]
fn nginx_verdict() {
    check(&by_name("nginx").unwrap());
}

#[test]
fn ntp_nondet_verdict() {
    check(&by_name("ntp-nondet").unwrap());
}

#[test]
fn rsyslog_nondet_verdict() {
    check(&by_name("rsyslog-nondet").unwrap());
}

#[test]
fn xinetd_nondet_verdict() {
    check(&by_name("xinetd-nondet").unwrap());
}

/// §6: "For each non-deterministic program, we developed a fix and
/// verified that Rehearsal reports that it is deterministic and
/// idempotent."
#[test]
fn fixed_suite_verifies_fully() {
    for b in FIXED_SUITE {
        let report = tool()
            .verify(b.source)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(
            report.determinism.is_deterministic(),
            "{}: fixed version must be deterministic",
            b.name
        );
        assert!(
            report
                .idempotence
                .as_ref()
                .map(|r| r.is_idempotent())
                .unwrap_or(false),
            "{}: fixed version must be idempotent",
            b.name
        );
    }
}

/// The found bugs are the classes the paper reports: missing
/// package→file dependencies. Divergences come in two flavors — one order
/// errors (file written into a directory the package has not created), or
/// both succeed with different contents (package overwrites the custom
/// config). Both must occur across the suite.
#[test]
fn nondet_counterexamples_show_missing_package_deps() {
    let mut error_divergences = 0;
    let mut silent_divergences = 0;
    for name in [
        "dns-nondet",
        "irc-nondet",
        "logstash-nondet",
        "ntp-nondet",
        "rsyslog-nondet",
        "xinetd-nondet",
    ] {
        let b = by_name(name).unwrap();
        let report = tool().check_determinism(b.source).unwrap();
        let DeterminismReport::NonDeterministic(cex, _) = report else {
            panic!("{name} must be nondeterministic");
        };
        assert_ne!(cex.outcome_a, cex.outcome_b, "{name}: must replay");
        if cex.outcome_a.is_err() || cex.outcome_b.is_err() {
            error_divergences += 1;
        } else {
            silent_divergences += 1;
        }
    }
    assert!(error_divergences > 0, "some benchmark shows an error race");
    assert!(
        error_divergences + silent_divergences == 6,
        "all six diverge"
    );
}

/// Statistics sanity: pruning dramatically reduces the tracked paths on
/// package-heavy benchmarks (fig. 11a's effect).
#[test]
fn pruning_shrinks_tracked_paths() {
    use rehearsal::AnalysisOptions;
    let b = by_name("amavis").unwrap();
    let tool = tool();
    let graph = tool.lower(b.source).unwrap();

    let no_prune = AnalysisOptions {
        pruning: false,
        elimination: false,
        ..AnalysisOptions::default()
    };
    let full = rehearsal::check_determinism(&graph, &no_prune).unwrap();

    let pruned = AnalysisOptions {
        elimination: false,
        ..AnalysisOptions::default()
    };
    let small = rehearsal::check_determinism(&graph, &pruned).unwrap();

    assert!(
        small.stats().tracked_paths * 2 < full.stats().tracked_paths,
        "pruning should at least halve tracked paths: {} vs {}",
        small.stats().tracked_paths,
        full.stats().tracked_paths
    );
}
