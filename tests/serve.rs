//! Integration tests for `rehearsal serve` and `rehearsal coverage`:
//! concurrent-request verdict parity with the batch CLI, warm-repeat
//! memoization, graceful shutdown with a verified history chain,
//! torn-tail crash recovery, watch-mode drift detection, and the
//! coverage gate's exit codes.

use rehearsal::benchmarks::{METADATA_SUITE, SUITE};
use rehearsal::fleet::{Json, StateDir};
use rehearsal::serve::http::http_request;
use rehearsal::serve::{verify_chain, ServeOptions, Server, HISTORY_FILE};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const DET: &str = "file { '/a': content => 'x' }\n";
const NONDET: &str = "file { '/a': content => 'x' }\nfile { 'b': path => '/a', content => 'y' }\n";

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rehearsal-serve-test-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Binds an ephemeral-port server and runs it on a background thread.
fn spawn(options: ServeOptions) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        ..options
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let (status, _) = http_request(addr, "POST", "/v1/shutdown", "").unwrap();
    assert_eq!(status, 200);
    handle.join().unwrap().unwrap();
}

fn check_request(addr: &str, body: &Json) -> Json {
    let (status, response) = http_request(addr, "POST", "/v1/check", &body.render()).unwrap();
    assert_eq!(status, 200, "check failed: {response}");
    rehearsal::fleet::parse_json(&response).expect("check response is JSON")
}

fn field<'a>(doc: &'a Json, path: &[&str]) -> &'a Json {
    let mut cursor = doc;
    for key in path {
        cursor = cursor.get(key).unwrap_or_else(|| panic!("missing {key}"));
    }
    cursor
}

fn run_us(doc: &Json) -> f64 {
    match field(doc, &["serve", "run_us"]) {
        Json::Num(us) => *us,
        other => panic!("run_us is not a number: {other:?}"),
    }
}

/// Acceptance pin: N threads hammering `/v1/check` with both bundled
/// suites (including `--model-metadata` and `--threads 2` variants)
/// return exactly the verdicts the batch CLI pins (7 det / 6 nondet;
/// metadata 3/3), and a byte-identical repeat is served warm from the
/// resident core — `cache_hit` with strictly lower latency.
#[test]
fn concurrent_requests_match_batch_verdicts_and_repeat_warm() {
    let (addr, handle) = spawn(ServeOptions::default());
    let threads: Vec<_> = (0..4)
        .map(|lane| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for b in SUITE.iter().skip(lane).step_by(4) {
                    let doc = check_request(
                        &addr,
                        &Json::obj([
                            ("manifest", Json::str(format!("{}.pp", b.name))),
                            ("source", Json::str(b.source)),
                            ("threads", Json::num(2u32)),
                        ]),
                    );
                    let expected = if b.deterministic {
                        "deterministic"
                    } else {
                        "nondeterministic"
                    };
                    assert_eq!(
                        doc.get("verdict").and_then(Json::as_str),
                        Some(expected),
                        "{} under concurrent load",
                        b.name
                    );
                }
                for b in METADATA_SUITE.iter().skip(lane).step_by(4) {
                    let doc = check_request(
                        &addr,
                        &Json::obj([
                            ("manifest", Json::str(format!("{}.pp", b.name))),
                            ("source", Json::str(b.source)),
                            ("model_metadata", Json::Bool(true)),
                        ]),
                    );
                    let expected = if b.deterministic_with_metadata {
                        "deterministic"
                    } else {
                        "nondeterministic"
                    };
                    assert_eq!(
                        doc.get("verdict").and_then(Json::as_str),
                        Some(expected),
                        "{} with the metadata model",
                        b.name
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Warm repeat: byte-identical request must come from the resident
    // memo (no re-lowering), visibly faster, with the counter moving.
    let body = Json::obj([
        ("manifest", Json::str("warm.pp")),
        ("source", Json::str(DET)),
    ]);
    let cold = check_request(&addr, &body);
    assert_eq!(
        field(&cold, &["serve", "cache_hit"]).as_bool(),
        Some(false),
        "first sighting is cold"
    );
    let warm = check_request(&addr, &body);
    assert_eq!(field(&warm, &["serve", "cache_hit"]).as_bool(), Some(true));
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        warm.get("verdict").and_then(Json::as_str),
        cold.get("verdict").and_then(Json::as_str),
        "warm verdict is bit-identical"
    );
    assert!(
        run_us(&warm) < run_us(&cold),
        "warm repeat must be strictly faster ({} vs {} µs)",
        run_us(&warm),
        run_us(&cold)
    );
    let (status, metrics) = http_request(&addr, "GET", "/v1/metrics", "").unwrap();
    assert_eq!(status, 200);
    let hits = metrics
        .lines()
        .find(|l| l.starts_with("rehearsal_serve_cache_hits_total"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("cache-hit counter exported");
    assert!(hits >= 1, "cache-hit counter moved");
    shutdown(&addr, handle);
}

#[test]
fn shutdown_flushes_state_and_seals_the_history_chain() {
    let state_dir = temp_dir("shutdown");
    let (addr, handle) = spawn(ServeOptions {
        state_dir: Some(state_dir.clone()),
        ..ServeOptions::default()
    });
    let doc = check_request(
        &addr,
        &Json::obj([("manifest", Json::str("m.pp")), ("source", Json::str(DET))]),
    );
    assert_eq!(
        doc.get("verdict").and_then(Json::as_str),
        Some("deterministic")
    );
    shutdown(&addr, handle);

    // The drained daemon flushed the verdict cache…
    let reloaded = StateDir::open(&state_dir).unwrap();
    assert!(reloaded.cache_len() >= 1, "verdict cache persisted");
    assert!(reloaded.baseline_len() >= 1, "baseline persisted");
    // …and the history chain is whole, ending in the shutdown record.
    let history = state_dir.join(HISTORY_FILE);
    let report = verify_chain(&history).unwrap();
    assert!(report.valid >= 3, "start + check + shutdown at minimum");
    assert!(!report.torn, "no torn JSONL lines after a clean drain");
    let text = std::fs::read_to_string(&history).unwrap();
    assert!(
        text.lines().last().unwrap().contains("\"shutdown\""),
        "chain ends with the shutdown record"
    );
}

#[test]
fn torn_history_tail_degrades_to_cold_on_restart() {
    let state_dir = temp_dir("torn");
    let (addr, handle) = spawn(ServeOptions {
        state_dir: Some(state_dir.clone()),
        ..ServeOptions::default()
    });
    let _ = check_request(
        &addr,
        &Json::obj([("manifest", Json::str("m.pp")), ("source", Json::str(DET))]),
    );
    shutdown(&addr, handle);

    // Simulate a crash mid-append: half a record, no trailing newline.
    let history = state_dir.join(HISTORY_FILE);
    let sealed = verify_chain(&history).unwrap().valid;
    let mut text = std::fs::read_to_string(&history).unwrap();
    text.push_str("{\"schema\":\"rehearsal-history/1\",\"seq\":99,\"pr");
    std::fs::write(&history, &text).unwrap();
    assert!(verify_chain(&history).unwrap().torn);

    // Restart on the same state dir: the torn tail truncates (matching
    // the stores' corrupt-line policy) and the chain resumes.
    let (addr, handle) = spawn(ServeOptions {
        state_dir: Some(state_dir.clone()),
        ..ServeOptions::default()
    });
    let (status, _) = http_request(&addr, "GET", "/v1/healthz", "").unwrap();
    assert_eq!(status, 200);
    shutdown(&addr, handle);
    let report = verify_chain(&history).unwrap();
    assert!(!report.torn, "restart healed the chain");
    assert!(
        report.valid >= sealed + 2,
        "the new start/shutdown records extend the recovered prefix"
    );
}

fn coverage_value(addr: &str, key: &str) -> u64 {
    let (status, body) = http_request(addr, "GET", "/v1/coverage", "").unwrap();
    assert_eq!(status, 200);
    let doc = rehearsal::fleet::parse_json(&body).unwrap();
    doc.get(key).and_then(Json::as_u64).unwrap_or_default()
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn coverage_cmd(args: &[&str]) -> std::process::ExitStatus {
    Command::new(env!("CARGO_BIN_EXE_rehearsal"))
        .arg("coverage")
        .args(args)
        .output()
        .expect("spawn rehearsal coverage")
        .status
}

fn write_manifest(dir: &Path, source: &str) {
    std::fs::write(dir.join("site.pp"), source).unwrap();
}

#[test]
fn watch_mode_flags_drift_and_the_gate_exits_nonzero() {
    let fleet_dir = temp_dir("watch-fleet");
    let state_dir = temp_dir("watch-state");
    write_manifest(&fleet_dir, DET);
    let (addr, handle) = spawn(ServeOptions {
        state_dir: Some(state_dir),
        watch: Some(fleet_dir.clone()),
        poll_ms: 50,
        ..ServeOptions::default()
    });

    // The first scan verifies the fleet and adopts pins.
    wait_until("initial watch verification", || {
        coverage_value(&addr, "verified") >= 1
    });
    assert!(
        coverage_cmd(&["--addr", &addr]).success(),
        "clean fleet gates green over HTTP"
    );

    // Inject DET→NONDET drift under watch.
    write_manifest(&fleet_dir, NONDET);
    wait_until("drift detection", || coverage_value(&addr, "drifted") >= 1);
    let gate = coverage_cmd(&["--addr", &addr]);
    assert_eq!(gate.code(), Some(1), "drift exits non-zero");
    shutdown(&addr, handle);
}

#[test]
fn offline_gate_pin_drift_repin_cycle() {
    let dir = temp_dir("gate-cycle");
    write_manifest(&dir, DET);
    let dir_arg = dir.display().to_string();
    let baseline = dir.join("pins.jsonl").display().to_string();

    let pin = ["--baseline", &baseline, "--pin"];
    let gate = ["--baseline", &baseline];
    assert!(
        coverage_cmd(&[&[dir_arg.as_str()], &pin[..]].concat()).success(),
        "initial pin passes"
    );
    assert!(
        coverage_cmd(&[&[dir_arg.as_str()], &gate[..]].concat()).success(),
        "unchanged tree gates clean"
    );

    write_manifest(&dir, NONDET);
    assert_eq!(
        coverage_cmd(&[&[dir_arg.as_str()], &gate[..]].concat()).code(),
        Some(1),
        "DET→NONDET drift exits 1"
    );
    assert_eq!(
        coverage_cmd(&[&[dir_arg.as_str()], &gate[..]].concat()).code(),
        Some(1),
        "gate never silently re-pins"
    );
    assert!(
        coverage_cmd(&[&[dir_arg.as_str()], &pin[..]].concat()).success(),
        "re-pin accepts the new verdict"
    );
    assert!(
        coverage_cmd(&[&[dir_arg.as_str()], &gate[..]].concat()).success(),
        "re-pinned baseline gates clean again"
    );
}
