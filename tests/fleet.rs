//! Integration tests for the fleet batch-verification engine and the
//! `rehearsal fleet` CI gate, over the bundled 13-benchmark suite and the
//! metadata permission-race suite.

use rehearsal::benchmarks::{METADATA_SUITE, SUITE};
use rehearsal::fleet::{parse_json, FleetEngine, FleetJob, FleetOptions, Json, Verdict};
use rehearsal::Platform;
use std::path::{Path, PathBuf};
use std::process::Command;

fn rehearsal() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rehearsal"))
}

/// Writes the 13 SUITE manifests into a scratch directory.
fn fleet_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rehearsal-fleet-it").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for b in SUITE {
        std::fs::write(dir.join(format!("{}.pp", b.name)), b.source).unwrap();
    }
    dir
}

fn suite_jobs() -> Vec<FleetJob> {
    SUITE
        .iter()
        .map(|b| FleetJob {
            name: format!("{}.pp", b.name),
            source: b.source.to_string(),
            platform: Platform::Ubuntu,
        })
        .collect()
}

/// The engine reproduces the paper's verdict for every bundled benchmark,
/// with 4 workers.
#[test]
fn engine_reproduces_paper_verdicts_in_parallel() {
    let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(4));
    let report = engine.run(suite_jobs());
    assert_eq!(report.rows.len(), 13);
    for (row, b) in report.rows.iter().zip(SUITE) {
        let expected = if b.deterministic {
            Verdict::Deterministic
        } else {
            Verdict::Nondeterministic
        };
        assert_eq!(row.verdict, expected, "{}", b.name);
        assert!(!row.cached);
        assert!(row.resources > 0, "{}", b.name);
    }
    let c = report.counts();
    assert_eq!(
        (
            c.deterministic,
            c.nondeterministic,
            c.nonidempotent,
            c.error,
            c.timeout,
            c.cached
        ),
        (7, 6, 0, 0, 0, 0)
    );
    assert!(!report.all_clean());
}

/// A second run against a warm cache does zero re-analysis: all 13 rows
/// are cache hits with identical verdicts and no measured analysis time.
#[test]
fn warm_cache_rerun_does_zero_reanalysis() {
    let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(4));
    let cold = engine.run(suite_jobs());
    let warm = engine.run(suite_jobs());
    assert_eq!(warm.counts().cached, 13, "13/13 cache hits");
    for (w, c) in warm.rows.iter().zip(cold.rows.iter()) {
        assert!(w.cached);
        assert_eq!(w.millis, 0, "cache hits do no analysis work");
        assert_eq!(w.verdict, c.verdict);
        assert_eq!(w.resources, c.resources);
    }
}

/// End-to-end CI gate: `rehearsal fleet <dir> --jobs 4 --json --cache`
/// exits non-zero on the buggy suite, reports exact aggregate counts, and
/// hits the on-disk cache on the second run.
#[test]
fn cli_fleet_gates_and_caches() {
    let dir = fleet_dir("cli");
    let cache = dir.join("verdicts.jsonl");

    let run = |label: &str| -> Json {
        let out = rehearsal()
            .args([
                "fleet",
                dir.to_str().unwrap(),
                "--jobs",
                "4",
                "--json",
                "--cache",
                cache.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{label}: six buggy manifests must fail the gate"
        );
        parse_json(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON report")
    };

    let cold = run("cold");
    let counts = cold.get("counts").expect("counts");
    assert_eq!(counts.get("total").and_then(Json::as_u64), Some(13));
    assert_eq!(counts.get("deterministic").and_then(Json::as_u64), Some(7));
    assert_eq!(
        counts.get("nondeterministic").and_then(Json::as_u64),
        Some(6)
    );
    assert_eq!(counts.get("error").and_then(Json::as_u64), Some(0));
    assert_eq!(counts.get("timeout").and_then(Json::as_u64), Some(0));
    assert_eq!(counts.get("cached").and_then(Json::as_u64), Some(0));
    assert_eq!(cold.get("clean").and_then(Json::as_bool), Some(false));
    assert!(cache.exists(), "cache file written");

    // Nondeterministic rows carry their source-anchored diagnostics.
    let nondet_has_race = |doc: &Json| {
        doc.get("manifests")
            .and_then(Json::as_arr)
            .expect("rows")
            .iter()
            .filter(|r| r.get("verdict").and_then(Json::as_str) == Some("nondeterministic"))
            .all(|r| {
                r.get("diagnostics")
                    .and_then(Json::as_arr)
                    .is_some_and(|ds| {
                        ds.iter()
                            .any(|d| d.get("code").and_then(Json::as_str) == Some("R3001"))
                    })
            })
    };
    assert!(
        nondet_has_race(&cold),
        "cold rows carry the race diagnostic"
    );

    let warm = run("warm");
    let counts = warm.get("counts").and_then(|c| c.get("cached"));
    assert_eq!(counts.and_then(Json::as_u64), Some(13), "13/13 cache hits");
    for row in warm.get("manifests").and_then(Json::as_arr).expect("rows") {
        assert_eq!(row.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(row.get("millis").and_then(Json::as_u64), Some(0));
    }
    // Cached entries (schema 5) restore the diagnostics without
    // re-analysis.
    assert!(
        nondet_has_race(&warm),
        "warm rows replay cached diagnostics"
    );
}

/// Regression for path-sensitive cache keys: the semantic key embeds no
/// manifest path, so renaming *and* moving a manifest between runs (in
/// separate processes) still hits the on-disk cache.
#[test]
fn cli_fleet_cache_survives_rename_and_move() {
    let dir = std::env::temp_dir()
        .join("rehearsal-fleet-it")
        .join("rename");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("manifests")).unwrap();
    let cache = dir.join("verdicts.jsonl");
    let source = "file { '/etc/motd': content => 'hello' }\n";
    std::fs::write(dir.join("manifests/motd.pp"), source).unwrap();

    let run = || -> Json {
        let out = rehearsal()
            .args([
                "fleet",
                dir.join("manifests").to_str().unwrap(),
                "--json",
                "--cache",
                cache.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        parse_json(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON report")
    };

    let cold = run();
    assert_eq!(
        cold.get("counts")
            .and_then(|c| c.get("cached"))
            .and_then(Json::as_u64),
        Some(0)
    );

    // Rename the file and move it into a subdirectory.
    std::fs::create_dir_all(dir.join("manifests/site")).unwrap();
    std::fs::remove_file(dir.join("manifests/motd.pp")).unwrap();
    std::fs::write(dir.join("manifests/site/renamed.pp"), source).unwrap();

    let warm = run();
    assert_eq!(
        warm.get("counts")
            .and_then(|c| c.get("cached"))
            .and_then(Json::as_u64),
        Some(1),
        "renamed + moved manifest must hit the content-identity cache"
    );
}

/// End-to-end differential verification: a cold `--baseline` run records
/// footprints and pair verdicts; an attribute edit re-analyzes only the
/// dirty cone (here exactly one resource) while the untouched manifest
/// replays without analysis — with verdicts identical to the cold run.
#[test]
fn cli_fleet_baseline_edit_replay() {
    let dir = std::env::temp_dir()
        .join("rehearsal-fleet-it")
        .join("baseline");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.jsonl");
    let trio = "file { '/etc/motd': content => 'a' }\n\
                file { '/srv/app.conf': content => 'b' }\n\
                file { '/var/banner': content => 'c' }\n";
    std::fs::write(dir.join("trio.pp"), trio).unwrap();
    let ntp = rehearsal::benchmarks::by_name("ntp").unwrap();
    std::fs::write(dir.join("ntp.pp"), ntp.source).unwrap();

    let run = || -> Json {
        let out = rehearsal()
            .args([
                "fleet",
                dir.to_str().unwrap(),
                "--json",
                "--baseline",
                baseline.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        parse_json(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON report")
    };
    let row = |doc: &Json, name: &str| -> Json {
        doc.get("manifests")
            .and_then(Json::as_arr)
            .expect("rows")
            .iter()
            .find(|r| {
                r.get("manifest")
                    .and_then(Json::as_str)
                    .is_some_and(|m| m.ends_with(name))
            })
            .expect("row present")
            .clone()
    };
    let reuse = |row: &Json, field: &str| -> u64 {
        row.get("reuse")
            .and_then(|r| r.get(field))
            .and_then(Json::as_u64)
            .expect("reuse counters present")
    };

    let cold = run();
    assert!(baseline.exists(), "baseline file written");
    let trio_cold = row(&cold, "trio.pp");
    assert_eq!(
        trio_cold.get("verdict").and_then(Json::as_str),
        Some("deterministic")
    );
    assert_eq!(reuse(&trio_cold, "resources_dirty"), 3, "cold = all dirty");

    // Mutate one attribute of one (footprint-disjoint, unordered)
    // resource.
    std::fs::write(
        dir.join("trio.pp"),
        trio.replace("content => 'c'", "content => 'changed'"),
    )
    .unwrap();

    let warm = run();
    let trio_warm = row(&warm, "trio.pp");
    assert_eq!(
        trio_warm.get("verdict").and_then(Json::as_str),
        Some("deterministic"),
        "verdict identical to a cold run"
    );
    assert_eq!(trio_warm.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reuse(&trio_warm, "resources_dirty"),
        1,
        "only the edited resource re-analyzes"
    );
    assert_eq!(reuse(&trio_warm, "resources_clean"), 2);
    assert!(
        reuse(&trio_warm, "pairs_reused") >= 1,
        "clean pair verdicts are reused"
    );
    // The untouched manifest replays wholesale from the baseline.
    let ntp_warm = row(&warm, "ntp.pp");
    assert_eq!(ntp_warm.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        ntp_warm.get("verdict").and_then(Json::as_str),
        Some("deterministic")
    );
    assert_eq!(reuse(&ntp_warm, "resources_dirty"), 0);
}

/// The gate passes (exit 0) on a clean fleet.
#[test]
fn cli_fleet_passes_clean_fleet() {
    let dir = std::env::temp_dir()
        .join("rehearsal-fleet-it")
        .join("clean");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for b in SUITE.iter().filter(|b| b.deterministic) {
        std::fs::write(dir.join(format!("{}.pp", b.name)), b.source).unwrap();
    }
    let out = rehearsal()
        .args(["fleet", dir.to_str().unwrap(), "--jobs", "2"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("fleet is clean"), "{stdout}");
}

/// `--list` mode verifies exactly the listed manifests.
#[test]
fn cli_fleet_list_mode() {
    let dir = fleet_dir("list");
    let list = dir.join("fleet.list");
    std::fs::write(&list, "nginx.pp\nmonit.pp\n").unwrap();
    let out = rehearsal()
        .args([
            "fleet",
            "--list",
            list.to_str().unwrap(),
            "--jobs",
            "2",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let doc = parse_json(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let counts = doc.get("counts").expect("counts");
    assert_eq!(counts.get("total").and_then(Json::as_u64), Some(2));
    assert_eq!(counts.get("deterministic").and_then(Json::as_u64), Some(2));
}

/// `check --json` shares the fleet serializer and carries the stats.
#[test]
fn cli_check_json() {
    let dir = fleet_dir("check-json");
    let ntp = rehearsal::benchmarks::by_name("ntp").unwrap();
    std::fs::write(dir.join("ntp.pp"), ntp.source).unwrap();
    let out = rehearsal()
        .args(["check", dir.join("ntp.pp").to_str().unwrap(), "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let doc = parse_json(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(
        doc.get("verdict").and_then(Json::as_str),
        Some("deterministic")
    );
    assert_eq!(doc.get("idempotent").and_then(Json::as_bool), Some(true));
    let stats = doc.get("stats").expect("stats");
    assert!(stats.get("resources").and_then(Json::as_u64).unwrap() >= 3);

    let out = rehearsal()
        .args([
            "check",
            dir.join("ntp-nondet.pp").to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let doc = parse_json(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("rehearsal-check/5")
    );
    assert_eq!(
        doc.get("verdict").and_then(Json::as_str),
        Some("nondeterministic")
    );
    assert_eq!(doc.get("idempotent"), Some(&Json::Null));
    // Schema 5: the race is also in the diagnostics array, source-anchored
    // and round-trippable through the documented encoding.
    let diags = doc
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("diagnostics array");
    let race = diags
        .iter()
        .find(|d| d.get("code").and_then(Json::as_str) == Some("R3001"))
        .expect("race diagnostic");
    let decoded = rehearsal::fleet::diagnostic_from_json(race).expect("decodes");
    assert!(decoded.has_resolvable_span());
    assert_eq!(decoded.severity, rehearsal::Severity::Error);
    assert!(!decoded.secondary.is_empty(), "both declarations cited");
}

/// `benchmarks --json --timeout` emits one row per benchmark with the
/// per-benchmark deadline applied (all complete well within it).
#[test]
fn cli_benchmarks_json_with_timeout() {
    let out = rehearsal()
        .args(["benchmarks", "--json", "--timeout", "120"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    let doc = parse_json(&stdout).expect("valid JSON");
    let rows = doc.get("benchmarks").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), 13);
    assert!(rows
        .iter()
        .all(|r| r.get("expected").and_then(Json::as_bool) == Some(true)));
    assert_eq!(doc.get("all_expected").and_then(Json::as_bool), Some(true));
}

fn metadata_jobs() -> Vec<FleetJob> {
    METADATA_SUITE
        .iter()
        .map(|b| FleetJob {
            name: format!("{}.pp", b.name),
            source: b.source.to_string(),
            platform: Platform::Ubuntu,
        })
        .collect()
}

/// Pinned verdicts for the permission-race suite: with the metadata model
/// off the races are invisible (all six verify clean), with it on the
/// three `-nondet` manifests report NONDET and their `->`-fixed twins
/// stay deterministic *and* idempotent. The two configurations must not
/// share cache entries.
#[test]
fn metadata_suite_verdicts_are_pinned() {
    let mut engine = FleetEngine::new(FleetOptions::default().with_jobs(2));
    let plain = engine.run(metadata_jobs());
    for row in &plain.rows {
        assert_eq!(
            row.verdict,
            Verdict::Deterministic,
            "{}: metadata-only races must be invisible without the model",
            row.manifest
        );
    }
    assert!(plain.all_clean());

    let mut options = FleetOptions::default().with_jobs(2);
    options.analysis.model_metadata = true;
    let mut engine_meta = FleetEngine::new(options);
    let meta = engine_meta.run(metadata_jobs());
    assert_eq!(meta.rows.len(), 6);
    for (row, b) in meta.rows.iter().zip(METADATA_SUITE) {
        let expected = if b.deterministic_with_metadata {
            Verdict::Deterministic
        } else {
            Verdict::Nondeterministic
        };
        assert_eq!(row.verdict, expected, "{}", b.name);
        assert!(
            !row.cached,
            "{}: distinct options must miss the cache",
            b.name
        );
    }
    let c = meta.counts();
    assert_eq!((c.deterministic, c.nondeterministic), (3, 3));
    assert!(!meta.all_clean(), "the races gate the fleet");
    // Warm rerun under the same options is all hits.
    let warm = engine_meta.run(metadata_jobs());
    assert_eq!(warm.counts().cached, 6);
}

/// The CLI gate with `--model-metadata`: exits non-zero on the race suite
/// and reports the 3/3 split; without the flag the same directory passes.
#[test]
fn cli_fleet_model_metadata_gate() {
    let dir = std::env::temp_dir()
        .join("rehearsal-fleet-it")
        .join("metadata");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for b in METADATA_SUITE {
        std::fs::write(dir.join(format!("{}.pp", b.name)), b.source).unwrap();
    }
    let out = rehearsal()
        .args(["fleet", dir.to_str().unwrap(), "--jobs", "2", "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "clean without the metadata model");

    let out = rehearsal()
        .args([
            "fleet",
            dir.to_str().unwrap(),
            "--jobs",
            "2",
            "--json",
            "--model-metadata",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "races fail the gate");
    let doc = parse_json(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let counts = doc.get("counts").expect("counts");
    assert_eq!(counts.get("deterministic").and_then(Json::as_u64), Some(3));
    assert_eq!(
        counts.get("nondeterministic").and_then(Json::as_u64),
        Some(3)
    );
}

/// `check --json --model-metadata` reports schema 5 with the metadata
/// counters, and the counterexample replays as two succeeding orders.
#[test]
fn cli_check_json_metadata_schema() {
    let dir = std::env::temp_dir()
        .join("rehearsal-fleet-it")
        .join("metadata-check");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let b = METADATA_SUITE
        .iter()
        .find(|b| b.name == "webroot-perms-nondet")
        .unwrap();
    let path = dir.join("webroot-perms-nondet.pp");
    std::fs::write(&path, b.source).unwrap();

    let out = rehearsal()
        .args([
            "check",
            path.to_str().unwrap(),
            "--json",
            "--model-metadata",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let doc = parse_json(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("rehearsal-check/5")
    );
    assert_eq!(
        doc.get("model_metadata").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        doc.get("verdict").and_then(Json::as_str),
        Some("nondeterministic")
    );
    let stats = doc.get("stats").expect("stats");
    assert!(stats.get("meta_ops").and_then(Json::as_u64).unwrap() >= 2);
    assert!(
        stats
            .get("meta_tracked_paths")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );

    // Without the flag the same manifest is clean and reports zero
    // metadata counters (the model is off, schema stays 5).
    let out = rehearsal()
        .args(["check", path.to_str().unwrap(), "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let doc = parse_json(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(
        doc.get("model_metadata").and_then(Json::as_bool),
        Some(false)
    );
    let stats = doc.get("stats").expect("stats");
    assert_eq!(stats.get("meta_ops").and_then(Json::as_u64), Some(0));
    assert_eq!(
        stats.get("meta_tracked_paths").and_then(Json::as_u64),
        Some(0)
    );
}

/// The scratch fleet directory layout is discovered recursively.
#[test]
fn discovery_is_recursive() {
    let dir = fleet_dir("nested");
    let sub = dir.join("roles/web");
    std::fs::create_dir_all(&sub).unwrap();
    std::fs::write(sub.join("extra.pp"), "file { '/etc/motd': content => 'x' }").unwrap();
    let found = rehearsal::fleet::discover_manifests(&dir).unwrap();
    assert_eq!(found.len(), 14);
    assert!(found
        .iter()
        .any(|p| p.ends_with(Path::new("roles/web/extra.pp"))));
}
