//! Integration tests for the solver-free lint pass: the R2001 soundness
//! pin (every NONDET benchmark is flagged, every deterministic one is
//! not), the solver-free guarantee (no SAT counters move), the speed
//! budget, golden-file renders, and JSON round-trips.
//!
//! Regenerate the golden files with
//! `REGENERATE_GOLDEN=1 cargo test --test lint`.

use rehearsal::fleet::{diagnostic_from_json, diagnostic_json, parse_json};
use rehearsal::trace::Session;
use rehearsal::{codes, lint_source, LintOptions, Severity};
use std::path::PathBuf;

fn lint(name: &str, source: &str) -> rehearsal::LintReport {
    lint_source(name, source, &LintOptions::default())
}

fn has_code(report: &rehearsal::LintReport, code: &str) -> bool {
    report.findings.iter().any(|d| d.code == code)
}

// ---- the R2001 soundness pin ----

/// The headline guarantee: `race-candidate` is a sound pre-screen for the
/// explorer. Every benchmark the explorer proves NON-DETERMINISTIC
/// contains an unordered overlapping pair, so R2001 must fire on all six
/// `-nondet` manifests — and on none of the deterministic ones (the
/// bundled manifests are kept lint-clean, so this doubles as a
/// false-positive pin).
#[test]
fn race_candidate_flags_every_nondet_benchmark_and_no_det_one() {
    let mut nondet = 0;
    for b in rehearsal::benchmarks::SUITE
        .iter()
        .chain(rehearsal::benchmarks::FIXED_SUITE)
    {
        let report = lint(b.name, b.source);
        if b.deterministic {
            assert!(
                !has_code(&report, "R2001"),
                "{}: false positive on a deterministic manifest:\n{}",
                b.name,
                report.render()
            );
        } else {
            assert!(
                has_code(&report, "R2001"),
                "{}: NONDET manifest missed by race-candidate (soundness!)",
                b.name
            );
            nondet += 1;
        }
    }
    assert_eq!(nondet, 6, "all six NONDET benchmarks covered");
}

/// The metadata suite: lint always models metadata (effects only grow,
/// so the pre-screen stays sound for both explorer configurations). The
/// three metadata races are flagged; their `->`-fixed twins are not.
#[test]
fn race_candidate_covers_the_metadata_suite() {
    for b in rehearsal::benchmarks::METADATA_SUITE {
        let report = lint(b.name, b.source);
        assert_eq!(
            has_code(&report, "R2001"),
            !b.deterministic_with_metadata,
            "{}:\n{}",
            b.name,
            report.render()
        );
    }
}

/// The deterministic bundled manifests are lint-clean at warning level —
/// except the metadata twins, whose same-path-different-metadata shape is
/// the scenario itself (R2004 stays, by design).
#[test]
fn deterministic_bundled_manifests_are_lint_clean() {
    for b in rehearsal::benchmarks::FIXED_SUITE {
        let report = lint(b.name, b.source);
        let loud: Vec<_> = report
            .findings
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert!(
            loud.is_empty(),
            "{}: expected lint-clean, got:\n{}",
            b.name,
            report.render()
        );
    }
}

// ---- the solver-free and speed pins ----

/// Linting the whole bundled corpus never touches the SAT solver: the
/// `sat.*` counters stay unset while the `lint.*` counters move. This is
/// what makes the pass safe to run on every manifest of a fleet before
/// the explorer.
#[test]
fn lint_is_solver_free() {
    let session = Session::new();
    let _guard = session.install();
    for b in rehearsal::benchmarks::SUITE
        .iter()
        .chain(rehearsal::benchmarks::FIXED_SUITE)
    {
        let _ = lint(b.name, b.source);
    }
    for b in rehearsal::benchmarks::METADATA_SUITE {
        let _ = lint(b.name, b.source);
    }
    let snap = session.snapshot();
    assert_eq!(snap.metrics.counter("sat.queries"), None);
    assert_eq!(snap.metrics.counter("sat.queries_incremental"), None);
    let rules_run = snap.metrics.counter("lint.rules_run").unwrap_or(0);
    assert!(rules_run > 0, "lint.rules_run counted ({rules_run})");
    assert!(snap.metrics.counter("lint.findings").is_some());
}

/// The pass stays in static-analysis time: under 50ms per bundled
/// manifest even unoptimized (release builds are ~1ms).
#[test]
fn lint_stays_under_fifty_millis_per_manifest() {
    for b in rehearsal::benchmarks::SUITE
        .iter()
        .chain(rehearsal::benchmarks::FIXED_SUITE)
    {
        let start = std::time::Instant::now();
        let _ = lint(b.name, b.source);
        let elapsed = start.elapsed();
        assert!(
            elapsed.as_millis() < 50,
            "{}: lint took {elapsed:?}",
            b.name
        );
    }
}

// ---- golden-file renders ----

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares rendered text against a committed golden file (or rewrites it
/// under `REGENERATE_GOLDEN=1`).
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("REGENERATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "rendered output diverged from {} (set REGENERATE_GOLDEN=1 to update)",
        path.display()
    );
}

#[test]
fn golden_lint_race_candidate_two_snippets() {
    let src = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benchmarks/ntp-nondet.pp"),
    )
    .unwrap();
    let report = lint("benchmarks/ntp-nondet.pp", &src);
    let out = report.render();
    assert!(out.contains("warning[R2001]"), "{out}");
    assert!(out.contains('^'), "primary carets: {out}");
    assert_golden("lint_race_ntp_nondet.txt", &out);
}

#[test]
fn golden_lint_mixed_rules() {
    // The undeclared reference sits in a dead branch so evaluation still
    // succeeds and the catalog rules (R2002, R2008) run alongside it.
    let src = "$unused = 1\n\
               file { '/etc/app.conf': content => 'x', mode => '999' }\n\
               service { 'app': ensure => running, require => File['/etc/app.conf'] }\n\
               if false { file { '/dead': require => File['/nowhere'] } }\n";
    let report = lint("mixed.pp", src);
    let out = report.render();
    for code in ["R2002", "R2003", "R2005", "R2008"] {
        assert!(out.contains(code), "missing {code}:\n{out}");
    }
    assert_golden("lint_mixed.txt", &out);
}

// ---- JSON round-trips ----

/// Every lint finding survives the documented JSON encoding (the same
/// encoder fleet rows and `lint --json` use).
#[test]
fn lint_findings_roundtrip_through_json() {
    let src = "$unused = 1\n\
               file { '/etc/app.conf': content => 'x', mode => '999' }\n\
               service { 'app': ensure => running, require => File['/etc/app.conf'] }\n";
    let report = lint("roundtrip.pp", src);
    assert!(report.findings.len() >= 3, "{}", report.render());
    for d in &report.findings {
        assert!(codes::is_registered(&d.code), "{}", d.code);
        let text = diagnostic_json(d).render();
        let back = diagnostic_from_json(&parse_json(&text).unwrap())
            .unwrap_or_else(|| panic!("decode failed for {text}"));
        assert_eq!(&back, d, "round-trip changed the finding");
        assert!(back.span().same(&d.span()), "span survived");
    }
}
