//! End-to-end coverage of every modeled resource type (paper §3.3):
//! each type verifies in a correct manifest, produces the right FS effects
//! under simulation, and participates in determinacy bugs when misused.

use rehearsal::fs::{eval, FileSystem, FsPath};
use rehearsal::{Platform, Rehearsal};

fn tool() -> Rehearsal {
    Rehearsal::new(Platform::Ubuntu)
}

/// Applies a deterministic manifest concretely and returns the final state.
fn simulate(source: &str) -> FileSystem {
    let graph = tool().lower(source).expect("lowers");
    let order = graph.topological_order();
    let mut fs = FileSystem::with_root();
    for i in order {
        fs = eval(graph.exprs[i], &fs)
            .unwrap_or_else(|_| panic!("{} failed during simulation", graph.names[i]));
    }
    fs
}

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

#[test]
fn file_resource_end_to_end() {
    let fs = simulate(
        r#"
        file { '/srv': ensure => directory }
        file { '/srv/app': ensure => directory, require => File['/srv'] }
        file { '/srv/app/config': content => 'key=value', require => File['/srv/app'] }
        "#,
    );
    assert!(fs.is_dir(p("/srv/app")));
    assert!(fs.is_file(p("/srv/app/config")));
}

#[test]
fn package_resource_end_to_end() {
    let fs = simulate("package { 'wget': ensure => present }");
    assert!(fs.is_file(p("/usr/bin/wget")));
    assert!(fs.is_file(p("/etc/wgetrc")));
}

#[test]
fn user_and_group_end_to_end() {
    let fs = simulate(
        r#"
        group { 'devs': gid => 500 }
        user { 'carol':
          ensure     => present,
          managehome => true,
          shell      => '/bin/zsh',
          require    => Group['devs'],
        }
        "#,
    );
    assert!(fs.is_file(p("/etc/groups/devs")));
    assert!(fs.is_file(p("/etc/users/carol")));
    assert!(fs.is_dir(p("/home/carol")));
}

#[test]
fn ssh_key_end_to_end() {
    let fs = simulate(
        r#"
        user { 'carol': ensure => present, managehome => true }
        ssh_authorized_key { 'carol@laptop':
          user    => 'carol',
          key     => 'AAAA',
          require => User['carol'],
        }
        "#,
    );
    assert!(fs.is_file(p("/ssh_keys/carol/carol@laptop")));
    assert!(fs.is_file(p("/home/carol/.ssh/authorized_keys")));
}

#[test]
fn service_end_to_end() {
    let fs = simulate(
        r#"
        package { 'monit': ensure => present }
        service { 'monit': ensure => running, enable => true, require => Package['monit'] }
        "#,
    );
    assert!(fs.is_file(p("/var/run/services/monit")));
    assert!(fs.is_file(p("/etc/rc2.d/S20monit")));
}

#[test]
fn service_stopped_end_to_end() {
    let fs = simulate("service { 'ghost': ensure => stopped }");
    assert!(fs.not_exists(p("/var/run/services/ghost")));
}

#[test]
fn cron_end_to_end() {
    let fs = simulate(
        r#"
        cron { 'backup':
          command => '/usr/local/bin/backup.sh',
          user    => 'root',
          hour    => 2,
          minute  => 30,
        }
        "#,
    );
    assert!(fs.is_file(p("/var/spool/cron/root/backup")));
}

#[test]
fn host_end_to_end() {
    let fs = simulate("host { 'db.internal': ip => '10.1.2.3' }");
    assert!(fs.is_file(p("/hosts_entries/db.internal")));
    assert!(fs.is_file(p("/etc/hosts")));
}

#[test]
fn notify_end_to_end() {
    let fs = simulate("notify { 'hello world': }");
    // Notify has no filesystem effect.
    assert_eq!(fs.len(), 1, "only the root");
}

#[test]
fn all_types_together_verify() {
    let report = tool()
        .verify(
            r#"
            group { 'ops': }
            user { 'deploy': managehome => true, require => Group['ops'] }
            ssh_authorized_key { 'deploy@ci':
              user => 'deploy', key => 'AAAA', require => User['deploy'],
            }
            package { 'rsyslog': ensure => present }
            file { '/etc/rsyslog.d/99-app.conf':
              content => 'local0.* /var/log/app.log',
              require => Package['rsyslog'],
            }
            service { 'rsyslog':
              ensure    => running,
              require   => Package['rsyslog'],
              subscribe => File['/etc/rsyslog.d/99-app.conf'],
            }
            cron { 'rotate': command => '/usr/sbin/logrotate', hour => 1 }
            host { 'syslog.internal': ip => '10.0.0.9' }
            notify { 'configured': }
            "#,
        )
        .unwrap();
    assert!(report.is_correct(), "a manifest using every resource type");
}

#[test]
fn two_hosts_commute_via_identical_stamp() {
    // Both host resources overwrite /etc/hosts with the same sentinel —
    // the idempotent-block refinement proves they commute.
    let report = tool()
        .check_determinism(
            r#"
            host { 'a.internal': ip => '10.0.0.1' }
            host { 'b.internal': ip => '10.0.0.2' }
            "#,
        )
        .unwrap();
    assert!(report.is_deterministic());
}

#[test]
fn host_vs_file_on_etc_hosts_conflicts() {
    // A file resource managing /etc/hosts races every host entry (the
    // ssh-key-style stamp design, §3.3).
    let report = tool()
        .check_determinism(
            r#"
            host { 'a.internal': ip => '10.0.0.1' }
            file { '/etc/hosts': content => 'hand-rolled' }
            "#,
        )
        .unwrap();
    assert!(!report.is_deterministic());
}

#[test]
fn ssh_key_vs_file_on_keyfile_conflicts() {
    // The paper's motivating ssh_authorized_key design: a file resource
    // clobbering the key-file must be flagged.
    let report = tool()
        .check_determinism(
            r#"
            user { 'carol': managehome => true }
            ssh_authorized_key { 'k':
              user => 'carol', key => 'AAAA', require => User['carol'],
            }
            file { '/home/carol/.ssh/authorized_keys':
              content => 'my own keys',
              require => User['carol'],
            }
            "#,
        )
        .unwrap();
    assert!(!report.is_deterministic());
}

#[test]
fn two_crons_same_user_commute() {
    let report = tool()
        .check_determinism(
            r#"
            cron { 'a': command => '/bin/a' }
            cron { 'b': command => '/bin/b' }
            "#,
        )
        .unwrap();
    assert!(report.is_deterministic());
}

#[test]
fn package_removal_verifies() {
    let report = tool()
        .verify("package { 'vim': ensure => absent }")
        .unwrap();
    assert!(
        report.is_correct(),
        "removal is idempotent and deterministic"
    );
}

#[test]
fn install_vs_remove_same_package_conflicts() {
    let report = tool()
        .check_determinism(
            r#"
            package { 'vim': ensure => present }
            package { 'vim-redux':
              name   => 'vim',
              ensure => absent,
            }
            "#,
        )
        .unwrap();
    assert!(!report.is_deterministic(), "install and remove race");
}
