//! Cross-validation of the symbolic determinacy checker against exhaustive
//! concrete enumeration on small random graphs.
//!
//! This is the executable form of the paper's soundness and completeness
//! theorems (Theorem 1): on every randomly generated resource graph, the
//! SAT-based verdict must coincide with literally trying every valid
//! permutation on every (tree-consistent) filesystem.

use proptest::prelude::*;
use rehearsal::core::determinism::{check_determinism, AnalysisOptions, FsGraph};
use rehearsal::core::equivalence::check_expr_equivalence;
use rehearsal::core::idempotence::check_expr_idempotence;
use rehearsal::fs::{
    enumerate_filesystems, eval, Content, Expr, FileState, FileSystem, FsPath, Pred,
};
use std::collections::BTreeSet;

fn paths() -> Vec<FsPath> {
    vec![
        FsPath::parse("/a").unwrap(),
        FsPath::parse("/a/f").unwrap(),
        FsPath::parse("/b").unwrap(),
    ]
}

fn contents() -> Vec<Content> {
    vec![Content::intern("c1"), Content::intern("c2")]
}

/// A small expression language mirroring resource idioms.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let path = (0..3usize).prop_map(|i| paths()[i]);
    let content = (0..2usize).prop_map(|i| contents()[i]);
    prop_oneof![
        // ensure_dir
        path.clone()
            .prop_map(|p| Expr::if_then(Pred::IsDir(p).not(), Expr::Mkdir(p))),
        // overwrite
        (path.clone(), content.clone()).prop_map(|(p, c)| Expr::if_(
            Pred::DoesNotExist(p),
            Expr::CreateFile(p, c),
            Expr::if_(
                Pred::IsFile(p),
                Expr::Rm(p).seq(Expr::CreateFile(p, c)),
                Expr::Error,
            ),
        )),
        // create-if-absent
        (path.clone(), content.clone()).prop_map(|(p, c)| Expr::if_(
            Pred::DoesNotExist(p),
            Expr::CreateFile(p, c),
            Expr::if_(Pred::IsFile(p), Expr::Skip, Expr::Error),
        )),
        // remove-if-present
        path.clone().prop_map(|p| Expr::if_(
            Pred::IsFile(p),
            Expr::Rm(p),
            Expr::if_(Pred::DoesNotExist(p), Expr::Skip, Expr::Error),
        )),
        // raw operations
        path.clone().prop_map(Expr::Mkdir),
        (path.clone(), content).prop_map(|(p, c)| Expr::CreateFile(p, c)),
        path.clone().prop_map(Expr::Rm),
        // a guard that requires a file to exist
        path.prop_map(|p| Expr::if_(Pred::IsFile(p), Expr::Skip, Expr::Error)),
    ]
}

/// Random graphs of 2–3 expressions with random forward edges.
fn arb_graph() -> impl Strategy<Value = FsGraph> {
    (
        proptest::collection::vec(arb_expr(), 2..=3),
        proptest::collection::vec(any::<bool>(), 3),
    )
        .prop_map(|(exprs, edge_bits)| {
            let n = exprs.len();
            let mut edges = BTreeSet::new();
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if edge_bits[k % edge_bits.len()] {
                        edges.insert((i, j));
                    }
                    k += 1;
                }
            }
            let names = (0..n).map(|i| format!("r{i}")).collect();
            FsGraph::new(exprs, edges, names)
        })
}

/// All tree-consistent filesystems over the given paths and contents.
fn consistent_states(ps: &[FsPath], cs: &[Content]) -> Vec<FileSystem> {
    enumerate_filesystems(ps, cs)
        .into_iter()
        .map(|fs| fs.set(FsPath::root(), FileState::Dir))
        .filter(|fs| {
            fs.iter().all(|(p, _)| match p.parent() {
                None => true,
                Some(parent) => fs.is_dir(parent),
            })
        })
        .collect()
}

/// Every valid permutation of the graph.
fn all_orders(graph: &FsGraph) -> Vec<Vec<usize>> {
    fn rec(
        graph: &FsGraph,
        placed: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if placed.len() == used.len() {
            out.push(placed.clone());
            return;
        }
        for i in 0..used.len() {
            if used[i] {
                continue;
            }
            let ready = graph.edges.iter().all(|&(a, b)| b != i || used[a]);
            if ready {
                used[i] = true;
                placed.push(i);
                rec(graph, placed, used, out);
                placed.pop();
                used[i] = false;
            }
        }
    }
    let mut out = Vec::new();
    rec(
        graph,
        &mut Vec::new(),
        &mut vec![false; graph.exprs.len()],
        &mut out,
    );
    out
}

/// Brute-force determinism: on every consistent state, every valid order
/// must give the same outcome (restricted to the modeled paths).
fn brute_force_deterministic(graph: &FsGraph) -> bool {
    let mut domain: BTreeSet<FsPath> = paths().into_iter().collect();
    for e in &graph.exprs {
        domain.extend(e.paths());
    }
    let ps: Vec<FsPath> = domain.iter().copied().collect();
    let orders = all_orders(graph);
    for fs in consistent_states(&ps, &contents()) {
        let mut outcomes = BTreeSet::new();
        for order in &orders {
            let mut state = Ok(fs.clone());
            for &i in order {
                state = state.and_then(|s| eval(&graph.exprs[i], &s));
            }
            outcomes.insert(state.map(|s| s.restrict(&domain)));
            if outcomes.len() > 1 {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Theorem 1 in executable form, with all reductions enabled.
    #[test]
    fn symbolic_matches_brute_force(graph in arb_graph()) {
        let expected = brute_force_deterministic(&graph);
        let report = check_determinism(&graph, &AnalysisOptions::default())
            .expect("no abort on tiny graphs");
        prop_assert_eq!(
            report.is_deterministic(),
            expected,
            "graph: {:?}",
            graph.exprs
        );
    }

    /// The reductions never change the verdict: naive mode agrees with the
    /// fully-optimized mode.
    #[test]
    fn reductions_preserve_verdict(graph in arb_graph()) {
        let fancy = check_determinism(&graph, &AnalysisOptions::default())
            .expect("no abort");
        let naive = check_determinism(&graph, &AnalysisOptions::naive())
            .expect("no abort");
        prop_assert_eq!(fancy.is_deterministic(), naive.is_deterministic());
    }

    /// Equivalence cross-validation (the paper's Lemmas 2 and 3): the
    /// symbolic `e1 ≡ e2` verdict must match exhaustive enumeration.
    #[test]
    fn equivalence_matches_brute_force(e1 in arb_expr(), e2 in arb_expr()) {
        let report = check_expr_equivalence(&e1, &e2, &AnalysisOptions::default())
            .expect("no abort");
        let mut domain: BTreeSet<FsPath> = paths().into_iter().collect();
        domain.extend(e1.paths());
        domain.extend(e2.paths());
        let ps: Vec<FsPath> = domain.iter().copied().collect();
        let mut expected = true;
        for fs in consistent_states(&ps, &contents()) {
            let o1 = eval(&e1, &fs).map(|s| s.restrict(&domain));
            let o2 = eval(&e2, &fs).map(|s| s.restrict(&domain));
            if o1 != o2 {
                expected = false;
                break;
            }
        }
        prop_assert_eq!(report.is_equivalent(), expected, "{} vs {}", e1, e2);
    }

    /// Idempotence cross-validation: `e ≡ e; e` decided symbolically must
    /// match trying every consistent state concretely.
    #[test]
    fn idempotence_matches_brute_force(e in arb_expr()) {
        let report = check_expr_idempotence(&e, &AnalysisOptions::default())
            .expect("no abort");
        let mut domain: BTreeSet<FsPath> = paths().into_iter().collect();
        domain.extend(e.paths());
        let ps: Vec<FsPath> = domain.iter().copied().collect();
        let mut expected = true;
        for fs in consistent_states(&ps, &contents()) {
            let once = eval(&e, &fs);
            let twice = once.clone().and_then(|s| eval(&e, &s));
            let once = once.map(|s| s.restrict(&domain));
            let twice = twice.map(|s| s.restrict(&domain));
            if once != twice {
                expected = false;
                break;
            }
        }
        prop_assert_eq!(report.is_idempotent(), expected, "expr: {}", e);
    }
}
