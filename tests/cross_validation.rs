//! Cross-validation of the symbolic determinacy checker against exhaustive
//! concrete enumeration on small random graphs.
//!
//! This is the executable form of the paper's soundness and completeness
//! theorems (Theorem 1): on every randomly generated resource graph, the
//! SAT-based verdict must coincide with literally trying every valid
//! permutation on every (tree-consistent) filesystem.
//!
//! Graphs are sampled with a small in-file deterministic PRNG instead of
//! an external property-testing crate (the build environment is offline),
//! so every run covers the same seeded case set.

use rehearsal::core::determinism::{check_determinism, AnalysisOptions, FsGraph};
use rehearsal::core::equivalence::check_expr_equivalence;
use rehearsal::core::idempotence::check_expr_idempotence;
use rehearsal::fs::{
    enumerate_filesystems, eval, Content, Expr, FileState, FileSystem, FsPath, Pred,
};
use std::collections::BTreeSet;

/// Deterministic splitmix64 generator for test-case sampling.
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn paths() -> Vec<FsPath> {
    vec![
        FsPath::parse("/a").unwrap(),
        FsPath::parse("/a/f").unwrap(),
        FsPath::parse("/b").unwrap(),
    ]
}

fn contents() -> Vec<Content> {
    vec![Content::intern("c1"), Content::intern("c2")]
}

/// A small expression language mirroring resource idioms.
fn random_expr(rng: &mut Prng) -> Expr {
    let p = paths()[rng.usize(3)];
    let c = contents()[rng.usize(2)];
    match rng.usize(8) {
        // ensure_dir
        0 => Expr::if_then(Pred::is_dir(p).not(), Expr::mkdir(p)),
        // overwrite
        1 => Expr::if_(
            Pred::does_not_exist(p),
            Expr::create_file(p, c),
            Expr::if_(
                Pred::is_file(p),
                Expr::rm(p).seq(Expr::create_file(p, c)),
                Expr::ERROR,
            ),
        ),
        // create-if-absent
        2 => Expr::if_(
            Pred::does_not_exist(p),
            Expr::create_file(p, c),
            Expr::if_(Pred::is_file(p), Expr::SKIP, Expr::ERROR),
        ),
        // remove-if-present
        3 => Expr::if_(
            Pred::is_file(p),
            Expr::rm(p),
            Expr::if_(Pred::does_not_exist(p), Expr::SKIP, Expr::ERROR),
        ),
        // raw operations
        4 => Expr::mkdir(p),
        5 => Expr::create_file(p, c),
        6 => Expr::rm(p),
        // a guard that requires a file to exist
        _ => Expr::if_(Pred::is_file(p), Expr::SKIP, Expr::ERROR),
    }
}

/// Random graphs of 2–3 expressions with random forward edges.
fn random_graph(rng: &mut Prng) -> FsGraph {
    let n = 2 + rng.usize(2);
    let exprs: Vec<Expr> = (0..n).map(|_| random_expr(rng)).collect();
    let mut edges = BTreeSet::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.bool() {
                edges.insert((i, j));
            }
        }
    }
    let names = (0..n).map(|i| format!("r{i}")).collect();
    FsGraph::new(exprs, edges, names)
}

/// All tree-consistent filesystems over the given paths and contents.
fn consistent_states(ps: &[FsPath], cs: &[Content]) -> Vec<FileSystem> {
    enumerate_filesystems(ps, cs)
        .into_iter()
        .map(|fs| fs.set(FsPath::root(), FileState::DIR))
        .filter(|fs| {
            fs.iter().all(|(p, _)| match p.parent() {
                None => true,
                Some(parent) => fs.is_dir(parent),
            })
        })
        .collect()
}

/// Every valid permutation of the graph.
fn all_orders(graph: &FsGraph) -> Vec<Vec<usize>> {
    fn rec(
        graph: &FsGraph,
        placed: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if placed.len() == used.len() {
            out.push(placed.clone());
            return;
        }
        for i in 0..used.len() {
            if used[i] {
                continue;
            }
            let ready = graph.edges.iter().all(|&(a, b)| b != i || used[a]);
            if ready {
                used[i] = true;
                placed.push(i);
                rec(graph, placed, used, out);
                placed.pop();
                used[i] = false;
            }
        }
    }
    let mut out = Vec::new();
    rec(
        graph,
        &mut Vec::new(),
        &mut vec![false; graph.exprs.len()],
        &mut out,
    );
    out
}

/// Brute-force determinism: on every consistent state, every valid order
/// must give the same outcome (restricted to the modeled paths).
fn brute_force_deterministic(graph: &FsGraph) -> bool {
    let mut domain: BTreeSet<FsPath> = paths().into_iter().collect();
    for e in &graph.exprs {
        domain.extend(e.paths().iter().copied());
    }
    let ps: Vec<FsPath> = domain.iter().copied().collect();
    let orders = all_orders(graph);
    for fs in consistent_states(&ps, &contents()) {
        let mut outcomes = BTreeSet::new();
        for order in &orders {
            let mut state = Ok(fs.clone());
            for &i in order {
                state = state.and_then(|s| eval(graph.exprs[i], &s));
            }
            outcomes.insert(state.map(|s| s.restrict(&domain)));
            if outcomes.len() > 1 {
                return false;
            }
        }
    }
    true
}

/// Theorem 1 in executable form, with all reductions enabled.
#[test]
fn symbolic_matches_brute_force() {
    let mut rng = Prng::new(30);
    for case in 0..200 {
        let graph = random_graph(&mut rng);
        let expected = brute_force_deterministic(&graph);
        let report = check_determinism(&graph, &AnalysisOptions::default())
            .expect("no abort on tiny graphs");
        assert_eq!(
            report.is_deterministic(),
            expected,
            "case {case}, graph: {:?}",
            graph.exprs
        );
    }
}

/// The reductions never change the verdict: naive mode agrees with the
/// fully-optimized mode.
#[test]
fn reductions_preserve_verdict() {
    let mut rng = Prng::new(31);
    for case in 0..200 {
        let graph = random_graph(&mut rng);
        let fancy = check_determinism(&graph, &AnalysisOptions::default()).expect("no abort");
        let naive = check_determinism(&graph, &AnalysisOptions::naive()).expect("no abort");
        assert_eq!(
            fancy.is_deterministic(),
            naive.is_deterministic(),
            "case {case}, graph: {:?}",
            graph.exprs
        );
    }
}

/// Equivalence cross-validation (the paper's Lemmas 2 and 3): the
/// symbolic `e1 ≡ e2` verdict must match exhaustive enumeration.
#[test]
fn equivalence_matches_brute_force() {
    let mut rng = Prng::new(32);
    for _ in 0..200 {
        let e1 = random_expr(&mut rng);
        let e2 = random_expr(&mut rng);
        let report = check_expr_equivalence(e1, e2, &AnalysisOptions::default()).expect("no abort");
        let mut domain: BTreeSet<FsPath> = paths().into_iter().collect();
        domain.extend(e1.paths().iter().copied());
        domain.extend(e2.paths().iter().copied());
        let ps: Vec<FsPath> = domain.iter().copied().collect();
        let mut expected = true;
        for fs in consistent_states(&ps, &contents()) {
            let o1 = eval(e1, &fs).map(|s| s.restrict(&domain));
            let o2 = eval(e2, &fs).map(|s| s.restrict(&domain));
            if o1 != o2 {
                expected = false;
                break;
            }
        }
        assert_eq!(report.is_equivalent(), expected, "{e1} vs {e2}");
    }
}

/// Idempotence cross-validation: `e ≡ e; e` decided symbolically must
/// match trying every consistent state concretely.
#[test]
fn idempotence_matches_brute_force() {
    let mut rng = Prng::new(33);
    for _ in 0..200 {
        let e = random_expr(&mut rng);
        let report = check_expr_idempotence(e, &AnalysisOptions::default()).expect("no abort");
        let mut domain: BTreeSet<FsPath> = paths().into_iter().collect();
        domain.extend(e.paths().iter().copied());
        let ps: Vec<FsPath> = domain.iter().copied().collect();
        let mut expected = true;
        for fs in consistent_states(&ps, &contents()) {
            let once = eval(e, &fs);
            let twice = once.clone().and_then(|s| eval(e, &s));
            let once = once.map(|s| s.restrict(&domain));
            let twice = twice.map(|s| s.restrict(&domain));
            if once != twice {
                expected = false;
                break;
            }
        }
        assert_eq!(report.is_idempotent(), expected, "expr: {e}");
    }
}
