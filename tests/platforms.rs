//! Cross-platform checks (paper §8): the platform flag changes package
//! models, and a manifest can be re-verified per platform. The paper
//! suggests checking that a manifest behaves similarly on different
//! platforms — these tests do exactly that for the benchmark suite's
//! platform-neutral subset.

use rehearsal::{Platform, Rehearsal};

/// A manifest that adapts to the platform via facts.
const ADAPTIVE: &str = r#"
    $web = $osfamily ? { 'Debian' => 'nginx', default => 'nginx' }
    package { $web: ensure => present }
    service { $web:
      ensure  => running,
      require => Package[$web],
    }
"#;

#[test]
fn adaptive_manifest_verifies_on_both_platforms() {
    for platform in [Platform::Ubuntu, Platform::Centos] {
        let report = Rehearsal::new(platform).verify(ADAPTIVE).unwrap();
        assert!(report.is_correct(), "{platform:?}");
    }
}

#[test]
fn platform_specific_package_fails_elsewhere() {
    // apache2 exists on Ubuntu, not CentOS (which has httpd).
    let src = "package { 'apache2': ensure => present }";
    assert!(Rehearsal::new(Platform::Ubuntu)
        .check_determinism(src)
        .is_ok());
    let err = Rehearsal::new(Platform::Centos)
        .check_determinism(src)
        .unwrap_err();
    assert!(err.to_string().contains("apache2"), "{err}");
}

#[test]
fn same_manifest_same_verdict_across_platforms() {
    // A platform-neutral bug (user/file race) is caught on both.
    let src = r#"
        file { '/home/carol/.profile': content => 'x' }
        user { 'carol': ensure => present, managehome => true }
    "#;
    for platform in [Platform::Ubuntu, Platform::Centos] {
        let report = Rehearsal::new(platform).check_determinism(src).unwrap();
        assert!(!report.is_deterministic(), "{platform:?}");
    }
}

#[test]
fn centos_benchmark_roundtrip() {
    // An httpd-flavored stack verifies on CentOS.
    let src = r#"
        package { 'httpd': ensure => present }
        file { '/etc/httpd/conf/httpd.conf':
          content => 'ServerRoot /etc/httpd',
          require => Package['httpd'],
        }
        service { 'httpd':
          ensure    => running,
          require   => Package['httpd'],
          subscribe => File['/etc/httpd/conf/httpd.conf'],
        }
    "#;
    let report = Rehearsal::new(Platform::Centos).verify(src).unwrap();
    assert!(report.is_correct());
}
