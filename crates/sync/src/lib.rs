//! Lock-striped concurrent map primitives for Rehearsal.
//!
//! Several layers of the analyzer share process-wide or run-wide tables
//! that many threads probe at once: the footprint digest memos, the
//! commutativity oracle, and the parallel explorer's symbolic-state cache
//! and output registry. A single `Mutex<HashMap>` serializes every probe;
//! [`ShardedMap`] splits the key space across a power-of-two number of
//! independently locked shards so threads touching different keys never
//! contend, while keeping the simple "probe, compute outside the lock,
//! double-checked insert" memoization discipline.
//!
//! The map is append-friendly: values are never removed, and racing fills
//! of the same key are resolved first-writer-wins, so it is only suitable
//! for memo tables whose values are pure functions of their keys (both
//! racers compute the same fact) or registries where the first
//! registration should stick.
//!
//! # Examples
//!
//! ```
//! use rehearsal_sync::ShardedMap;
//!
//! let m: ShardedMap<u64, String> = ShardedMap::new();
//! let (v, hit) = m.get_or_insert_with(7, || "seven".to_string());
//! assert!(!hit);
//! let (v2, hit2) = m.get_or_insert_with(7, || unreachable!());
//! assert!(hit2);
//! assert_eq!(v, v2);
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Default shard count: enough stripes that a dozen worker threads with
/// hash-spread keys rarely collide, small enough that iterating shards
/// (for snapshots and length) stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// Routes a hashable value to a shard index in `0..n_shards`
/// (`n_shards` must be a power of two).
///
/// Uses the standard library's deterministic `DefaultHasher` so routing
/// is stable within a process without per-map random state; the high
/// bits are folded in so maps whose `Hash` impls only touch low bits
/// still spread.
pub fn shard_index<K: Hash>(key: &K, n_shards: usize) -> usize {
    debug_assert!(n_shards.is_power_of_two());
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    let x = h.finish();
    ((x ^ (x >> 32)) as usize) & (n_shards - 1)
}

/// A concurrent hash map striped across independently locked shards.
///
/// Reads take one shard's shared lock; writes take one shard's exclusive
/// lock. A lock that cannot be acquired immediately increments the map's
/// contention counter (surfaced by callers as e.g. the
/// `arena.shard_contention` trace gauge) before blocking, so profiles
/// show whether the stripe count is adequate.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Box<[RwLock<HashMap<K, V>>]>,
    contention: AtomicU64,
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap::new()
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// An empty map with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> ShardedMap<K, V> {
        ShardedMap::with_shards(DEFAULT_SHARDS)
    }

    /// An empty map with `n` shards (rounded up to a power of two).
    pub fn with_shards(n: usize) -> ShardedMap<K, V> {
        let n = n.max(1).next_power_of_two();
        let shards = (0..n).map(|_| RwLock::new(HashMap::new())).collect();
        ShardedMap {
            shards,
            contention: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        &self.shards[shard_index(key, self.shards.len())]
    }

    fn read_shard<'a>(
        &'a self,
        lock: &'a RwLock<HashMap<K, V>>,
    ) -> std::sync::RwLockReadGuard<'a, HashMap<K, V>> {
        match lock.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                lock.read().expect("sharded map poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("sharded map poisoned"),
        }
    }

    fn write_shard<'a>(
        &'a self,
        lock: &'a RwLock<HashMap<K, V>>,
    ) -> std::sync::RwLockWriteGuard<'a, HashMap<K, V>> {
        match lock.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                lock.write().expect("sharded map poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("sharded map poisoned"),
        }
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<V> {
        let lock = self.shard(key);
        self.read_shard(lock).get(key).cloned()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        let lock = self.shard(key);
        self.read_shard(lock).contains_key(key)
    }

    /// Inserts `value` under `key` unless a value is already present;
    /// returns the value that ended up in the map and whether it was
    /// already there (first-writer-wins).
    pub fn insert_if_absent(&self, key: K, value: V) -> (V, bool) {
        let lock = self.shard(&key);
        let mut guard = self.write_shard(lock);
        if let Some(existing) = guard.get(&key) {
            return (existing.clone(), true);
        }
        guard.insert(key, value.clone());
        (value, false)
    }

    /// The memoized value for `key`, computing it on first use.
    ///
    /// The lock is **not** held during `compute`, so two threads may race
    /// to fill the same entry; the first insert wins and the loser's
    /// computed value is discarded. Returns the stored value and whether
    /// the call was a cache hit (`true` iff `compute` did not run).
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.get(&key) {
            return (v, true);
        }
        let value = compute();
        let (stored, _) = self.insert_if_absent(key, value);
        (stored, false)
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.read_shard(s).len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| self.read_shard(s).is_empty())
    }

    /// Number of lock acquisitions that found their shard already held
    /// and had to block (a measure of stripe pressure, not a count of
    /// wasted work).
    pub fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every entry (shard by shard; entries
    /// inserted concurrently into already-visited shards are missed).
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for s in self.shards.iter() {
            let guard = self.read_shard(s);
            out.extend(guard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(&1), None);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn shard_count_rounds_up() {
        let m: ShardedMap<u32, u32> = ShardedMap::with_shards(5);
        assert_eq!(m.shards.len(), 8);
        let m: ShardedMap<u32, u32> = ShardedMap::with_shards(0);
        assert_eq!(m.shards.len(), 1);
    }

    #[test]
    fn first_writer_wins() {
        let m: ShardedMap<u32, &'static str> = ShardedMap::new();
        let (v, existed) = m.insert_if_absent(1, "a");
        assert_eq!((v, existed), ("a", false));
        let (v, existed) = m.insert_if_absent(1, "b");
        assert_eq!((v, existed), ("a", true));
        assert_eq!(m.get(&1), Some("a"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn get_or_insert_with_reports_hits() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        let (v, hit) = m.get_or_insert_with(3, || 30);
        assert_eq!((v, hit), (30, false));
        let (v, hit) = m.get_or_insert_with(3, || panic!("must not recompute"));
        assert_eq!((v, hit), (30, true));
    }

    #[test]
    fn keys_spread_across_shards() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        for k in 0..512u64 {
            m.insert_if_absent(k, k);
        }
        assert_eq!(m.len(), 512);
        let occupied = m
            .shards
            .iter()
            .filter(|s| !s.read().unwrap().is_empty())
            .count();
        assert!(occupied > 1, "hash routing should use more than one shard");
        let mut snap = m.snapshot();
        snap.sort_unstable();
        assert_eq!(snap.len(), 512);
        assert!(snap.iter().all(|&(k, v)| k == v));
    }

    #[test]
    fn concurrent_fills_converge() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let m = &m;
                scope.spawn(move || {
                    for k in 0..256u32 {
                        // Every thread computes the same pure function, so
                        // whichever writer wins stores the right value.
                        let (v, _) = m.get_or_insert_with(k, || k * 2 + (t - t));
                        assert_eq!(v, k * 2);
                    }
                });
            }
        });
        assert_eq!(m.len(), 256);
    }
}
