//! The daemon's run history: an append-only JSONL log
//! (schema `rehearsal-history/1`) whose records form a hash chain —
//! each record carries the FNV-1a digest of its own rendering and the
//! previous record's digest, so any in-place edit, reorder, or deletion
//! below the tail is detectable by replaying the chain. A *torn tail*
//! (the final line cut short by a crash mid-write) is expected rather
//! than fatal: [`HistoryLog::open`] truncates the file back to its
//! longest valid prefix and resumes the chain from there, mirroring the
//! corrupt-line policy of the verdict-cache and baseline stores.

use rehearsal_fleet::{fnv1a_digest, parse_json, Json};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Schema tag every history record carries.
pub const HISTORY_SCHEMA: &str = "rehearsal-history/1";
/// File name of the history log inside a `--state-dir`.
pub const HISTORY_FILE: &str = "history.jsonl";

/// The digest a chain starts from (before any record exists).
const GENESIS: u64 = 0;

fn hex(h: u64) -> String {
    format!("{h:016x}")
}

/// The result of replaying a history file's hash chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainReport {
    /// Records whose hash and back-link verified, from the start.
    pub valid: u64,
    /// Bytes those valid records occupy (the truncation point).
    pub valid_bytes: u64,
    /// Whether anything followed the valid prefix (a torn or tampered
    /// tail).
    pub torn: bool,
}

/// Replays `text` and returns the longest valid prefix plus the chain
/// state needed to resume appending after it.
fn scan(text: &str) -> (ChainReport, u64, u64) {
    let mut valid = 0u64;
    let mut valid_bytes = 0u64;
    let mut prev = GENESIS;
    let mut seq = 0u64;
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        let record = line.trim_end();
        offset += line.len();
        if record.is_empty() {
            // A blank line can only be trailing whitespace from a torn
            // write; stop the valid prefix before it.
            break;
        }
        let Ok(Json::Obj(pairs)) = parse_json(record) else {
            break;
        };
        let Some((hash_key, Json::Str(stored))) = pairs.last() else {
            break;
        };
        if hash_key != "hash" {
            break;
        }
        let body = Json::Obj(pairs[..pairs.len() - 1].to_vec()).render();
        if *stored != hex(fnv1a_digest(body.as_bytes())) {
            break;
        }
        let parsed = Json::Obj(pairs.clone());
        if parsed.get("schema").and_then(Json::as_str) != Some(HISTORY_SCHEMA)
            || parsed.get("seq").and_then(Json::as_u64) != Some(seq + 1)
            || parsed.get("prev").and_then(Json::as_str) != Some(hex(prev).as_str())
        {
            break;
        }
        prev = u64::from_str_radix(stored, 16).expect("hex just validated");
        seq += 1;
        valid += 1;
        valid_bytes = offset as u64;
    }
    let torn = (text.len() as u64) > valid_bytes;
    (
        ChainReport {
            valid,
            valid_bytes,
            torn,
        },
        prev,
        seq,
    )
}

/// Replays the chain in `path` without modifying the file. A missing
/// file is an empty, untorn chain.
///
/// # Errors
///
/// I/O errors reading the file.
pub fn verify_chain(path: impl AsRef<Path>) -> io::Result<ChainReport> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    Ok(scan(&text).0)
}

/// The open, append-only history log. One record per
/// [`HistoryLog::append`], written as a single line plus flush, so
/// concurrent readers only ever observe whole records (the daemon
/// serializes appends behind a mutex).
#[derive(Debug)]
pub struct HistoryLog {
    file: File,
    prev: u64,
    seq: u64,
    recovered: bool,
}

impl HistoryLog {
    /// Opens (or creates) the log at `path`, replays its chain, and
    /// truncates any torn tail back to the longest valid prefix —
    /// degrading to a shorter history instead of refusing to start.
    ///
    /// # Errors
    ///
    /// I/O errors reading or truncating the file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<HistoryLog> {
        let path = path.as_ref();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let (report, prev, seq) = scan(&text);
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        if report.torn {
            file.set_len(report.valid_bytes)?;
        }
        Ok(HistoryLog {
            file,
            prev,
            seq,
            recovered: report.torn,
        })
    }

    /// Number of records in the chain so far.
    pub fn entries(&self) -> u64 {
        self.seq
    }

    /// Whether opening truncated a torn tail.
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// Appends one record: `event` plus the caller's fields, wrapped
    /// with the schema tag, sequence number, back-link, and the
    /// record's own hash, then flushed as a single line.
    ///
    /// # Errors
    ///
    /// I/O errors writing the file.
    pub fn append(&mut self, event: &str, fields: Vec<(&str, Json)>) -> io::Result<()> {
        let mut pairs: Vec<(String, Json)> = vec![
            ("schema".to_string(), Json::str(HISTORY_SCHEMA)),
            ("seq".to_string(), Json::Num((self.seq + 1) as f64)),
            ("prev".to_string(), Json::Str(hex(self.prev))),
            ("event".to_string(), Json::str(event)),
        ];
        pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        let body = Json::Obj(pairs.clone()).render();
        let hash = fnv1a_digest(body.as_bytes());
        pairs.push(("hash".to_string(), Json::Str(hex(hash))));
        let line = format!("{}\n", Json::Obj(pairs).render());
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.prev = hash;
        self.seq += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("rehearsal-history-{name}.jsonl"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn chain_appends_and_verifies() {
        let path = temp("roundtrip");
        let mut log = HistoryLog::open(&path).unwrap();
        log.append("start", vec![("addr", Json::str("127.0.0.1:0"))])
            .unwrap();
        log.append("check", vec![("manifest", Json::str("site.pp"))])
            .unwrap();
        drop(log);
        let report = verify_chain(&path).unwrap();
        assert_eq!(report.valid, 2);
        assert!(!report.torn);
        let reopened = HistoryLog::open(&path).unwrap();
        assert_eq!(reopened.entries(), 2);
        assert!(!reopened.recovered());
    }

    #[test]
    fn tampered_record_breaks_the_chain() {
        let path = temp("tamper");
        let mut log = HistoryLog::open(&path).unwrap();
        log.append("start", vec![]).unwrap();
        log.append("check", vec![("manifest", Json::str("a.pp"))])
            .unwrap();
        drop(log);
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("a.pp", "b.pp");
        std::fs::write(&path, tampered).unwrap();
        let report = verify_chain(&path).unwrap();
        assert_eq!(report.valid, 1, "edit invalidates the second record");
        assert!(report.torn);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp("torn");
        let mut log = HistoryLog::open(&path).unwrap();
        log.append("start", vec![]).unwrap();
        log.append("check", vec![]).unwrap();
        drop(log);
        // Simulate a crash mid-append: half a record, no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"schema\":\"rehearsal-history/1\",\"seq\":3,\"pr");
        std::fs::write(&path, &text).unwrap();
        let mut log = HistoryLog::open(&path).unwrap();
        assert_eq!(log.entries(), 2, "valid prefix survives");
        assert!(log.recovered(), "the torn tail was dropped");
        log.append("shutdown", vec![]).unwrap();
        drop(log);
        let report = verify_chain(&path).unwrap();
        assert_eq!(report.valid, 3, "chain resumes cleanly after recovery");
        assert!(!report.torn);
    }
}
