//! The `rehearsal coverage` gate: verify a manifest tree against a
//! pinned baseline and fail CI on verdict drift or below-threshold
//! coverage. Runs in two modes — offline (open the baseline, run the
//! fleet engine locally, compare) or against a live daemon
//! (`--addr`, reading its `/v1/coverage` rollup over HTTP).

use crate::http::http_request;
use crate::service::SERVE_SCHEMA;
use rehearsal_core::AnalysisOptions;
use rehearsal_fleet::{
    discover_manifests, options_fingerprint, BaselineStore, FleetEngine, FleetOptions, Json,
    StateDir, Verdict,
};
use rehearsal_pkgdb::Platform;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration for [`run_coverage`].
#[derive(Debug, Clone)]
pub struct CoverageOptions {
    /// Manifest roots (directories or files) to verify, offline mode.
    pub paths: Vec<String>,
    /// The pinned baseline file (required offline).
    pub baseline: Option<String>,
    /// A running daemon to query instead of verifying locally.
    pub addr: Option<String>,
    /// Target platform (must match the one the baseline was pinned
    /// under, or nothing will be considered pinned).
    pub platform: Platform,
    /// Analysis options (ditto: part of the pin fingerprint).
    pub analysis: AnalysisOptions,
    /// Fleet worker threads (`0` = auto).
    pub jobs: usize,
    /// Explorer threads per job (`0` = auto split).
    pub threads: usize,
    /// Minimum acceptable coverage, in percent.
    pub threshold: f64,
    /// Re-pin: persist current verdicts as the new baseline and pass.
    pub pin: bool,
}

impl Default for CoverageOptions {
    fn default() -> CoverageOptions {
        CoverageOptions {
            paths: Vec::new(),
            baseline: None,
            addr: None,
            platform: Platform::Ubuntu,
            analysis: AnalysisOptions::default().with_timeout(std::time::Duration::from_secs(600)),
            jobs: 0,
            threads: 0,
            threshold: 100.0,
            pin: false,
        }
    }
}

/// The gate's result: the coverage document (printable as JSON) and
/// whether the gate passes.
#[derive(Debug, Clone)]
pub struct CoverageOutcome {
    /// The `rehearsal-serve/1` coverage document.
    pub doc: Json,
    /// `true` iff no drift and coverage meets the threshold (always
    /// `true` after `--pin`: re-pinning defines the new baseline).
    pub pass: bool,
}

/// Runs the coverage gate per [`CoverageOptions`].
///
/// # Errors
///
/// Configuration problems (missing baseline, empty roots), I/O errors,
/// or a malformed daemon response — all as printable strings (the CLI
/// maps them to exit code 2, distinct from the gate's exit 1).
pub fn run_coverage(options: &CoverageOptions) -> Result<CoverageOutcome, String> {
    if let Some(addr) = &options.addr {
        if options.pin {
            return Err(
                "--pin is an offline operation (run it where the baseline file lives, \
                        without --addr)"
                    .to_string(),
            );
        }
        return daemon_coverage(addr, options.threshold);
    }
    let Some(baseline_path) = &options.baseline else {
        return Err("coverage needs --baseline FILE (or --addr HOST:PORT)".to_string());
    };
    if options.paths.is_empty() {
        return Err("coverage needs a manifest directory or file".to_string());
    }
    let mut manifests = Vec::new();
    for root in &options.paths {
        let found = discover_manifests(root).map_err(|e| format!("{root}: {e}"))?;
        if found.is_empty() {
            return Err(format!("{root}: no .pp manifests found"));
        }
        manifests.extend(found);
    }

    let store = BaselineStore::open(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let fp = options_fingerprint(options.platform, &options.analysis);
    // Snapshot the pins before the run: the engine re-records entries
    // with post-run verdicts, which are exactly what drift must be
    // measured *against*, not *with*.
    let pins: BTreeMap<String, (u64, Verdict)> = store
        .entries()
        .filter(|e| e.options == fp)
        .map(|e| (e.manifest.clone(), (e.graph_digest, e.verdict.clone())))
        .collect();
    // Without --pin the store is detached (its path cleared) so the
    // run's re-recorded entries can never leak back to disk through a
    // flush or drop.
    let store = if options.pin { store } else { store.detached() };
    let state = StateDir::in_memory();
    state.set_baseline(store);
    let state = Arc::new(state);

    let mut engine = FleetEngine::new(FleetOptions {
        jobs: options.jobs,
        threads: options.threads,
        analysis: options.analysis.clone(),
        cancel: None,
        lint: false,
    })
    .with_state(Arc::clone(&state));
    let report = engine.run_paths(&manifests, &[options.platform]);
    if options.pin {
        state.flush().map_err(|e| format!("{e}"))?;
    }

    let mut drifted = 0usize;
    let mut covered = 0usize;
    let rows: Vec<Json> = report
        .rows
        .iter()
        .map(|row| {
            let pinned = pins.get(&row.manifest);
            let drift = pinned.is_some_and(|(_, verdict)| *verdict != row.verdict);
            drifted += usize::from(drift);
            covered += usize::from(pinned.is_some());
            let digest = state
                .baseline_get(&row.manifest, fp)
                .map(|e| e.graph_digest);
            Json::obj([
                ("manifest", Json::str(&row.manifest)),
                (
                    "digest",
                    digest.map_or(Json::Null, |d| Json::Str(format!("{d:016x}"))),
                ),
                ("verdict", Json::str(row.verdict.label())),
                (
                    "baseline",
                    pinned.map_or(Json::Null, |(_, v)| Json::str(v.label())),
                ),
                ("drift", Json::Bool(drift)),
                ("verified", Json::Bool(true)),
            ])
        })
        .collect();
    let total = report.rows.len();
    let coverage = if total == 0 {
        1.0
    } else {
        covered as f64 / total as f64
    };
    let pass = options.pin || (drifted == 0 && coverage * 100.0 >= options.threshold);
    let doc = Json::obj([
        ("schema", Json::str(SERVE_SCHEMA)),
        ("kind", Json::str("coverage")),
        ("manifests", Json::Num(total as f64)),
        ("verified", Json::Num(total as f64)),
        ("pinned", Json::Num(covered as f64)),
        ("drifted", Json::Num(drifted as f64)),
        (
            "coverage",
            Json::Num((coverage * 10000.0).round() / 10000.0),
        ),
        ("threshold", Json::Num(options.threshold)),
        ("repinned", Json::Bool(options.pin)),
        ("rows", Json::Arr(rows)),
        ("clean", Json::Bool(drifted == 0)),
    ]);
    Ok(CoverageOutcome { doc, pass })
}

/// Gates on a running daemon's `/v1/coverage` rollup.
fn daemon_coverage(addr: &str, threshold: f64) -> Result<CoverageOutcome, String> {
    let (status, body) =
        http_request(addr, "GET", "/v1/coverage", "").map_err(|e| format!("{addr}: {e}"))?;
    if status != 200 {
        return Err(format!("{addr}: /v1/coverage returned HTTP {status}"));
    }
    let doc = rehearsal_fleet::parse_json(&body)
        .map_err(|e| format!("{addr}: malformed coverage document: {e:?}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some(SERVE_SCHEMA) {
        return Err(format!("{addr}: unexpected coverage schema"));
    }
    let clean = doc.get("clean").and_then(Json::as_bool).unwrap_or(false);
    let coverage = match doc.get("coverage") {
        Some(Json::Num(f)) => *f,
        _ => 0.0,
    };
    let pass = clean && coverage * 100.0 >= threshold;
    Ok(CoverageOutcome { doc, pass })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rehearsal-coverage-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_manifest(dir: &std::path::Path, name: &str, source: &str) {
        let mut f = std::fs::File::create(dir.join(name)).unwrap();
        f.write_all(source.as_bytes()).unwrap();
    }

    #[test]
    fn pin_then_gate_then_drift() {
        let dir = temp_dir("gate");
        write_manifest(&dir, "site.pp", "file { '/a': content => 'x' }");
        let baseline = dir.join("baseline.jsonl").display().to_string();
        let opts = CoverageOptions {
            paths: vec![dir.display().to_string()],
            baseline: Some(baseline.clone()),
            pin: true,
            ..CoverageOptions::default()
        };
        // Pin: records the baseline and passes.
        assert!(run_coverage(&opts).unwrap().pass);

        // Unchanged tree gates clean at 100% coverage.
        let gate = CoverageOptions {
            pin: false,
            ..opts.clone()
        };
        let outcome = run_coverage(&gate).unwrap();
        assert!(outcome.pass);
        assert_eq!(outcome.doc.get("drifted").and_then(Json::as_u64), Some(0));

        // Inject DET→NONDET drift; the gate must fail…
        write_manifest(
            &dir,
            "site.pp",
            "file { '/a': content => 'x' }\nfile { 'b': path => '/a', content => 'y' }",
        );
        let outcome = run_coverage(&gate).unwrap();
        assert!(!outcome.pass, "verdict drift fails the gate");
        assert_eq!(outcome.doc.get("drifted").and_then(Json::as_u64), Some(1));
        // …and the detached store must not have rewritten the pin.
        let outcome = run_coverage(&gate).unwrap();
        assert!(!outcome.pass, "drift persists until re-pinned");

        // Re-pin accepts the new verdict; the gate passes again.
        assert!(run_coverage(&opts).unwrap().pass);
        let outcome = run_coverage(&gate).unwrap();
        assert!(outcome.pass, "re-pinned baseline gates clean");
    }

    #[test]
    fn unpinned_manifests_lower_coverage() {
        let dir = temp_dir("threshold");
        write_manifest(&dir, "a.pp", "file { '/a': content => 'x' }");
        let baseline = dir.join("baseline.jsonl").display().to_string();
        let pin = CoverageOptions {
            paths: vec![dir.display().to_string()],
            baseline: Some(baseline.clone()),
            pin: true,
            ..CoverageOptions::default()
        };
        assert!(run_coverage(&pin).unwrap().pass);

        // A second, never-pinned manifest halves coverage.
        write_manifest(&dir, "b.pp", "file { '/b': content => 'y' }");
        let gate = CoverageOptions {
            pin: false,
            ..pin.clone()
        };
        let outcome = run_coverage(&gate).unwrap();
        assert!(!outcome.pass, "50% coverage misses the default 100% bar");
        let relaxed = CoverageOptions {
            threshold: 50.0,
            ..gate
        };
        assert!(run_coverage(&relaxed).unwrap().pass);
    }
}
