//! A minimal HTTP/1.1 layer over [`std::net::TcpStream`]: enough to
//! parse one request, write one response, and close — the daemon speaks
//! `Connection: close` exclusively, so there is no keep-alive state
//! machine, no chunked encoding, and no dependency outside `std`.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, in bytes (manifests are small; 10 MB
/// is orders of magnitude above any real catalog source).
pub const MAX_BODY_BYTES: usize = 10 * 1024 * 1024;

/// One parsed request: method, path, and the (possibly empty) body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// The request target, query string included, verbatim.
    pub path: String,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

/// One response ready to serialize: status code plus a typed body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads and parses one request from the stream. Enforces
/// [`MAX_HEAD_BYTES`] / [`MAX_BODY_BYTES`]; anything malformed (no
/// request line, oversized head, bad `Content-Length`) is an
/// `InvalidData` error the caller turns into a `400`.
///
/// # Errors
///
/// I/O errors from the socket, or `InvalidData` for malformed requests.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: requests are tiny and the daemon
    // reads each exactly once, so simplicity beats a buffered reader
    // that would over-read into the body.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        match stream.read(&mut byte)? {
            0 => return Err(bad("connection closed mid-request")),
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8(head).map_err(|_| bad("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("missing request line"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| bad("missing request target"))?
        .to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serializes a response (with `Content-Length` and
/// `Connection: close`) onto the stream and flushes it.
///
/// # Errors
///
/// I/O errors from the socket.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// A one-shot HTTP client: connects, sends `method path` with the given
/// body, and returns `(status, body)`. Shared by the `rehearsal
/// coverage --addr` gate and the integration tests, so the daemon is
/// exercised by the same client code the CLI ships.
///
/// # Errors
///
/// Connection or protocol errors.
pub fn http_request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let raw = String::from_utf8(raw).map_err(|_| bad("response is not UTF-8"))?;
    let (head, response_body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("malformed response"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    Ok((status, response_body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/echo");
            assert_eq!(req.body, b"{\"x\":1}");
            write_response(
                &mut stream,
                &Response::json(200, "{\"ok\":true}".to_string()),
            )
            .unwrap();
        });
        let (status, body) = http_request(&addr, "POST", "/v1/echo", "{\"x\":1}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /v1/check HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n")
            .unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
