//! The threaded HTTP server around a [`Service`]: a non-blocking accept
//! loop feeding a bounded connection queue, a fixed pool of request
//! workers, the optional watch thread, and the graceful-shutdown drain
//! (stop accepting → drain queued and in-flight requests → cancel
//! stragglers via the drain [`rehearsal_core::CancelToken`] → flush
//! state → final history record).

use crate::http::{read_request, write_response, Response};
use crate::service::{ServeOptions, Service};
use crate::watch::spawn_watcher;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Queued connections beyond which new ones are answered `503`.
const QUEUE_CAP: usize = 128;
/// How long the drain waits for in-flight requests before cancelling
/// them through the drain token.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// Accept-loop poll interval (the listener is non-blocking so shutdown
/// and signals are noticed promptly).
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// Set by the SIGINT/SIGTERM handler; polled by the accept loop. Signal
/// handlers may only touch async-signal-safe state, hence a bare flag.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::Relaxed);
    }

    /// Routes SIGINT (2) and SIGTERM (15) into [`SIGNALLED`]. Declared
    /// against libc's `signal` directly — the daemon stays free of
    /// external crates, and `std` already links libc on unix.
    pub(super) fn install() {
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }
}

/// A bound server, not yet running. Binding is separate from serving so
/// callers (tests, the CLI) can read the resolved address — including
/// an ephemeral port — before the accept loop starts.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

/// The shared connection queue: closed flag + FIFO behind one lock,
/// with a condvar for worker wakeup.
struct Queue {
    state: Mutex<(bool, VecDeque<TcpStream>)>,
    ready: Condvar,
}

impl Server {
    /// Opens the service state and binds the listen socket.
    ///
    /// # Errors
    ///
    /// I/O errors from state opening or the bind.
    pub fn bind(options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let service = Arc::new(Service::new(options)?);
        Ok(Server { listener, service })
    }

    /// The bound address (resolves port `0` to the actual port).
    ///
    /// # Errors
    ///
    /// I/O errors from the socket query.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service (tests reach the warm core through this).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Installs SIGINT/SIGTERM handlers that trigger the same graceful
    /// drain as `POST /v1/shutdown`. The CLI calls this; tests drive
    /// shutdown over HTTP instead.
    pub fn install_signal_handlers(&self) {
        #[cfg(unix)]
        sig::install();
    }

    /// Runs the accept loop until shutdown is requested (signal or
    /// `POST /v1/shutdown`), then drains: workers finish queued and
    /// in-flight requests, stragglers past the grace period are
    /// cancelled through the drain token, the watcher joins, and the
    /// state flushes with a final history record. No torn JSONL lines:
    /// every store rewrites through the single [`Service::flush`].
    ///
    /// # Errors
    ///
    /// I/O errors from the final state flush.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, service } = self;
        listener.set_nonblocking(true)?;
        let queue = Arc::new(Queue {
            state: Mutex::new((false, VecDeque::new())),
            ready: Condvar::new(),
        });
        let active = Arc::new(AtomicUsize::new(0));

        let workers: Vec<_> = (0..service.options().effective_workers())
            .map(|_| {
                let queue = Arc::clone(&queue);
                let service = Arc::clone(&service);
                let active = Arc::clone(&active);
                std::thread::spawn(move || worker_loop(&queue, &service, &active))
            })
            .collect();
        let watcher = service.options().watch.clone().map(|dir| {
            let service = Arc::clone(&service);
            let poll_ms = service.options().poll_ms;
            spawn_watcher(service, dir, poll_ms)
        });

        while !service.stopping() && !SIGNALLED.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let mut state = queue.state.lock().unwrap();
                    if state.1.len() >= QUEUE_CAP {
                        drop(state);
                        let mut stream = stream;
                        let _ = write_response(
                            &mut stream,
                            &Response::json(503, "{\"error\":\"overloaded\"}".to_string()),
                        );
                    } else {
                        state.1.push_back(stream);
                        drop(state);
                        queue.ready.notify_one();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        service.request_stop();

        // Drain: close the queue so idle workers exit once it empties,
        // give in-flight requests a grace period, then cancel them.
        queue.state.lock().unwrap().0 = true;
        queue.ready.notify_all();
        let deadline = Instant::now() + DRAIN_GRACE;
        while Instant::now() < deadline {
            let state = queue.state.lock().unwrap();
            if state.1.is_empty() && active.load(Ordering::Relaxed) == 0 {
                break;
            }
            drop(state);
            std::thread::sleep(Duration::from_millis(10));
        }
        service.cancel_inflight();
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(watcher) = watcher {
            let _ = watcher.join();
        }
        service.flush()
    }
}

/// One request worker: pop a connection, parse, dispatch, respond,
/// close. Exits when the queue is closed and empty.
fn worker_loop(queue: &Queue, service: &Service, active: &AtomicUsize) {
    loop {
        let stream = {
            let mut state = queue.state.lock().unwrap();
            loop {
                if let Some(stream) = state.1.pop_front() {
                    break stream;
                }
                if state.0 {
                    return;
                }
                state = queue
                    .ready
                    .wait_timeout(state, Duration::from_millis(100))
                    .unwrap()
                    .0;
            }
        };
        active.fetch_add(1, Ordering::Relaxed);
        handle_connection(stream, service);
        active.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(mut stream: TcpStream, service: &Service) {
    // A stalled or byte-dribbling client must not wedge a worker.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let response = match read_request(&mut stream) {
        Ok(request) => service.handle(&request),
        Err(_) => Response::json(400, "{\"error\":\"malformed request\"}".to_string()),
    };
    let _ = write_response(&mut stream, &response);
}
