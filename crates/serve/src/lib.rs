//! **rehearsal-serve** — the warm-core verification daemon.
//!
//! Every CLI invocation pays the process tax: allocate arenas, reload
//! the verdict cache, re-open the baseline, warm the solver. A fleet of
//! editors, CI bots, and watch loops asking "is this manifest still
//! deterministic?" should instead hit a process that is *already warm*.
//! This crate is that process:
//!
//! * [`Server`] — a dependency-free threaded HTTP/1.1 JSON daemon on
//!   [`std::net::TcpListener`]: a non-blocking accept loop, a bounded
//!   connection queue, and a fixed request-worker pool;
//! * [`Service`] — the warm core the workers share: one resident
//!   [`rehearsal_fleet::StateDir`] (schema-5 verdict cache + baseline
//!   store), a response memo answering byte-identical repeats without
//!   re-lowering, baseline pins for drift detection, the coverage
//!   rollup, and the live metrics registry;
//! * [`history`] — the hash-chained `rehearsal-history/1` run log
//!   (tamper-evident; torn tails truncate and degrade, never wedge);
//! * [`watch`] — poll-based re-verification of a manifest directory
//!   through the differential (dirty-cone) path;
//! * [`coverage`] — the `rehearsal coverage` CI gate: exit non-zero on
//!   verdict drift against the pinned baseline or below-threshold
//!   coverage.
//!
//! Endpoints: `POST /v1/check`, `POST /v1/lint`, `GET /v1/fleet`,
//! `GET /v1/coverage`, `GET /v1/metrics` (Prometheus),
//! `GET /v1/healthz`, `POST /v1/shutdown`. Check responses are the same
//! `rehearsal-check/5` documents the batch CLI prints, built by the
//! same serializer — verdicts are bit-identical by construction.
//!
//! # Examples
//!
//! ```
//! use rehearsal_serve::{http, Server, ServeOptions};
//!
//! let server = Server::bind(ServeOptions {
//!     addr: "127.0.0.1:0".to_string(), // ephemeral port
//!     ..ServeOptions::default()
//! })
//! .unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! let handle = std::thread::spawn(move || server.run());
//! let (status, body) = http::http_request(
//!     &addr,
//!     "POST",
//!     "/v1/check",
//!     r#"{"manifest":"motd.pp","source":"file { '/etc/motd': content => 'hi' }"}"#,
//! )
//! .unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"verdict\": \"deterministic\""));
//! let _ = http::http_request(&addr, "POST", "/v1/shutdown", "").unwrap();
//! handle.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]

pub mod coverage;
pub mod history;
pub mod http;
pub mod server;
pub mod service;
pub mod watch;

pub use coverage::{run_coverage, CoverageOptions, CoverageOutcome};
pub use history::{verify_chain, ChainReport, HistoryLog, HISTORY_FILE, HISTORY_SCHEMA};
pub use server::Server;
pub use service::{ServeOptions, Service, SERVE_SCHEMA};
