//! Watch mode: a polling thread that re-verifies manifests as they
//! change on disk. Each tick walks the watched directory for `.pp`
//! files and hashes their contents; new or changed manifests go through
//! the service's normal check path — which consults the resident
//! verdict cache and the baseline's dirty-cone differential plan, so an
//! edit re-verifies in time proportional to the diff — and drift
//! against the pinned baseline is recorded in the coverage rollup and
//! the history chain.

use crate::service::Service;
use rehearsal_fleet::{discover_manifests, fnv1a_digest};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How finely the inter-poll sleep is sliced so shutdown is noticed
/// promptly even under long poll intervals.
const SLEEP_SLICE: Duration = Duration::from_millis(50);

/// Spawns the watcher thread. The first scan verifies *every* manifest
/// (seeding the coverage rollup); later scans re-verify only new or
/// changed files, keyed by an FNV-1a content hash (mtime-independent,
/// so `touch` alone never re-verifies). The thread exits when the
/// service starts stopping.
pub fn spawn_watcher(service: Arc<Service>, dir: PathBuf, poll_ms: u64) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut seen: HashMap<String, u64> = HashMap::new();
        while !service.stopping() {
            service.note_watch_scan();
            let manifests = discover_manifests(&dir).unwrap_or_default();
            for path in manifests {
                if service.stopping() {
                    return;
                }
                let name = path.display().to_string();
                let Ok(source) = std::fs::read_to_string(&path) else {
                    // Unreadable (mid-write, deleted between walk and
                    // read): the next tick will see it settled.
                    continue;
                };
                let hash = fnv1a_digest(source.as_bytes());
                if seen.get(&name) == Some(&hash) {
                    continue;
                }
                service.watch_check(&name, source);
                seen.insert(name, hash);
            }
            let mut slept = Duration::ZERO;
            let poll = Duration::from_millis(poll_ms.max(1));
            while slept < poll && !service.stopping() {
                let slice = SLEEP_SLICE.min(poll - slept);
                std::thread::sleep(slice);
                slept += slice;
            }
        }
    })
}
