//! The warm verification core behind every endpoint: one shared
//! [`StateDir`] (resident schema-5 verdict cache + baseline store), a
//! response memo that answers byte-identical repeat requests without
//! re-lowering, baseline pins for drift detection, the coverage rollup,
//! the live metrics registry, and the hash-chained run history.

use crate::history::{HistoryLog, HISTORY_FILE};
use crate::http::{Request, Response};
use rehearsal_core::{AnalysisOptions, CancelToken};
use rehearsal_fleet::{
    diagnostic_json, fnv1a_digest, options_fingerprint, BaselineStore, FleetEngine, FleetJob,
    FleetOptions, Json, StateDir, Verdict,
};
use rehearsal_lint::{lint_source, LintOptions};
use rehearsal_pkgdb::Platform;
use rehearsal_trace::Registry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Schema tag of the daemon's own (non-check) JSON documents.
pub const SERVE_SCHEMA: &str = "rehearsal-serve/1";

/// Upper bound on memoized responses; beyond it the memo is cleared
/// wholesale (requests fall back to the verdict cache, which is keyed
/// semantically and never evicted).
const MEMO_CAP: usize = 4096;

/// Configuration for [`Service::new`] / [`crate::Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, `HOST:PORT` (port `0` binds an ephemeral port).
    pub addr: String,
    /// Default target platform for requests that name none.
    pub platform: Platform,
    /// Default analysis options (per-request overrides ride on top).
    pub analysis: AnalysisOptions,
    /// Request worker threads; `0` means `max(2, cores)`.
    pub workers: usize,
    /// Directory to poll for manifest changes (watch mode).
    pub watch: Option<PathBuf>,
    /// Watch poll interval in milliseconds.
    pub poll_ms: u64,
    /// Persistent state directory (verdict cache, baseline, history).
    pub state_dir: Option<PathBuf>,
    /// Explicit baseline file (overrides the state directory's).
    pub baseline: Option<PathBuf>,
}

impl Default for ServeOptions {
    /// Defaults match the batch CLI (same 600 s timeout, so the options
    /// fingerprint — and therefore baseline pins and cached verdicts —
    /// interoperate between `rehearsal fleet` and the daemon).
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:7777".to_string(),
            platform: Platform::Ubuntu,
            analysis: AnalysisOptions::default().with_timeout(Duration::from_secs(600)),
            workers: 0,
            watch: None,
            poll_ms: 1000,
            state_dir: None,
            baseline: None,
        }
    }
}

impl ServeOptions {
    /// The request worker count a server will actually run.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2)
        }
    }
}

/// One manifest's standing in the coverage rollup.
#[derive(Debug, Clone)]
struct RollupRow {
    digest: u64,
    verdict: Verdict,
    baseline: Option<Verdict>,
    drift: bool,
    cached: bool,
}

/// The result of one internal check, as the watcher and the HTTP
/// handler both consume it.
struct CheckOutcome {
    doc: Json,
    verdict: Verdict,
    drift: bool,
}

/// The shared warm core. One `Service` lives behind an `Arc`, touched
/// concurrently by the accept loop, every request worker, and the
/// watcher thread; all mutable state sits behind its own lock.
#[derive(Debug)]
pub struct Service {
    options: ServeOptions,
    state: Arc<StateDir>,
    registry: Registry,
    drain: CancelToken,
    stopping: AtomicBool,
    history: Option<Mutex<HistoryLog>>,
    pins: Mutex<BTreeMap<String, (u64, Verdict)>>,
    rollup: Mutex<BTreeMap<String, RollupRow>>,
    memo: Mutex<HashMap<u64, Json>>,
    started: Instant,
    fp: u64,
}

impl Service {
    /// Opens the persistent state (if any), snapshots the baseline's
    /// pins for drift detection, and builds the warm core.
    ///
    /// # Errors
    ///
    /// I/O errors opening the state directory, baseline, or history.
    pub fn new(options: ServeOptions) -> io::Result<Service> {
        let state = match &options.state_dir {
            Some(dir) => StateDir::open(dir)?,
            None => StateDir::in_memory(),
        };
        if let Some(path) = &options.baseline {
            state.set_baseline(BaselineStore::open(path)?);
        }
        if !state.has_baseline() {
            // Always run with *some* baseline so the engine records
            // graph digests (the rollup's identity) even in-memory.
            state.set_baseline(BaselineStore::in_memory());
        }
        let history = match &options.state_dir {
            Some(dir) => Some(Mutex::new(HistoryLog::open(dir.join(HISTORY_FILE))?)),
            None => None,
        };
        let fp = options_fingerprint(options.platform, &options.analysis);
        // Pins are snapshotted *before* any request runs: the engine
        // re-records baseline entries after each analysis, so reading
        // them later would compare every verdict against itself.
        let pins: BTreeMap<String, (u64, Verdict)> = state
            .baseline_pins(fp)
            .into_iter()
            .map(|(manifest, digest, verdict)| (manifest, (digest, verdict)))
            .collect();
        let service = Service {
            options,
            state: Arc::new(state),
            registry: Registry::new(),
            drain: CancelToken::new(),
            stopping: AtomicBool::new(false),
            history,
            pins: Mutex::new(pins),
            rollup: Mutex::new(BTreeMap::new()),
            memo: Mutex::new(HashMap::new()),
            started: Instant::now(),
            fp,
        };
        service.record(
            "start",
            vec![
                ("addr", Json::str(&service.options.addr)),
                (
                    "pinned",
                    Json::Num(service.pins.lock().unwrap().len() as f64),
                ),
            ],
        );
        Ok(service)
    }

    /// The daemon's configuration.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// The shared persistent-state handle.
    pub fn state(&self) -> &Arc<StateDir> {
        &self.state
    }

    /// Whether shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Relaxed)
    }

    /// Requests shutdown: the accept loop stops taking connections and
    /// the server begins its drain.
    pub fn request_stop(&self) {
        self.stopping.store(true, Ordering::Relaxed);
    }

    /// Cancels the drain token — every in-flight analysis aborts at its
    /// next poll point (reporting a timeout verdict, responses still
    /// written). Called by the server once the drain grace expires.
    pub fn cancel_inflight(&self) {
        self.drain.cancel();
    }

    /// Appends a record to the history log (a no-op without a state
    /// directory; write errors are counted, not fatal).
    pub fn record(&self, event: &str, fields: Vec<(&str, Json)>) {
        if let Some(history) = &self.history {
            if history.lock().unwrap().append(event, fields).is_err() {
                self.registry.counter_add("serve.errors", 1);
            }
        }
    }

    /// Final flush: verdict cache, baseline store, and the closing
    /// history record. The server calls this exactly once, after the
    /// workers have drained.
    ///
    /// # Errors
    ///
    /// I/O errors from the state flush.
    pub fn flush(&self) -> io::Result<()> {
        self.record(
            "shutdown",
            vec![(
                "uptime_ms",
                Json::Num(self.started.elapsed().as_millis() as f64),
            )],
        );
        self.state.flush()
    }

    /// Routes one request. Unknown paths 404; known paths with the
    /// wrong method 405.
    pub fn handle(&self, request: &Request) -> Response {
        self.registry.counter_add("serve.requests", 1);
        let started = Instant::now();
        let response = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/v1/check") => self.handle_check(&request.body),
            ("POST", "/v1/lint") => self.handle_lint(&request.body),
            ("GET", "/v1/fleet") => Response::json(200, self.fleet_doc().render_pretty()),
            ("GET", "/v1/coverage") => Response::json(200, self.coverage_doc().render_pretty()),
            ("GET", "/v1/metrics") => Response::text(200, self.registry.snapshot().to_prometheus()),
            ("GET", "/v1/healthz") => Response::json(200, self.healthz_doc().render_pretty()),
            ("POST", "/v1/shutdown") => {
                self.request_stop();
                Response::json(200, "{\"status\":\"stopping\"}".to_string())
            }
            (
                _,
                "/v1/check" | "/v1/lint" | "/v1/fleet" | "/v1/coverage" | "/v1/metrics"
                | "/v1/healthz" | "/v1/shutdown",
            ) => Response::json(405, "{\"error\":\"method not allowed\"}".to_string()),
            _ => Response::json(404, "{\"error\":\"not found\"}".to_string()),
        };
        self.registry
            .observe("serve.request_ms", started.elapsed().as_millis() as u64);
        if response.status >= 400 {
            self.registry.counter_add("serve.errors", 1);
        }
        response
    }

    fn bad_request(message: &str) -> Response {
        Response::json(
            400,
            Json::obj([("error", Json::str(message))]).render_pretty(),
        )
    }

    fn handle_check(&self, body: &[u8]) -> Response {
        self.registry.counter_add("serve.check_requests", 1);
        let Ok(text) = std::str::from_utf8(body) else {
            return Self::bad_request("body is not UTF-8");
        };
        let Ok(doc) = rehearsal_fleet::parse_json(text) else {
            return Self::bad_request("body is not valid JSON");
        };
        let Some(source) = doc.get("source").and_then(Json::as_str) else {
            return Self::bad_request("missing required field: source");
        };
        let manifest = doc
            .get("manifest")
            .and_then(Json::as_str)
            .unwrap_or("request.pp")
            .to_string();
        let platform = match doc.get("platform").and_then(Json::as_str) {
            None => self.options.platform,
            Some(label) => match label.parse() {
                Ok(platform) => platform,
                Err(_) => return Self::bad_request("unknown platform"),
            },
        };
        let mut analysis = self.options.analysis.clone();
        if let Some(flag) = doc.get("model_metadata").and_then(Json::as_bool) {
            analysis.model_metadata = flag;
        }
        if let Some(flag) = doc.get("model_latest").and_then(Json::as_bool) {
            analysis.model_latest = flag;
        }
        if let Some(secs) = doc.get("timeout_s").and_then(Json::as_u64) {
            analysis.timeout = Some(Duration::from_secs(secs));
        }
        let threads = doc
            .get("threads")
            .and_then(Json::as_u64)
            .map_or(1, |n| n as usize);
        let outcome = self.check(&manifest, source.to_string(), platform, analysis, threads);
        Response::json(200, outcome.doc.render_pretty())
    }

    /// The whole check path, shared by `/v1/check` and the watcher. The
    /// response memo answers byte-identical repeats without touching
    /// the engine (no re-lowering); everything else runs a single-job
    /// fleet engine against the resident state, so a repeat after an
    /// *edit* still hits the semantic verdict cache or the baseline's
    /// dirty-cone path.
    fn check(
        &self,
        manifest: &str,
        source: String,
        platform: Platform,
        analysis: AnalysisOptions,
        threads: usize,
    ) -> CheckOutcome {
        let started = Instant::now();
        let fp = options_fingerprint(platform, &analysis);
        let memo_key = fnv1a_digest(
            format!("{manifest}\u{0}{platform}\u{0}{fp:016x}\u{0}{source}").as_bytes(),
        );
        if let Some(mut doc) = self.memo.lock().unwrap().get(&memo_key).cloned() {
            self.registry.counter_add("serve.cache_hits", 1);
            set_field(&mut doc, "cached", Json::Bool(true));
            let verdict = doc
                .get("verdict")
                .and_then(Json::as_str)
                .and_then(Verdict::from_label)
                .unwrap_or(Verdict::Error);
            let drift = attach_serve(&mut doc, true, false, started);
            return CheckOutcome {
                doc,
                verdict,
                drift,
            };
        }

        // Drift compares against the pin as it stood *before* this run:
        // the engine re-records the baseline entry afterwards.
        let tracked = fp == self.fp && platform == self.options.platform;
        let pinned = tracked
            .then(|| self.pins.lock().unwrap().get(manifest).cloned())
            .flatten();

        let mut engine = FleetEngine::new(FleetOptions {
            jobs: 1,
            threads,
            analysis: analysis.clone(),
            cancel: Some(self.drain.child()),
            lint: false,
        })
        .with_state(Arc::clone(&self.state));
        let report = engine.run(vec![FleetJob {
            name: manifest.to_string(),
            source,
            platform,
        }]);
        self.registry.merge_snapshot(&report.metrics);
        let row = &report.rows[0];
        let mut doc = rehearsal_fleet::check_document_from_row(
            row,
            analysis.model_metadata,
            Some(&report.metrics),
        );

        let digest = self
            .state
            .baseline_get(manifest, fp)
            .map_or_else(|| fnv1a_digest(row.manifest.as_bytes()), |e| e.graph_digest);
        let drift = pinned
            .as_ref()
            .is_some_and(|(_, verdict)| *verdict != row.verdict);
        if tracked {
            if pinned.is_none() {
                // First sighting: adopt the verdict as this daemon's pin
                // so later edits under watch have something to drift
                // against even without a pre-seeded baseline.
                self.pins
                    .lock()
                    .unwrap()
                    .insert(manifest.to_string(), (digest, row.verdict.clone()));
            }
            if drift {
                self.registry.counter_add("serve.drift_detected", 1);
                self.record(
                    "drift",
                    vec![
                        ("manifest", Json::str(manifest)),
                        (
                            "baseline",
                            Json::str(pinned.as_ref().map_or("", |(_, v)| v.label())),
                        ),
                        ("verdict", Json::str(row.verdict.label())),
                    ],
                );
            }
            self.rollup.lock().unwrap().insert(
                manifest.to_string(),
                RollupRow {
                    digest,
                    verdict: row.verdict.clone(),
                    baseline: pinned.as_ref().map(|(_, v)| v.clone()),
                    drift,
                    cached: row.cached,
                },
            );
        }
        self.record(
            "check",
            vec![
                ("manifest", Json::str(manifest)),
                ("verdict", Json::str(row.verdict.label())),
                ("cached", Json::Bool(row.cached)),
                ("drift", Json::Bool(drift)),
                ("run_ms", Json::Num(row.run_ms as f64)),
            ],
        );
        if row.verdict != Verdict::Timeout {
            let mut memo = self.memo.lock().unwrap();
            if memo.len() >= MEMO_CAP {
                memo.clear();
            }
            memo.insert(memo_key, doc.clone());
        }
        let verdict = row.verdict.clone();
        attach_serve(&mut doc, false, drift, started);
        CheckOutcome {
            doc,
            verdict,
            drift,
        }
    }

    /// Re-verifies a changed (or newly discovered) manifest from the
    /// watcher, with the daemon's default options. Returns whether the
    /// verdict drifted from its pin.
    pub(crate) fn watch_check(&self, manifest: &str, source: String) -> bool {
        self.registry.counter_add("serve.watch_reverifies", 1);
        // Watch re-checks must not be answered by the response memo (the
        // content changed, so the key differs anyway) but must land in
        // it, so a subsequent identical HTTP request is warm.
        let outcome = self.check(
            manifest,
            source,
            self.options.platform,
            self.options.analysis.clone(),
            1,
        );
        self.record(
            "watch",
            vec![
                ("manifest", Json::str(manifest)),
                ("verdict", Json::str(outcome.verdict.label())),
                ("drift", Json::Bool(outcome.drift)),
            ],
        );
        outcome.drift
    }

    /// Bumps the watcher's scan counter (one full directory poll).
    pub(crate) fn note_watch_scan(&self) {
        self.registry.counter_add("serve.watch_scans", 1);
    }

    fn handle_lint(&self, body: &[u8]) -> Response {
        self.registry.counter_add("serve.lint_requests", 1);
        let Ok(text) = std::str::from_utf8(body) else {
            return Self::bad_request("body is not UTF-8");
        };
        let Ok(doc) = rehearsal_fleet::parse_json(text) else {
            return Self::bad_request("body is not valid JSON");
        };
        let Some(source) = doc.get("source").and_then(Json::as_str) else {
            return Self::bad_request("missing required field: source");
        };
        let manifest = doc
            .get("manifest")
            .and_then(Json::as_str)
            .unwrap_or("request.pp");
        let report = lint_source(
            manifest,
            source,
            &LintOptions {
                platform: self.options.platform,
                ..LintOptions::default()
            },
        );
        let (errors, warnings, notes) = report.counts();
        let doc = Json::obj([
            ("schema", Json::str("rehearsal-lint/1")),
            ("platform", Json::str(self.options.platform.to_string())),
            (
                "manifests",
                Json::Arr(vec![Json::obj([
                    ("manifest", Json::str(manifest)),
                    ("rules_run", Json::num(report.rules_run as u32)),
                    (
                        "findings",
                        Json::Arr(report.findings.iter().map(diagnostic_json).collect()),
                    ),
                ])]),
            ),
            ("errors", Json::num(errors as u32)),
            ("warnings", Json::num(warnings as u32)),
            ("notes", Json::num(notes as u32)),
        ]);
        Response::json(200, doc.render_pretty())
    }

    fn healthz_doc(&self) -> Json {
        Json::obj([
            ("schema", Json::str(SERVE_SCHEMA)),
            ("status", Json::str("ok")),
            (
                "uptime_ms",
                Json::Num(self.started.elapsed().as_millis() as f64),
            ),
            ("cache_entries", Json::Num(self.state.cache_len() as f64)),
            (
                "baseline_entries",
                Json::Num(self.state.baseline_len() as f64),
            ),
        ])
    }

    fn fleet_doc(&self) -> Json {
        let rollup = self.rollup.lock().unwrap();
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut cached = 0u64;
        let mut drifted = 0u64;
        for row in rollup.values() {
            *counts.entry(row.verdict.label()).or_default() += 1;
            cached += u64::from(row.cached);
            drifted += u64::from(row.drift);
        }
        Json::obj([
            ("schema", Json::str(SERVE_SCHEMA)),
            ("kind", Json::str("fleet")),
            ("manifests", Json::Num(rollup.len() as f64)),
            (
                "counts",
                Json::Obj(
                    counts
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Json::Num(v as f64)))
                        .collect(),
                ),
            ),
            ("cached", Json::Num(cached as f64)),
            ("drifted", Json::Num(drifted as f64)),
            (
                "clean",
                Json::Bool(rollup.values().all(|r| r.verdict.is_pass() && !r.drift)),
            ),
        ])
    }

    /// The pinned-baseline coverage rollup: every manifest this daemon
    /// has verified (by HTTP or watch), each compared to its pin, plus
    /// the aggregate coverage fraction over all *known* manifests
    /// (pinned or verified).
    pub fn coverage_doc(&self) -> Json {
        let rollup = self.rollup.lock().unwrap();
        let pins = self.pins.lock().unwrap();
        let known: BTreeSet<&String> = pins.keys().chain(rollup.keys()).collect();
        let drifted = rollup.values().filter(|r| r.drift).count();
        let coverage = if known.is_empty() {
            1.0
        } else {
            rollup.len() as f64 / known.len() as f64
        };
        let rows: Vec<Json> = known
            .iter()
            .map(|manifest| {
                let row = rollup.get(*manifest);
                Json::obj([
                    ("manifest", Json::str(manifest.as_str())),
                    (
                        "digest",
                        match row {
                            Some(r) => Json::Str(format!("{:016x}", r.digest)),
                            None => Json::Null,
                        },
                    ),
                    (
                        "verdict",
                        row.map_or(Json::Null, |r| Json::str(r.verdict.label())),
                    ),
                    (
                        "baseline",
                        match pins.get(*manifest) {
                            Some((_, verdict)) => Json::str(verdict.label()),
                            None => row
                                .and_then(|r| r.baseline.as_ref())
                                .map_or(Json::Null, |v| Json::str(v.label())),
                        },
                    ),
                    ("drift", Json::Bool(row.is_some_and(|r| r.drift))),
                    ("verified", Json::Bool(row.is_some())),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::str(SERVE_SCHEMA)),
            ("kind", Json::str("coverage")),
            ("manifests", Json::Num(known.len() as f64)),
            ("verified", Json::Num(rollup.len() as f64)),
            ("pinned", Json::Num(pins.len() as f64)),
            ("drifted", Json::Num(drifted as f64)),
            (
                "coverage",
                Json::Num((coverage * 10000.0).round() / 10000.0),
            ),
            ("rows", Json::Arr(rows)),
            ("clean", Json::Bool(drifted == 0)),
        ])
    }
}

/// Replaces (or appends) a top-level field on an object document.
fn set_field(doc: &mut Json, key: &str, value: Json) {
    if let Json::Obj(pairs) = doc {
        for (k, v) in pairs.iter_mut() {
            if k == key {
                *v = value;
                return;
            }
        }
        pairs.push((key.to_string(), value));
    }
}

/// Attaches the daemon's per-request accounting (`serve` object) to a
/// check document; returns the recorded drift flag for convenience.
fn attach_serve(doc: &mut Json, memo_hit: bool, drift: bool, started: Instant) -> bool {
    set_field(
        doc,
        "serve",
        Json::obj([
            ("cache_hit", Json::Bool(memo_hit)),
            ("drift", Json::Bool(drift)),
            ("run_us", Json::Num(started.elapsed().as_micros() as f64)),
        ]),
    );
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> Service {
        Service::new(ServeOptions::default()).unwrap()
    }

    fn check_body(manifest: &str, source: &str) -> Vec<u8> {
        Json::obj([
            ("manifest", Json::str(manifest)),
            ("source", Json::str(source)),
        ])
        .render()
        .into_bytes()
    }

    fn post(service: &Service, path: &str, body: Vec<u8>) -> (u16, Json) {
        let response = service.handle(&Request {
            method: "POST".to_string(),
            path: path.to_string(),
            body,
        });
        let doc = rehearsal_fleet::parse_json(&response.body).expect("JSON response");
        (response.status, doc)
    }

    #[test]
    fn check_verdict_then_warm_repeat() {
        let service = service();
        let source = "file { '/etc/motd': content => 'hello' }";
        let (status, doc) = post(&service, "/v1/check", check_body("motd.pp", source));
        assert_eq!(status, 200);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("rehearsal-check/5")
        );
        assert_eq!(
            doc.get("verdict").and_then(Json::as_str),
            Some("deterministic")
        );
        let serve = doc.get("serve").expect("serve object");
        assert_eq!(serve.get("cache_hit").and_then(Json::as_bool), Some(false));

        let (_, warm) = post(&service, "/v1/check", check_body("motd.pp", source));
        let serve = warm.get("serve").expect("serve object");
        assert_eq!(serve.get("cache_hit").and_then(Json::as_bool), Some(true));
        assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            warm.get("verdict").and_then(Json::as_str),
            Some("deterministic")
        );
    }

    #[test]
    fn drift_is_flagged_when_a_verdict_changes() {
        let service = service();
        let det = "file { '/a': content => 'x' }";
        let nondet = "file { '/a': content => 'x' }\nfile { 'b': path => '/a', content => 'y' }";
        let (_, first) = post(&service, "/v1/check", check_body("site.pp", det));
        assert_eq!(
            first
                .get("serve")
                .unwrap()
                .get("drift")
                .and_then(Json::as_bool),
            Some(false)
        );
        let (_, second) = post(&service, "/v1/check", check_body("site.pp", nondet));
        assert_eq!(
            second.get("verdict").and_then(Json::as_str),
            Some("nondeterministic")
        );
        assert_eq!(
            second
                .get("serve")
                .unwrap()
                .get("drift")
                .and_then(Json::as_bool),
            Some(true),
            "DET→NONDET under the same name drifts from the adopted pin"
        );
        let coverage = service.coverage_doc();
        assert_eq!(coverage.get("drifted").and_then(Json::as_u64), Some(1));
        assert_eq!(coverage.get("clean").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn lint_endpoint_reports_findings() {
        let service = service();
        let (status, doc) = post(
            &service,
            "/v1/lint",
            check_body("lint.pp", "$unused = 1\nfile { '/x': content => 'y' }"),
        );
        assert_eq!(status, 200);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("rehearsal-lint/1")
        );
        assert!(doc.get("warnings").and_then(Json::as_u64).unwrap_or(0) >= 1);
    }

    #[test]
    fn unknown_paths_404_and_bad_bodies_400() {
        let service = service();
        let response = service.handle(&Request {
            method: "GET".to_string(),
            path: "/nope".to_string(),
            body: Vec::new(),
        });
        assert_eq!(response.status, 404);
        let (status, _) = post(&service, "/v1/check", b"not json".to_vec());
        assert_eq!(status, 400);
        let response = service.handle(&Request {
            method: "GET".to_string(),
            path: "/v1/check".to_string(),
            body: Vec::new(),
        });
        assert_eq!(response.status, 405);
    }

    #[test]
    fn metrics_endpoint_speaks_prometheus() {
        let service = service();
        let _ = post(
            &service,
            "/v1/check",
            check_body("m.pp", "file { '/m': content => 'x' }"),
        );
        let response = service.handle(&Request {
            method: "GET".to_string(),
            path: "/v1/metrics".to_string(),
            body: Vec::new(),
        });
        assert_eq!(response.status, 200);
        assert!(response.body.contains("rehearsal_serve_requests_total"));
        assert!(response
            .body
            .contains("rehearsal_serve_check_requests_total"));
    }
}
