//! Package listings for Rehearsal's package-resource model.
//!
//! The paper models a `package` resource as an FS program that creates the
//! package's directory tree and files (§3.3), obtained from `apt-file` or
//! `repoquery` through a caching web service. This crate substitutes a
//! deterministic, in-memory database with the same interface surface:
//!
//! * [`PackageDb::builtin`] — realistic listings for the packages used by
//!   the paper's examples and our reconstructed benchmarks, for
//!   [`Platform::Ubuntu`] and [`Platform::Centos`];
//! * [`conflict_db`], [`random_db`] — synthetic generators for the scaling
//!   experiments;
//! * [`PackageDb::install_closure`] / [`PackageDb::remove_closure`] —
//!   dependency semantics mirroring `apt install` / `apt remove`, which the
//!   paper's golang-go/perl silent-failure example (fig. 3c) relies on.
//!
//! # Examples
//!
//! ```
//! use rehearsal_pkgdb::{PackageDb, Platform};
//!
//! let db = PackageDb::builtin(Platform::Ubuntu);
//! let closure = db.install_closure("golang-go")?;
//! assert!(closure.iter().any(|p| p.name() == "perl"));
//! # Ok::<(), rehearsal_pkgdb::UnknownPackageError>(())
//! ```

#![warn(missing_docs)]

pub(crate) mod builtin;
mod spec;
mod synthetic;

pub use spec::{PackageDb, PackageSpec, Platform, UnknownPackageError, UnknownPlatformError};
pub use synthetic::{conflict_db, random_db};
