//! Built-in package listings.
//!
//! Real Rehearsal queries a web service wrapping `apt-file` (Ubuntu) and
//! `repoquery` (CentOS). These tables are a deterministic stand-in: each
//! package gets its real-world key files (configuration files, binaries,
//! service units — the files manifests actually interact with) plus
//! programmatically generated filler files (documentation, libraries,
//! locale data) so that package sizes and the shared-directory false-sharing
//! phenomenon (paper §4.3) are realistic.

use crate::spec::{PackageDb, PackageSpec, Platform};
use rehearsal_fs::FsPath;

/// Describes one built-in package compactly.
struct Entry {
    name: &'static str,
    key_files: &'static [&'static str],
    depends: &'static [&'static str],
    /// Number of filler files under `/usr/share/doc/<name>/`.
    doc_files: usize,
    /// Number of filler files under `/usr/lib/<name>/`.
    lib_files: usize,
}

fn build(entry: &Entry) -> PackageSpec {
    let mut files: Vec<FsPath> = Vec::new();
    for f in entry.key_files {
        files.push(FsPath::parse(f).unwrap_or_else(|e| panic!("builtin table: {e}")));
    }
    let doc_dir = FsPath::parse("/usr/share/doc")
        .expect("static path")
        .join(entry.name);
    for i in 0..entry.doc_files {
        files.push(doc_dir.join(&format!("doc{i}")));
    }
    let lib_dir = FsPath::parse("/usr/lib")
        .expect("static path")
        .join(entry.name);
    for i in 0..entry.lib_files {
        files.push(lib_dir.join(&format!("lib{i}.so")));
    }
    PackageSpec::new(
        entry.name,
        files,
        entry.depends.iter().map(|s| s.to_string()).collect(),
    )
}

/// The Ubuntu (apt) table. Key files reflect the real packages' layouts on
/// Ubuntu 14.04, which is the platform the paper evaluates on.
const UBUNTU: &[Entry] = &[
    Entry {
        name: "libc6",
        key_files: &[
            "/lib/x86_64-linux-gnu/libc.so.6",
            "/etc/ld.so.conf.d/x86_64-linux-gnu.conf",
        ],
        depends: &[],
        doc_files: 6,
        lib_files: 20,
    },
    Entry {
        name: "perl",
        key_files: &[
            "/usr/bin/perl",
            "/usr/bin/perldoc",
            "/etc/perl/sitecustomize.pl",
        ],
        depends: &["libc6"],
        doc_files: 12,
        lib_files: 40,
    },
    Entry {
        name: "python2.7",
        key_files: &["/usr/bin/python2.7", "/etc/python2.7/sitecustomize.py"],
        depends: &["libc6"],
        doc_files: 10,
        lib_files: 40,
    },
    Entry {
        name: "vim",
        key_files: &["/usr/bin/vim", "/usr/bin/vimdiff", "/etc/vim/vimrc"],
        depends: &["libc6"],
        doc_files: 8,
        lib_files: 10,
    },
    Entry {
        name: "git",
        key_files: &[
            "/usr/bin/git",
            "/usr/bin/git-upload-pack",
            "/etc/bash_completion.d/git-prompt",
        ],
        depends: &["perl", "libc6"],
        doc_files: 40,
        lib_files: 160,
    },
    Entry {
        name: "curl",
        key_files: &["/usr/bin/curl"],
        depends: &["libc6"],
        doc_files: 4,
        lib_files: 6,
    },
    Entry {
        name: "wget",
        key_files: &["/usr/bin/wget", "/etc/wgetrc"],
        depends: &["libc6"],
        doc_files: 4,
        lib_files: 2,
    },
    Entry {
        name: "m4",
        key_files: &["/usr/bin/m4"],
        depends: &["libc6"],
        doc_files: 3,
        lib_files: 2,
    },
    Entry {
        name: "make",
        key_files: &["/usr/bin/make"],
        depends: &["libc6"],
        doc_files: 3,
        lib_files: 2,
    },
    Entry {
        name: "gcc",
        key_files: &["/usr/bin/gcc", "/usr/bin/cc"],
        depends: &["libc6", "make"],
        doc_files: 10,
        lib_files: 50,
    },
    Entry {
        name: "ocaml",
        key_files: &["/usr/bin/ocaml", "/usr/bin/ocamlc"],
        depends: &["libc6", "m4"],
        doc_files: 10,
        lib_files: 40,
    },
    Entry {
        // On Ubuntu 14.04 golang-go pulls in perl (paper §2.2, fig. 3c).
        name: "golang-go",
        key_files: &["/usr/bin/go", "/usr/bin/gofmt", "/usr/share/go/api/go1.txt"],
        depends: &["perl", "libc6"],
        doc_files: 10,
        lib_files: 30,
    },
    Entry {
        name: "apache2",
        key_files: &[
            "/usr/sbin/apache2",
            "/usr/sbin/apachectl",
            "/etc/apache2/apache2.conf",
            "/etc/apache2/ports.conf",
            "/etc/apache2/envvars",
            "/etc/apache2/sites-available/000-default.conf",
            "/etc/apache2/sites-enabled/000-default.conf",
            "/etc/apache2/mods-available/mpm_event.conf",
            "/etc/apache2/mods-available/ssl.conf",
            "/etc/apache2/conf-available/charset.conf",
            "/etc/init.d/apache2",
            "/var/www/html/index.html",
        ],
        depends: &["libc6", "perl"],
        doc_files: 30,
        lib_files: 80,
    },
    Entry {
        name: "nginx",
        key_files: &[
            "/usr/sbin/nginx",
            "/etc/nginx/nginx.conf",
            "/etc/nginx/mime.types",
            "/etc/nginx/fastcgi_params",
            "/etc/nginx/sites-available/default",
            "/etc/nginx/sites-enabled/default",
            "/etc/init.d/nginx",
            "/usr/share/nginx/html/index.html",
        ],
        depends: &["libc6"],
        doc_files: 10,
        lib_files: 20,
    },
    Entry {
        name: "php5",
        key_files: &[
            "/usr/bin/php5",
            "/etc/php5/cli/php.ini",
            "/etc/php5/apache2/php.ini",
        ],
        depends: &["libc6", "apache2"],
        doc_files: 12,
        lib_files: 40,
    },
    Entry {
        name: "mysql-server",
        key_files: &[
            "/usr/sbin/mysqld",
            "/etc/mysql/my.cnf",
            "/etc/init.d/mysql",
            "/usr/bin/mysql",
        ],
        depends: &["libc6"],
        doc_files: 16,
        lib_files: 60,
    },
    Entry {
        name: "bind9",
        key_files: &[
            "/usr/sbin/named",
            "/etc/bind/named.conf",
            "/etc/bind/named.conf.options",
            "/etc/bind/named.conf.local",
            "/etc/bind/named.conf.default-zones",
            "/etc/bind/db.root",
            "/etc/bind/db.local",
            "/etc/bind/rndc.key",
            "/etc/init.d/bind9",
        ],
        depends: &["libc6"],
        doc_files: 10,
        lib_files: 24,
    },
    Entry {
        name: "bind9utils",
        key_files: &["/usr/sbin/rndc", "/usr/bin/dnssec-keygen"],
        depends: &["libc6", "bind9"],
        doc_files: 4,
        lib_files: 4,
    },
    Entry {
        name: "dnsmasq",
        key_files: &[
            "/usr/sbin/dnsmasq",
            "/etc/dnsmasq.conf",
            "/etc/init.d/dnsmasq",
            "/etc/default/dnsmasq",
        ],
        depends: &["libc6"],
        doc_files: 6,
        lib_files: 4,
    },
    Entry {
        name: "clamav",
        key_files: &[
            "/usr/bin/clamscan",
            "/usr/bin/sigtool",
            "/etc/clamav/clamd.conf",
        ],
        depends: &["libc6", "clamav-freshclam"],
        doc_files: 10,
        lib_files: 30,
    },
    Entry {
        name: "clamav-daemon",
        key_files: &["/usr/sbin/clamd", "/etc/init.d/clamav-daemon"],
        depends: &["clamav"],
        doc_files: 6,
        lib_files: 8,
    },
    Entry {
        name: "clamav-freshclam",
        key_files: &[
            "/usr/bin/freshclam",
            "/etc/clamav/freshclam.conf",
            "/etc/init.d/clamav-freshclam",
        ],
        depends: &["libc6"],
        doc_files: 4,
        lib_files: 4,
    },
    Entry {
        name: "spamassassin",
        key_files: &[
            "/usr/bin/spamassassin",
            "/usr/bin/spamd",
            "/etc/spamassassin/local.cf",
            "/etc/spamassassin/init.pre",
            "/etc/default/spamassassin",
            "/etc/init.d/spamassassin",
        ],
        depends: &["perl"],
        doc_files: 10,
        lib_files: 30,
    },
    Entry {
        name: "postfix",
        key_files: &[
            "/usr/sbin/postfix",
            "/etc/postfix/main.cf",
            "/etc/postfix/master.cf",
            "/etc/init.d/postfix",
            "/usr/lib/sendmail",
        ],
        depends: &["libc6"],
        doc_files: 14,
        lib_files: 40,
    },
    Entry {
        name: "amavisd-new",
        key_files: &[
            "/usr/sbin/amavisd-new",
            "/etc/amavis/conf.d/05-node_id",
            "/etc/amavis/conf.d/15-content_filter_mode",
            "/etc/amavis/conf.d/20-debian_defaults",
            "/etc/amavis/conf.d/50-user",
            "/etc/init.d/amavis",
        ],
        depends: &["perl", "spamassassin", "clamav"],
        doc_files: 12,
        lib_files: 30,
    },
    Entry {
        name: "ntp",
        key_files: &[
            "/usr/sbin/ntpd",
            "/etc/ntp.conf",
            "/etc/init.d/ntp",
            "/etc/default/ntp",
            "/usr/bin/ntpq",
        ],
        depends: &["libc6"],
        doc_files: 6,
        lib_files: 6,
    },
    Entry {
        name: "ntpdate",
        key_files: &["/usr/sbin/ntpdate", "/etc/default/ntpdate"],
        depends: &["libc6"],
        doc_files: 2,
        lib_files: 1,
    },
    Entry {
        name: "rsyslog",
        key_files: &[
            "/usr/sbin/rsyslogd",
            "/etc/rsyslog.conf",
            "/etc/rsyslog.d/50-default.conf",
            "/etc/init.d/rsyslog",
            "/etc/default/rsyslog",
            "/etc/logrotate.d/rsyslog",
        ],
        depends: &["libc6"],
        doc_files: 8,
        lib_files: 20,
    },
    Entry {
        name: "xinetd",
        key_files: &[
            "/usr/sbin/xinetd",
            "/etc/xinetd.conf",
            "/etc/xinetd.d/daytime",
            "/etc/xinetd.d/echo",
            "/etc/init.d/xinetd",
            "/etc/default/xinetd",
        ],
        depends: &["libc6"],
        doc_files: 4,
        lib_files: 4,
    },
    Entry {
        name: "monit",
        key_files: &[
            "/usr/bin/monit",
            "/etc/monit/monitrc",
            "/etc/monit/conf.d/README",
            "/etc/init.d/monit",
            "/etc/default/monit",
        ],
        depends: &["libc6"],
        doc_files: 6,
        lib_files: 6,
    },
    Entry {
        name: "openjdk-7-jre-headless",
        key_files: &[
            "/usr/lib/jvm/java-7-openjdk-amd64/bin/java",
            "/usr/lib/jvm/java-7-openjdk-amd64/lib/rt.jar",
            "/etc/java-7-openjdk/net.properties",
        ],
        depends: &["libc6"],
        doc_files: 14,
        lib_files: 80,
    },
    Entry {
        name: "openjdk-7-jdk",
        key_files: &[
            "/usr/lib/jvm/java-7-openjdk-amd64/bin/javac",
            "/usr/lib/jvm/java-7-openjdk-amd64/bin/jar",
        ],
        depends: &["openjdk-7-jre-headless"],
        doc_files: 10,
        lib_files: 50,
    },
    Entry {
        name: "maven",
        key_files: &["/usr/bin/mvn", "/etc/maven/settings.xml"],
        depends: &["openjdk-7-jdk"],
        doc_files: 6,
        lib_files: 30,
    },
    Entry {
        name: "tomcat7",
        key_files: &[
            "/usr/share/tomcat7/bin/catalina.sh",
            "/etc/tomcat7/server.xml",
            "/etc/tomcat7/tomcat-users.xml",
            "/etc/init.d/tomcat7",
            "/etc/default/tomcat7",
        ],
        depends: &["openjdk-7-jre-headless"],
        doc_files: 10,
        lib_files: 40,
    },
    Entry {
        name: "logstash",
        key_files: &[
            "/opt/logstash/bin/logstash",
            "/etc/logstash/conf.d/README",
            "/etc/init.d/logstash",
            "/etc/default/logstash",
        ],
        depends: &["openjdk-7-jre-headless"],
        doc_files: 10,
        lib_files: 60,
    },
    Entry {
        name: "elasticsearch",
        key_files: &[
            "/usr/share/elasticsearch/bin/elasticsearch",
            "/etc/elasticsearch/elasticsearch.yml",
            "/etc/elasticsearch/logging.yml",
            "/etc/init.d/elasticsearch",
        ],
        depends: &["openjdk-7-jre-headless"],
        doc_files: 8,
        lib_files: 50,
    },
    Entry {
        name: "redis-server",
        key_files: &[
            "/usr/bin/redis-server",
            "/etc/redis/redis.conf",
            "/etc/init.d/redis-server",
        ],
        depends: &["libc6"],
        doc_files: 6,
        lib_files: 8,
    },
    Entry {
        name: "ircd-hybrid",
        key_files: &[
            "/usr/sbin/ircd-hybrid",
            "/etc/ircd-hybrid/ircd.conf",
            "/etc/ircd-hybrid/ircd.motd",
            "/etc/init.d/ircd-hybrid",
            "/etc/default/ircd-hybrid",
        ],
        depends: &["libc6"],
        doc_files: 6,
        lib_files: 10,
    },
    Entry {
        name: "openssh-server",
        key_files: &[
            "/usr/sbin/sshd",
            "/etc/ssh/sshd_config",
            "/etc/init.d/ssh",
            "/etc/default/ssh",
        ],
        depends: &["libc6"],
        doc_files: 6,
        lib_files: 10,
    },
    Entry {
        name: "openssh-client",
        key_files: &["/usr/bin/ssh", "/usr/bin/ssh-keygen", "/etc/ssh/ssh_config"],
        depends: &["libc6"],
        doc_files: 4,
        lib_files: 6,
    },
    Entry {
        name: "cron",
        key_files: &["/usr/sbin/cron", "/etc/crontab", "/etc/init.d/cron"],
        depends: &["libc6"],
        doc_files: 3,
        lib_files: 2,
    },
];

/// The CentOS (yum) table. Smaller, but realistic enough to demonstrate the
/// platform flag: different package names and layouts for the same roles.
const CENTOS: &[Entry] = &[
    Entry {
        name: "glibc",
        key_files: &["/lib64/libc.so.6"],
        depends: &[],
        doc_files: 6,
        lib_files: 20,
    },
    Entry {
        name: "perl",
        key_files: &["/usr/bin/perl"],
        depends: &["glibc"],
        doc_files: 12,
        lib_files: 40,
    },
    Entry {
        name: "httpd",
        key_files: &[
            "/usr/sbin/httpd",
            "/etc/httpd/conf/httpd.conf",
            "/etc/httpd/conf.d/welcome.conf",
            "/etc/init.d/httpd",
            "/var/www/html/index.html",
        ],
        depends: &["glibc"],
        doc_files: 20,
        lib_files: 60,
    },
    Entry {
        name: "nginx",
        key_files: &[
            "/usr/sbin/nginx",
            "/etc/nginx/nginx.conf",
            "/etc/nginx/conf.d/default.conf",
            "/etc/init.d/nginx",
        ],
        depends: &["glibc"],
        doc_files: 8,
        lib_files: 16,
    },
    Entry {
        name: "bind",
        key_files: &[
            "/usr/sbin/named",
            "/etc/named.conf",
            "/var/named/named.ca",
            "/etc/init.d/named",
        ],
        depends: &["glibc"],
        doc_files: 10,
        lib_files: 24,
    },
    Entry {
        name: "ntp",
        key_files: &["/usr/sbin/ntpd", "/etc/ntp.conf", "/etc/init.d/ntpd"],
        depends: &["glibc"],
        doc_files: 6,
        lib_files: 6,
    },
    Entry {
        name: "rsyslog",
        key_files: &[
            "/usr/sbin/rsyslogd",
            "/etc/rsyslog.conf",
            "/etc/init.d/rsyslog",
        ],
        depends: &["glibc"],
        doc_files: 8,
        lib_files: 20,
    },
    Entry {
        name: "xinetd",
        key_files: &["/usr/sbin/xinetd", "/etc/xinetd.conf", "/etc/init.d/xinetd"],
        depends: &["glibc"],
        doc_files: 4,
        lib_files: 4,
    },
    Entry {
        name: "monit",
        key_files: &["/usr/bin/monit", "/etc/monitrc", "/etc/init.d/monit"],
        depends: &["glibc"],
        doc_files: 6,
        lib_files: 6,
    },
    Entry {
        name: "openssh-server",
        key_files: &["/usr/sbin/sshd", "/etc/ssh/sshd_config", "/etc/init.d/sshd"],
        depends: &["glibc"],
        doc_files: 6,
        lib_files: 10,
    },
];

/// Builds the built-in database for `platform`.
pub fn builtin_db(platform: Platform) -> PackageDb {
    let table = match platform {
        Platform::Ubuntu => UBUNTU,
        Platform::Centos => CENTOS,
    };
    let mut db = PackageDb::new(platform);
    for e in table {
        db.insert(build(e));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ubuntu_db_is_closed_under_dependencies() {
        let db = builtin_db(Platform::Ubuntu);
        for name in db.names() {
            let spec = db.package(name).unwrap();
            for d in spec.depends() {
                assert!(db.contains(d), "{name} depends on missing {d}");
            }
        }
    }

    #[test]
    fn centos_db_is_closed_under_dependencies() {
        let db = builtin_db(Platform::Centos);
        for name in db.names() {
            for d in db.package(name).unwrap().depends() {
                assert!(db.contains(d), "{name} depends on missing {d}");
            }
        }
    }

    #[test]
    fn golang_depends_on_perl_on_ubuntu() {
        // The paper's silent-failure example requires this edge (fig. 3c).
        let db = builtin_db(Platform::Ubuntu);
        let closure = db.install_closure("golang-go").unwrap();
        assert!(closure.iter().any(|s| s.name() == "perl"));
        let removal = db.remove_closure("perl").unwrap();
        assert!(removal.iter().any(|s| s.name() == "golang-go"));
    }

    #[test]
    fn apache2_has_default_site() {
        let db = builtin_db(Platform::Ubuntu);
        let apache = db.package("apache2").unwrap();
        let expect = FsPath::parse("/etc/apache2/sites-available/000-default.conf").unwrap();
        assert!(apache.files().contains(&expect));
        assert!(
            apache.files().len() > 100,
            "apache2 should be a large package"
        );
    }

    #[test]
    fn packages_share_usr_prefix() {
        // False sharing of /usr, /etc drives the commutativity story.
        let db = builtin_db(Platform::Ubuntu);
        let usr = FsPath::parse("/usr").unwrap();
        let vim = db.package("vim").unwrap();
        let git = db.package("git").unwrap();
        assert!(vim.directories().contains(&usr));
        assert!(git.directories().contains(&usr));
    }

    #[test]
    fn platform_tables_differ() {
        let ubuntu = builtin_db(Platform::Ubuntu);
        let centos = builtin_db(Platform::Centos);
        assert!(ubuntu.contains("apache2") && !centos.contains("apache2"));
        assert!(centos.contains("httpd") && !ubuntu.contains("httpd"));
    }
}
