//! Synthetic package generation for scaling experiments (paper §6,
//! fig. 13) and fuzzing.

use crate::spec::{PackageDb, PackageSpec, Platform};
use rehearsal_fs::FsPath;

/// A tiny deterministic PRNG (splitmix64), so synthetic databases are
/// reproducible without an external `rand` dependency.
struct Prng(u64);

impl Prng {
    fn seed_from_u64(seed: u64) -> Prng {
        Prng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        let span = range.end - range.start;
        range.start + (self.next_u64() % span as u64) as usize
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

/// Builds the paper's fig. 13 conflict workload: `n` packages `A-1 … A-n`
/// that all create the *same* file (`/software/a`) plus a few unique files
/// each. Installing all of them unordered is non-deterministic; adding a
/// final `file` resource ordered after all of them makes it deterministic
/// (and forces the solver to prove unsatisfiability).
pub fn conflict_db(n: usize) -> PackageDb {
    let mut db = PackageDb::new(Platform::Ubuntu);
    let shared = FsPath::parse("/software/a").expect("static path");
    for i in 1..=n {
        let name = format!("A-{i}");
        let own_dir = FsPath::parse("/software").expect("static path");
        let files = vec![
            shared,
            own_dir.join(&format!("{name}.bin")),
            own_dir.join(&format!("{name}.dat")),
        ];
        db.insert(PackageSpec::new(name, files, vec![]));
    }
    db
}

/// Generates a random database of `n_packages` packages with
/// `files_per_package` files each, drawn from a pool of shared directories;
/// dependencies form a random DAG. Deterministic in `seed`.
pub fn random_db(seed: u64, n_packages: usize, files_per_package: usize) -> PackageDb {
    let mut rng = Prng::seed_from_u64(seed);
    let mut db = PackageDb::new(Platform::Ubuntu);
    let dirs = ["/usr/bin", "/usr/lib", "/etc", "/usr/share", "/opt"];
    for i in 0..n_packages {
        let name = format!("pkg{i}");
        let mut files = Vec::with_capacity(files_per_package);
        for j in 0..files_per_package {
            let dir = dirs[rng.gen_range(0..dirs.len())];
            let base = FsPath::parse(dir).expect("static path");
            files.push(base.join(&format!("{name}-f{j}")));
        }
        // Depend on a random subset of earlier packages (keeps it a DAG).
        let mut depends = Vec::new();
        for j in 0..i {
            if rng.gen_bool(0.15) {
                depends.push(format!("pkg{j}"));
            }
        }
        db.insert(PackageSpec::new(name, files, depends));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_db_shares_one_file() {
        let db = conflict_db(4);
        assert_eq!(db.len(), 4);
        let shared = FsPath::parse("/software/a").unwrap();
        for name in ["A-1", "A-2", "A-3", "A-4"] {
            assert!(db.package(name).unwrap().files().contains(&shared));
        }
    }

    #[test]
    fn random_db_is_deterministic_in_seed() {
        let a = random_db(7, 10, 5);
        let b = random_db(7, 10, 5);
        for name in a.names() {
            assert_eq!(
                a.package(name).unwrap().files(),
                b.package(name).unwrap().files()
            );
        }
        let c = random_db(8, 10, 5);
        let differs = a
            .names()
            .any(|n| a.package(n).unwrap().files() != c.package(n).unwrap().files());
        assert!(differs, "different seeds should give different layouts");
    }

    #[test]
    fn random_db_dependencies_form_a_dag() {
        let db = random_db(42, 20, 3);
        // pkg_i only depends on pkg_j with j < i, so install closures
        // terminate and are acyclic by construction.
        for name in db.names() {
            let closure = db.install_closure(name).unwrap();
            assert!(!closure.is_empty());
        }
    }
}
