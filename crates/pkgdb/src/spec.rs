//! Package specifications and the package database.

use rehearsal_fs::FsPath;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// The operating-system flavor a database describes.
///
/// The original Rehearsal takes the platform as a command-line flag and
/// queries `apt-file` (Debian/Ubuntu) or `repoquery` (Red Hat/CentOS); the
/// flavor determines package names and file layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Platform {
    /// Debian/Ubuntu layout (apt).
    #[default]
    Ubuntu,
    /// Red Hat/CentOS layout (yum/rpm).
    Centos,
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::Ubuntu => write!(f, "ubuntu"),
            Platform::Centos => write!(f, "centos"),
        }
    }
}

impl std::str::FromStr for Platform {
    type Err = UnknownPlatformError;

    fn from_str(s: &str) -> Result<Platform, UnknownPlatformError> {
        match s.to_ascii_lowercase().as_str() {
            "ubuntu" | "debian" | "apt" => Ok(Platform::Ubuntu),
            "centos" | "redhat" | "rhel" | "yum" => Ok(Platform::Centos),
            _ => Err(UnknownPlatformError(s.to_string())),
        }
    }
}

/// Error parsing a [`Platform`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPlatformError(String);

impl fmt::Display for UnknownPlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown platform {:?} (expected ubuntu or centos)",
            self.0
        )
    }
}

impl std::error::Error for UnknownPlatformError {}

/// Everything the analyses need to know about one package: the regular
/// files it installs and its direct dependencies.
///
/// Directories are implied: every ancestor of an installed file is created
/// (as with real package managers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageSpec {
    name: String,
    files: Vec<FsPath>,
    depends: Vec<String>,
}

impl PackageSpec {
    /// Creates a spec. `files` are the regular files installed.
    pub fn new(name: impl Into<String>, files: Vec<FsPath>, depends: Vec<String>) -> PackageSpec {
        let mut files = files;
        files.sort();
        files.dedup();
        PackageSpec {
            name: name.into(),
            files,
            depends,
        }
    }

    /// The package name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The regular files this package installs (sorted).
    pub fn files(&self) -> &[FsPath] {
        &self.files
    }

    /// Direct dependencies (package names).
    pub fn depends(&self) -> &[String] {
        &self.depends
    }

    /// Every directory implied by the file list, sorted parents-first.
    pub fn directories(&self) -> Vec<FsPath> {
        let mut dirs: BTreeSet<FsPath> = BTreeSet::new();
        for f in &self.files {
            for a in f.ancestors() {
                if a != FsPath::root() {
                    dirs.insert(a);
                }
            }
        }
        let mut out: Vec<FsPath> = dirs.into_iter().collect();
        out.sort_by_key(|p| (p.depth(), *p));
        out
    }
}

/// Error for a package name missing from the database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPackageError {
    name: String,
    platform: Platform,
}

impl UnknownPackageError {
    /// The missing package's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for UnknownPackageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "package {:?} is not in the {} package database",
            self.name, self.platform
        )
    }
}

impl std::error::Error for UnknownPackageError {}

/// A database of package listings for one platform.
///
/// This is Rehearsal's substitute for the paper's web service wrapping
/// `apt-file`/`repoquery`: a deterministic, in-memory map from package name
/// to file list and dependency metadata. See `DESIGN.md` §5 for why this
/// substitution preserves the experiments.
///
/// # Examples
///
/// ```
/// use rehearsal_pkgdb::{PackageDb, Platform};
/// let db = PackageDb::builtin(Platform::Ubuntu);
/// let apache = db.package("apache2")?;
/// assert!(apache.files().iter().any(|p| p.to_string().contains("apache2.conf")));
/// # Ok::<(), rehearsal_pkgdb::UnknownPackageError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PackageDb {
    platform: Platform,
    packages: BTreeMap<String, PackageSpec>,
}

impl PackageDb {
    /// An empty database for `platform`.
    pub fn new(platform: Platform) -> PackageDb {
        PackageDb {
            platform,
            packages: BTreeMap::new(),
        }
    }

    /// The built-in database for `platform`: realistic listings for the
    /// packages used by the paper's examples and our benchmarks.
    pub fn builtin(platform: Platform) -> PackageDb {
        crate::builtin::builtin_db(platform)
    }

    /// The platform this database describes.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Adds (or replaces) a package spec.
    pub fn insert(&mut self, spec: PackageSpec) {
        self.packages.insert(spec.name().to_string(), spec);
    }

    /// Looks up a package.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownPackageError`] if the package is not listed.
    pub fn package(&self, name: &str) -> Result<&PackageSpec, UnknownPackageError> {
        rehearsal_trace::counter_add("pkgdb.lookups", 1);
        match self.packages.get(name) {
            Some(spec) => Ok(spec),
            None => {
                rehearsal_trace::counter_add("pkgdb.misses", 1);
                Err(UnknownPackageError {
                    name: name.to_string(),
                    platform: self.platform,
                })
            }
        }
    }

    /// Whether the package is listed.
    pub fn contains(&self, name: &str) -> bool {
        self.packages.contains_key(name)
    }

    /// Iterates over all package names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.packages.keys().map(String::as_str)
    }

    /// Number of packages.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    /// The install closure of `name`: the package and all transitive
    /// dependencies, in BFS order starting from `name`, deduplicated.
    ///
    /// This mirrors `apt install`: installing a package also installs
    /// everything it depends on (the paper's golang-go/perl example relies
    /// on this).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownPackageError`] if `name` or any dependency is
    /// missing from the database.
    pub fn install_closure(&self, name: &str) -> Result<Vec<&PackageSpec>, UnknownPackageError> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        let mut out = Vec::new();
        queue.push_back(name);
        while let Some(n) = queue.pop_front() {
            if !seen.insert(n) {
                continue;
            }
            let spec = self.package(n)?;
            out.push(spec);
            for d in spec.depends() {
                queue.push_back(d);
            }
        }
        Ok(out)
    }

    /// The remove closure of `name`: the package and all transitive
    /// *reverse* dependents, in BFS order, deduplicated.
    ///
    /// This mirrors `apt remove`: removing a package also removes every
    /// package that depends on it.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownPackageError`] if `name` is missing.
    pub fn remove_closure(&self, name: &str) -> Result<Vec<&PackageSpec>, UnknownPackageError> {
        self.package(name)?;
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        let mut out = Vec::new();
        queue.push_back(name);
        while let Some(n) = queue.pop_front() {
            if !seen.insert(n) {
                continue;
            }
            out.push(self.package(n).expect("seen packages exist"));
            for (other, spec) in &self.packages {
                if spec.depends().iter().any(|d| d == n) {
                    queue.push_back(other);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn tiny_db() -> PackageDb {
        let mut db = PackageDb::new(Platform::Ubuntu);
        db.insert(PackageSpec::new("perl", vec![p("/usr/bin/perl")], vec![]));
        db.insert(PackageSpec::new(
            "golang-go",
            vec![p("/usr/bin/go")],
            vec!["perl".to_string()],
        ));
        db.insert(PackageSpec::new(
            "app",
            vec![p("/usr/bin/app")],
            vec!["golang-go".to_string()],
        ));
        db
    }

    #[test]
    fn lookup_and_errors() {
        let db = tiny_db();
        assert!(db.package("perl").is_ok());
        let err = db.package("nope").unwrap_err();
        assert_eq!(err.name(), "nope");
        assert!(err.to_string().contains("ubuntu"));
    }

    #[test]
    fn install_closure_pulls_dependencies() {
        let db = tiny_db();
        let names: Vec<&str> = db
            .install_closure("app")
            .unwrap()
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, vec!["app", "golang-go", "perl"]);
    }

    #[test]
    fn remove_closure_pulls_reverse_dependents() {
        let db = tiny_db();
        let names: Vec<&str> = db
            .remove_closure("perl")
            .unwrap()
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, vec!["perl", "golang-go", "app"]);
    }

    #[test]
    fn directories_are_sorted_parents_first() {
        let spec = PackageSpec::new(
            "x",
            vec![p("/usr/share/doc/x/README"), p("/usr/bin/x")],
            vec![],
        );
        let dirs = spec.directories();
        let pos = |q: FsPath| dirs.iter().position(|&d| d == q).unwrap();
        assert!(pos(p("/usr")) < pos(p("/usr/share")));
        assert!(pos(p("/usr/share")) < pos(p("/usr/share/doc")));
        assert!(pos(p("/usr/share/doc")) < pos(p("/usr/share/doc/x")));
        assert!(!dirs.contains(&FsPath::root()));
    }

    #[test]
    fn cyclic_dependencies_terminate() {
        let mut db = PackageDb::new(Platform::Ubuntu);
        db.insert(PackageSpec::new("a", vec![p("/a")], vec!["b".to_string()]));
        db.insert(PackageSpec::new("b", vec![p("/b")], vec!["a".to_string()]));
        assert_eq!(db.install_closure("a").unwrap().len(), 2);
        assert_eq!(db.remove_closure("a").unwrap().len(), 2);
    }

    #[test]
    fn platform_parsing() {
        assert_eq!("ubuntu".parse::<Platform>().unwrap(), Platform::Ubuntu);
        assert_eq!("CentOS".parse::<Platform>().unwrap(), Platform::Centos);
        assert!("windows".parse::<Platform>().is_err());
    }
}
