//! Per-resource footprint summaries and structural digests — the
//! foundation of differential (incremental) verification.
//!
//! A fleet rerun after a small edit should cost time proportional to the
//! *diff*, not the fleet. Three pieces make that possible:
//!
//! 1. **Structural digests** ([`expr_digest`], [`graph_digest`]): 64-bit
//!    FNV-1a hashes of the *structure* of an FS program (node tags, path
//!    strings, contents), not its arena ids — arena ids are stable only
//!    within one process, digests are stable across processes and are what
//!    cache and baseline files store. Two manifests that lower to the same
//!    graph (formatting, comments, resource reordering) get the same
//!    digest.
//! 2. **Footprints** ([`footprint`]): a per-resource summary of the read
//!    set, write set, idempotently-ensured directories, metadata effects,
//!    and observed directories, derived from the memoized [`accesses`]
//!    summary. Footprints serialize into baseline entries so a later run
//!    can reason about resources that no longer exist in the new graph.
//! 3. **The commute oracle** ([`CommuteOracle`]): a digest-keyed store of
//!    per-pair commutativity verdicts. Seeded from a baseline with the
//!    pairs whose endpoints are *clean* (outside the [`dirty_cone`]), it
//!    short-circuits the pairwise [`commutes`] computation during
//!    re-analysis. Because `commutes` is a pure function of the two
//!    expressions' structure and the digest identifies that structure,
//!    a seeded answer is always identical to a recomputed one — reuse can
//!    change wall time, never verdicts.

use crate::commutativity::{accesses, commutes, Access};
use crate::determinism::FsGraph;
use crate::memo::ExprMemo;
use rehearsal_fs::{Expr, ExprNode, FsPath, Pred, PredNode};
use rehearsal_sync::ShardedMap;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix_bytes(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

fn mix_u64(state: u64, value: u64) -> u64 {
    mix_bytes(state, &value.to_le_bytes())
}

/// Length-prefixed so `("a", "bc")` and `("ab", "c")` differ.
fn mix_str(state: u64, s: &str) -> u64 {
    mix_bytes(mix_u64(state, s.len() as u64), s.as_bytes())
}

fn mix_path(state: u64, p: FsPath) -> u64 {
    mix_str(state, &p.to_string())
}

static PRED_DIGESTS: OnceLock<ShardedMap<Pred, u64>> = OnceLock::new();
static EXPR_DIGESTS: ExprMemo<u64> = ExprMemo::new("memo.digest.hits", "memo.digest.misses");

/// The structural digest of a predicate (see [`expr_digest`]).
///
/// Memoized in a lock-striped [`ShardedMap`], so digest probes from many
/// fleet workers and explorer threads stop serializing on one lock.
pub fn pred_digest(p: Pred) -> u64 {
    let table = PRED_DIGESTS.get_or_init(ShardedMap::new);
    let (d, _) = table.get_or_insert_with(p, || compute_pred_digest(p));
    d
}

fn compute_pred_digest(p: Pred) -> u64 {
    let h = mix_bytes(FNV_OFFSET, b"pred");
    match p.node() {
        PredNode::True => mix_u64(h, 0x01),
        PredNode::False => mix_u64(h, 0x02),
        PredNode::DoesNotExist(q) => mix_path(mix_u64(h, 0x03), q),
        PredNode::IsFile(q) => mix_path(mix_u64(h, 0x04), q),
        PredNode::IsDir(q) => mix_path(mix_u64(h, 0x05), q),
        PredNode::IsEmptyDir(q) => mix_path(mix_u64(h, 0x06), q),
        PredNode::MetaIs(q, field, v) => mix_str(
            mix_str(mix_path(mix_u64(h, 0x07), q), &field.to_string()),
            &v.as_string(),
        ),
        PredNode::And(a, b) => mix_u64(mix_u64(mix_u64(h, 0x08), pred_digest(a)), pred_digest(b)),
        PredNode::Or(a, b) => mix_u64(mix_u64(mix_u64(h, 0x09), pred_digest(a)), pred_digest(b)),
        PredNode::Not(a) => mix_u64(mix_u64(h, 0x0a), pred_digest(a)),
    }
}

/// The structural digest of an FS program.
///
/// Hashes node tags, path strings, content strings, and metadata fields —
/// never arena ids — so the digest is stable across processes and can be
/// persisted in cache and baseline files. Memoized per arena id, so
/// repeated digests of shared subtrees are O(1). Equal digests are
/// trusted to mean equal structure (the same 64-bit collision model the
/// verdict cache already uses).
pub fn expr_digest(e: Expr) -> u64 {
    *EXPR_DIGESTS.get_or_compute(e, || compute_expr_digest(e))
}

fn compute_expr_digest(e: Expr) -> u64 {
    let h = mix_bytes(FNV_OFFSET, b"expr");
    match e.node() {
        ExprNode::Skip => mix_u64(h, 0x20),
        ExprNode::Error => mix_u64(h, 0x21),
        ExprNode::Mkdir(p) => mix_path(mix_u64(h, 0x22), p),
        ExprNode::CreateFile(p, c) => mix_str(mix_path(mix_u64(h, 0x23), p), &c.as_string()),
        ExprNode::Rm(p) => mix_path(mix_u64(h, 0x24), p),
        ExprNode::Cp(src, dst) => mix_path(mix_path(mix_u64(h, 0x25), src), dst),
        ExprNode::ChMeta(p, field, v) => mix_str(
            mix_str(mix_path(mix_u64(h, 0x26), p), &field.to_string()),
            &v.as_string(),
        ),
        ExprNode::Seq(a, b) => mix_u64(mix_u64(mix_u64(h, 0x27), expr_digest(a)), expr_digest(b)),
        ExprNode::If(c, t, f) => mix_u64(
            mix_u64(mix_u64(mix_u64(h, 0x28), pred_digest(c)), expr_digest(t)),
            expr_digest(f),
        ),
    }
}

/// The canonical digest of a lowered resource graph: resource digests plus
/// dependency-edge structure, independent of declaration order, resource
/// names, and spans.
///
/// Resources are put in a canonical order by Weisfeiler–Leman-style color
/// refinement (initial color = the resource's [`expr_digest`], refined
/// with sorted predecessor/successor color multisets), then the digest
/// hashes the resource digests in that order and the edge set remapped to
/// canonical positions. Reordering two *structurally distinguishable*
/// resources therefore cannot change the digest; indistinguishable
/// resources (identical programs with identical neighborhoods) are
/// interchangeable anyway. A refinement miss only costs a cache miss,
/// never a wrong verdict.
pub fn graph_digest(graph: &FsGraph) -> u64 {
    let n = graph.exprs.len();
    let digests: Vec<u64> = graph.exprs.iter().map(|&e| expr_digest(e)).collect();
    let mut color = digests.clone();
    for _ in 0..2 {
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let mut preds: Vec<u64> = graph
                .edges
                .iter()
                .filter(|&&(_, to)| to == i)
                .map(|&(from, _)| color[from])
                .collect();
            let mut succs: Vec<u64> = graph
                .edges
                .iter()
                .filter(|&&(from, _)| from == i)
                .map(|&(_, to)| color[to])
                .collect();
            preds.sort_unstable();
            succs.sort_unstable();
            let mut h = mix_u64(mix_bytes(FNV_OFFSET, b"color"), color[i]);
            h = mix_u64(h, preds.len() as u64);
            for c in preds {
                h = mix_u64(h, c);
            }
            h = mix_u64(h, succs.len() as u64);
            for c in succs {
                h = mix_u64(h, c);
            }
            next.push(h);
        }
        color = next;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (color[i], digests[i]));
    let mut rank = vec![0usize; n];
    for (r, &i) in order.iter().enumerate() {
        rank[i] = r;
    }
    let mut edges: Vec<(usize, usize)> = graph
        .edges
        .iter()
        .map(|&(a, b)| (rank[a], rank[b]))
        .collect();
    edges.sort_unstable();

    let mut h = mix_bytes(FNV_OFFSET, b"graph");
    h = mix_u64(h, n as u64);
    for &i in &order {
        h = mix_u64(h, digests[i]);
    }
    h = mix_u64(h, edges.len() as u64);
    for (a, b) in edges {
        h = mix_u64(mix_u64(h, a as u64), b as u64);
    }
    h
}

/// The canonical footprint of one resource's FS program: what it reads,
/// writes, manages metadata on, and which directories' child sets it
/// observes — plus its structural digest.
///
/// Footprints are what baseline files persist per resource; the path sets
/// are rendered as strings on disk and reparsed on load, so a later
/// process (with different arena ids) can still test overlap against
/// resources that were removed by an edit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Structural digest of the program ([`expr_digest`]).
    pub digest: u64,
    /// Paths the program reads (including idempotent ensure-dir checks).
    pub reads: BTreeSet<FsPath>,
    /// Paths the program writes or creates.
    pub writes: BTreeSet<FsPath>,
    /// Paths the program idempotently ensures are directories (the
    /// fig. 9b `D` access, produced by the guarded-mkdir idiom lowering
    /// emits for ancestor directories). Two ensures of the same path
    /// commute — whichever runs first creates the directory, the other is
    /// a no-op — so `ensured ∩ ensured` is *not* a conflict; keeping this
    /// out of [`Footprint::writes`] is what stops every resource under
    /// `/etc` from overlapping every other.
    pub ensured: BTreeSet<FsPath>,
    /// Paths whose metadata (owner/group/mode) the program manages or
    /// observes — the package/meta effect set.
    pub meta: BTreeSet<FsPath>,
    /// Directories whose *children* the program observes (via `rm` or
    /// `emptydir?`): any write under such a directory conflicts.
    pub observed_dirs: BTreeSet<FsPath>,
}

impl Footprint {
    /// True when the two footprints provably touch disjoint state,
    /// mirroring the Lemma 4 access matrix path-by-path: no write of one
    /// overlaps a read, write, ensure, or meta effect of the other; no
    /// ensure of one overlaps a read or write of the other (two ensures
    /// of the same path commute); and neither changes anything under a
    /// directory whose children the other observes. Disjoint footprints
    /// commute (property-tested against the concrete semantics in
    /// `tests/footprint_props.rs`).
    pub fn disjoint(&self, other: &Footprint) -> bool {
        fn writes_conflict(a: &Footprint, b: &Footprint) -> bool {
            a.writes.iter().any(|p| {
                b.reads.contains(p)
                    || b.writes.contains(p)
                    || b.meta.contains(p)
                    || b.ensured.contains(p)
            }) || a
                .ensured
                .iter()
                .any(|p| b.reads.contains(p) || b.writes.contains(p) || b.meta.contains(p))
                || a.meta
                    .iter()
                    .any(|p| b.meta.contains(p) || b.writes.contains(p))
        }
        fn observation_conflict(a: &Footprint, b: &Footprint) -> bool {
            a.observed_dirs.iter().any(|&d| {
                b.writes
                    .iter()
                    .chain(b.meta.iter())
                    .chain(b.ensured.iter())
                    .any(|&p| p != d && d.is_ancestor_of(p))
            })
        }
        !writes_conflict(self, other)
            && !writes_conflict(other, self)
            && !observation_conflict(self, other)
            && !observation_conflict(other, self)
    }

    /// True when the footprints *may* touch overlapping state — the
    /// conservative complement of [`Footprint::disjoint`], used to pull
    /// resources into the [`dirty_cone`].
    pub fn may_overlap(&self, other: &Footprint) -> bool {
        !self.disjoint(other)
    }
}

static FOOTPRINTS: ExprMemo<Footprint> =
    ExprMemo::new("memo.footprint.hits", "memo.footprint.misses");

/// The memoized [`Footprint`] of `e`, derived from the shared
/// [`accesses`] summary plus a metadata
/// walk. Like every memo table, computed once per distinct program and
/// shared across analysis sessions and fleet worker threads.
pub fn footprint(e: Expr) -> Arc<Footprint> {
    FOOTPRINTS.get_or_compute(e, || {
        let summary = accesses(e);
        let mut fp = Footprint {
            digest: expr_digest(e),
            ..Footprint::default()
        };
        for (p, a) in summary.touched() {
            match a {
                Access::Bot => {}
                Access::Read => {
                    fp.reads.insert(p);
                }
                Access::EnsureDir => {
                    fp.ensured.insert(p);
                }
                Access::Write => {
                    fp.writes.insert(p);
                }
            }
        }
        fp.observed_dirs = summary.observed_dirs().clone();
        collect_meta_paths(e, &mut fp.meta);
        fp
    })
}

fn collect_meta_paths(e: Expr, out: &mut BTreeSet<FsPath>) {
    match e.node() {
        ExprNode::ChMeta(p, _, _) => {
            out.insert(p);
        }
        ExprNode::Seq(a, b) => {
            collect_meta_paths(a, out);
            collect_meta_paths(b, out);
        }
        ExprNode::If(c, t, f) => {
            collect_pred_meta_paths(c, out);
            collect_meta_paths(t, out);
            collect_meta_paths(f, out);
        }
        _ => {}
    }
}

fn collect_pred_meta_paths(p: Pred, out: &mut BTreeSet<FsPath>) {
    match p.node() {
        PredNode::MetaIs(q, _, _) => {
            out.insert(q);
        }
        PredNode::And(a, b) | PredNode::Or(a, b) => {
            collect_pred_meta_paths(a, out);
            collect_pred_meta_paths(b, out);
        }
        PredNode::Not(a) => collect_pred_meta_paths(a, out),
        _ => {}
    }
}

/// A digest-keyed store of per-pair commutativity verdicts.
///
/// During re-analysis the explorer and the elimination pass consult the
/// oracle before calling [`commutes`]; a seeded or previously-computed
/// answer for the same digest pair is returned directly. `commutes` is a
/// pure function of the two programs' structure, so a stored bit is
/// always identical to what recomputation would produce — the oracle
/// affects wall time and the `pairs_reused` counter, never verdicts.
///
/// Thread-safe: one oracle is shared across a job's analysis stages, and
/// the pair store is lock-striped so parallel explorer threads probing
/// different pairs do not contend.
#[derive(Debug, Default)]
pub struct CommuteOracle {
    pairs: ShardedMap<(u64, u64), bool>,
    reused: AtomicU64,
    computed: AtomicU64,
}

impl CommuteOracle {
    /// An empty oracle (everything will be computed and recorded).
    pub fn new() -> CommuteOracle {
        CommuteOracle::default()
    }

    fn key(a: u64, b: u64) -> (u64, u64) {
        (a.min(b), a.max(b))
    }

    /// Seeds a pair verdict from a baseline. Safe only because the digest
    /// identifies structure: seed pairs must come from a prior run of the
    /// same pure `commutes` over structurally identical programs.
    pub fn seed(&self, a: u64, b: u64, commute: bool) {
        self.pairs
            .insert_if_absent(CommuteOracle::key(a, b), commute);
    }

    /// The commutativity verdict for the digest pair, consulting the
    /// store first and computing (then recording) on a miss.
    pub fn commutes_pair(&self, a: u64, b: u64, compute: impl FnOnce() -> bool) -> bool {
        let key = CommuteOracle::key(a, b);
        if let Some(bit) = self.pairs.get(&key) {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return bit;
        }
        let bit = compute();
        self.computed.fetch_add(1, Ordering::Relaxed);
        let (stored, _) = self.pairs.insert_if_absent(key, bit);
        stored
    }

    /// How many pair lookups were answered from the store.
    pub fn pairs_reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// How many pair verdicts were computed fresh this run.
    pub fn pairs_computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Every stored pair (seeded and computed), sorted — the form a
    /// baseline file persists.
    pub fn export(&self) -> Vec<(u64, u64, bool)> {
        let mut out: Vec<(u64, u64, bool)> = self
            .pairs
            .snapshot()
            .into_iter()
            .map(|((a, b), bit)| (a, b, bit))
            .collect();
        out.sort_unstable();
        out
    }
}

/// Computes the *dirty cone* of an edit: the seed resources (those whose
/// digest is new relative to the baseline) plus every resource that might
/// interact with the edit — because its footprint may overlap a seed's or
/// a removed baseline resource's footprint, or because it is ordered
/// relative to a seed by a dependency edge.
///
/// Resources outside the cone are *clean*: their baseline pair verdicts
/// may be seeded into a [`CommuteOracle`]. The cone itself is a
/// performance-accounting boundary, not a soundness one — seeded answers
/// are identical to recomputed ones by construction — so an
/// overapproximate cone only reduces reuse. Overlap against removed
/// resources uses the conservative serialized footprints; anything
/// ambiguous overlaps.
pub fn dirty_cone(
    graph: &FsGraph,
    seed: &BTreeSet<usize>,
    removed: &[Footprint],
) -> BTreeSet<usize> {
    let footprints: Vec<Arc<Footprint>> = graph.exprs.iter().map(|&e| footprint(e)).collect();
    let mut cone: BTreeSet<usize> = seed.clone();
    // Resources that may interact with a resource the edit deleted (or
    // rewrote beyond recognition) are dirty too: the baseline's pair
    // verdicts involving the removed program say nothing about them now.
    for (i, fp) in footprints.iter().enumerate() {
        if removed.iter().any(|r| fp.may_overlap(r)) {
            cone.insert(i);
        }
    }
    // One expansion round: footprint overlap with, or a dependency edge
    // touching, anything dirty so far.
    let base = cone.clone();
    for &d in &base {
        for &(a, b) in &graph.edges {
            if a == d {
                cone.insert(b);
            }
            if b == d {
                cone.insert(a);
            }
        }
        for (i, fp) in footprints.iter().enumerate() {
            if !cone.contains(&i) && fp.may_overlap(&footprints[d]) {
                cone.insert(i);
            }
        }
    }
    cone
}

/// The pairwise commutativity of two resources, via the oracle when one
/// is supplied. This is the single entry point the explorer and the
/// elimination pass share, so `pairs_reused` counts every short-circuited
/// pair exactly once per lookup site.
pub(crate) fn commutes_with_oracle(
    oracle: Option<&CommuteOracle>,
    ea: Expr,
    eb: Expr,
    sa: &crate::commutativity::AccessSummary,
    sb: &crate::commutativity::AccessSummary,
) -> bool {
    match oracle {
        Some(o) => o.commutes_pair(expr_digest(ea), expr_digest(eb), || commutes(sa, sb)),
        None => commutes(sa, sb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::Content;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn file(path: &str, content: &str) -> Expr {
        Expr::create_file(p(path), Content::intern(content))
    }

    fn graph(exprs: Vec<Expr>, edges: &[(usize, usize)]) -> FsGraph {
        let names = (0..exprs.len()).map(|i| format!("r{i}")).collect();
        FsGraph::new(exprs, edges.iter().copied().collect(), names)
    }

    #[test]
    fn digests_are_structural_and_pinned() {
        // Pinned constants lock the digest scheme across processes and
        // releases: cache schema 5 and baseline files depend on it.
        assert_eq!(expr_digest(Expr::SKIP), 0xd064_9878_d16f_952e);
        assert_eq!(expr_digest(Expr::mkdir(p("/a"))), 0x1fc0_4ec8_d257_2656);
        assert_eq!(expr_digest(file("/etc/motd", "hi")), 0x57a3_dda8_d634_f0ff);
    }

    #[test]
    fn equal_structure_means_equal_digest() {
        let a = Expr::mkdir(p("/a")).seq(file("/a/f", "x"));
        let b = Expr::mkdir(p("/a")).seq(file("/a/f", "x"));
        assert_eq!(expr_digest(a), expr_digest(b));
        let c = Expr::mkdir(p("/a")).seq(file("/a/f", "y"));
        assert_ne!(expr_digest(a), expr_digest(c));
    }

    #[test]
    fn graph_digest_ignores_order_names_and_spans() {
        let e1 = file("/etc/a", "1");
        let e2 = file("/etc/b", "2");
        let g1 = graph(vec![e1, e2], &[]);
        let g2 = graph(vec![e2, e1], &[]);
        assert_eq!(graph_digest(&g1), graph_digest(&g2));

        // An edge is structure: adding one changes the digest.
        let g3 = graph(vec![e1, e2], &[(0, 1)]);
        assert_ne!(graph_digest(&g1), graph_digest(&g3));

        // Edge direction is structure too, and reordering the resource
        // list remaps edges with it.
        let g4 = graph(vec![e2, e1], &[(1, 0)]);
        assert_eq!(graph_digest(&g3), graph_digest(&g4));
        let g5 = graph(vec![e1, e2], &[(1, 0)]);
        assert_ne!(graph_digest(&g3), graph_digest(&g5));
    }

    #[test]
    fn footprints_classify_reads_writes_meta() {
        let e = Expr::if_(
            Pred::is_dir(p("/etc")),
            file("/etc/app.conf", "x").seq(Expr::chmeta(
                p("/etc/app.conf"),
                rehearsal_fs::MetaField::Mode,
                Content::intern("0644"),
            )),
            Expr::ERROR,
        );
        let fp = footprint(e);
        assert!(fp.writes.contains(&p("/etc/app.conf")));
        assert!(fp.meta.contains(&p("/etc/app.conf")));
        assert_eq!(fp.digest, expr_digest(e));
    }

    #[test]
    fn disjoint_footprints_do_not_overlap() {
        let a = footprint(file("/a/x", "1"));
        let b = footprint(file("/b/y", "2"));
        assert!(a.disjoint(&b));
        let c = footprint(file("/a/x", "other"));
        assert!(!a.disjoint(&c));
    }

    #[test]
    fn observed_dirs_conflict_with_writes_underneath() {
        let observer = footprint(Expr::rm(p("/spool"))); // rm observes children
        let writer = footprint(file("/spool/job", "j"));
        assert!(observer.may_overlap(&writer));
    }

    #[test]
    fn oracle_reuses_seeded_pairs_and_records_computed_ones() {
        let oracle = CommuteOracle::new();
        oracle.seed(1, 2, true);
        assert!(oracle.commutes_pair(2, 1, || unreachable!("seeded pair must not recompute")));
        assert_eq!(oracle.pairs_reused(), 1);
        assert!(!oracle.commutes_pair(3, 4, || false));
        assert_eq!(oracle.pairs_computed(), 1);
        // The computed pair is now stored.
        assert!(!oracle.commutes_pair(4, 3, || true));
        assert_eq!(oracle.pairs_reused(), 2);
        assert_eq!(oracle.export(), vec![(1, 2, true), (3, 4, false)]);
    }

    #[test]
    fn dirty_cone_pulls_in_overlap_and_edges() {
        let exprs = vec![
            file("/a/one", "1"),   // 0: edited (seed)
            file("/a/one.d", "2"), // 1: disjoint from everything
            file("/b/two", "3"),   // 2: edge-ordered after 0
            file("/c/three", "4"), // 3: clean
        ];
        let g = graph(exprs, &[(0, 2)]);
        let cone = dirty_cone(&g, &BTreeSet::from([0]), &[]);
        assert!(cone.contains(&0), "seed is dirty");
        assert!(cone.contains(&2), "edge-ordered resource joins the cone");
        assert!(
            !cone.contains(&3),
            "disjoint unordered resource stays clean"
        );

        // A removed resource's serialized footprint dirties overlaps.
        let removed = Footprint {
            digest: 0,
            writes: BTreeSet::from([p("/c/three")]),
            ..Footprint::default()
        };
        let cone = dirty_cone(&g, &BTreeSet::new(), &[removed]);
        assert!(cone.contains(&3));
    }
}
