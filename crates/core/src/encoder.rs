//! The symbolic evaluator Φ (paper fig. 7): FS programs to logical states.
//!
//! A logical state `Σ = ⟨ok, fs⟩` pairs an error-freedom formula with a map
//! from modeled paths to finite-domain terms. Expressions update the map
//! unconditionally and accumulate preconditions into `ok`, exactly as in
//! the paper's figure; conditionals merge branches with if-then-else terms.
//!
//! Because expressions are hash-consed ids and formulas/terms are
//! hash-consed handles, a symbolic state is identified exactly by its `ok`
//! handle plus its term vector — so Φ is memoized per encoder on
//! `(expression id, state identity)`. The permutation explorer re-evaluates
//! the same resources from the same intermediate states across branches
//! (and identical embedded subprograms, e.g. shared package-dependency
//! blocks, recur within one sequence); every such repeat is now a map
//! lookup instead of a re-encoding.

use crate::domain::{Domain, MetaTable, PathValue, ValueTable, CODE_DIR, CODE_DNE};
use rehearsal_fs::{
    Content, Expr, ExprNode, FileState, FileSystem, FsPath, Meta, MetaValue, Pred, PredNode,
};
use rehearsal_solver::{Ctx, Formula, ModelView, Term};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The per-field metadata terms of one path, in [`MetaField::ALL`]
/// (owner, group, mode) order.
///
/// [`MetaField::ALL`]: rehearsal_fs::MetaField::ALL
pub type MetaTerms = [Term; 3];

/// A logical state `Σ` (paper fig. 7), extended with per-path metadata:
/// `path → {File(content, meta), Dir(meta), Absent}` where each of the
/// three `meta` fields is a separate finite-domain term over
/// `{Unmanaged} ∪ mentioned values`.
#[derive(Debug, Clone)]
pub struct SymState {
    /// True iff no operation has failed.
    pub ok: Formula,
    /// The symbolic state of every modeled path.
    pub fs: BTreeMap<FsPath, Term>,
    /// The symbolic metadata of every metadata-tracked path (see
    /// [`Domain::meta_paths`]); empty for metadata-free programs, which
    /// keeps their state keys bit-identical to the metadata-free model.
    pub meta: BTreeMap<FsPath, MetaTerms>,
}

/// The canonical identity of a [`SymState`]: the `ok` handle plus the term
/// handle of every path (and every tracked metadata field), in the (fixed)
/// domain order. Exact — because formulas and terms are hash-consed, two
/// states with equal keys are the same logical state, and two states with
/// different keys are structurally different formulas (though possibly
/// still semantically equal).
pub type StateKey = (Formula, Vec<Term>);

impl SymState {
    /// This state's canonical content key. Hashing the key is the cheap
    /// content hash the explorer's output dedup and state cache bucket
    /// on; comparing keys is exact structural identity.
    pub fn key(&self) -> StateKey {
        let mut terms: Vec<Term> = self.fs.values().copied().collect();
        for fields in self.meta.values() {
            terms.extend_from_slice(fields);
        }
        (self.ok, terms)
    }
}

fn state_key(state: &SymState) -> StateKey {
    state.key()
}

/// The symbolic encoder: a solver context plus the value table and domain
/// shared by every formula in one analysis.
#[derive(Debug)]
pub struct Encoder {
    /// The underlying formula/term context.
    pub ctx: Ctx,
    /// Meaning of value codes.
    pub values: ValueTable,
    /// Meaning of metadata value codes (shared by all three fields).
    pub meta_values: MetaTable,
    /// The bounded path domain.
    pub domain: Domain,
    /// Paths encoded as read-only (pruned paths, paper §4.4): their initial
    /// variable is reused and never overwritten.
    read_only: BTreeSet<FsPath>,
    /// Memoized symbolic evaluation of composite nodes: `(e, Σ) → Φ(e)Σ`.
    eval_memo: HashMap<(Expr, StateKey), SymState>,
    /// Memo hits, for stats/diagnostics.
    eval_memo_hits: usize,
}

impl Encoder {
    /// Creates an encoder for the given domain.
    pub fn new(domain: Domain) -> Encoder {
        Encoder {
            ctx: Ctx::new(),
            values: ValueTable::new(),
            meta_values: MetaTable::new(),
            domain,
            read_only: BTreeSet::new(),
            eval_memo: HashMap::new(),
            eval_memo_hits: 0,
        }
    }

    /// A 128-bit context-independent digest of a symbolic state.
    ///
    /// [`StateKey`]s are handle tuples, so they only match within one
    /// context. The digest instead mixes the *structural* digests of the
    /// `ok` formula and of every path (and metadata) term in domain
    /// order, which is fixed per domain — so two encoders for the same
    /// domain that evaluated the same operation sequence produce the same
    /// digest. This is the shared-cache key for the parallel explorer.
    pub fn state_digest(&mut self, state: &SymState) -> u128 {
        // FNV-128 offset basis / prime, matching the solver's digests.
        const SEED: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
        const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
        let mut d = (SEED ^ self.ctx.formula_digest(state.ok)).wrapping_mul(PRIME);
        for &t in state.fs.values() {
            d = (d ^ self.ctx.term_digest(t)).wrapping_mul(PRIME);
        }
        for fields in state.meta.values() {
            for &t in fields.iter() {
                d = (d ^ self.ctx.term_digest(t)).wrapping_mul(PRIME);
            }
        }
        d
    }

    /// Marks a path as read-only (its writes have been pruned away).
    pub fn mark_read_only(&mut self, p: FsPath) {
        self.read_only.insert(p);
    }

    /// Whether `p` is encoded read-only.
    pub fn is_read_only(&self, p: FsPath) -> bool {
        self.read_only.contains(&p)
    }

    /// Number of read-write (state-tracked) paths.
    pub fn tracked_paths(&self) -> usize {
        self.domain.paths.len() - self.read_only.len()
    }

    /// How many symbolic evaluations were answered from the memo table.
    pub fn eval_memo_hits(&self) -> usize {
        self.eval_memo_hits
    }

    /// Builds the initial symbolic state: one finite-domain variable per
    /// path over `{DNE, Dir, File(init_p)}`, with the root fixed to `Dir`.
    ///
    /// Initial states are constrained to be *tree-consistent*: a path may
    /// only exist when its parent is a directory. Real filesystems satisfy
    /// this, and every FS operation preserves it (`mkdir`/`creat`/`cp`
    /// require the parent directory; `rm` requires emptiness), so
    /// restricting the search is sound and necessary — without it the
    /// checker reports divergences on impossible states such as
    /// `/etc/ntp.conf` existing inside a missing `/etc`.
    pub fn initial_state(&mut self) -> SymState {
        let mut fs = BTreeMap::new();
        for &p in &self.domain.paths.clone() {
            let term = if p == FsPath::root() {
                let dir = self.values.code(PathValue::Dir);
                self.ctx.val(dir)
            } else {
                let dne = self.values.code(PathValue::Dne);
                let dir = self.values.code(PathValue::Dir);
                let init = self.values.code(PathValue::FileInit(p));
                self.ctx.fd_var(&[dne, dir, init])
            };
            fs.insert(p, term);
        }
        // Tree consistency: exists(p) → dir?(parent(p)).
        for (&p, &t) in &fs {
            let Some(parent) = p.parent() else { continue };
            let Some(&pt) = fs.get(&parent) else { continue };
            let exists = {
                let dne = self.ctx.bit(t, CODE_DNE);
                self.ctx.not(dne)
            };
            let parent_dir = self.ctx.bit(pt, CODE_DIR);
            let implication = self.ctx.implies(exists, parent_dir);
            self.ctx.assert_background(implication);
        }
        // Metadata-tracked paths get one free variable per field over
        // `{Unmanaged} ∪ mentioned values` — the initial metadata may be
        // anything the programs could subsequently observe.
        let mut meta = BTreeMap::new();
        if !self.domain.meta_paths.is_empty() {
            let mut codes = vec![self.meta_values.code(MetaValue::Unmanaged)];
            for &v in &self.domain.meta_values.clone() {
                codes.push(self.meta_values.code(MetaValue::Set(v)));
            }
            for &p in &self.domain.meta_paths.clone() {
                let fields = [
                    self.ctx.fd_var(&codes),
                    self.ctx.fd_var(&codes),
                    self.ctx.fd_var(&codes),
                ];
                meta.insert(p, fields);
            }
        }
        SymState {
            ok: self.ctx.tt(),
            fs,
            meta,
        }
    }

    /// The constant `Unmanaged` metadata terms (fresh paths start here).
    fn unmanaged_meta(&mut self) -> MetaTerms {
        let code = self.meta_values.code(MetaValue::Unmanaged);
        let t = self.ctx.val(code);
        [t, t, t]
    }

    /// Resets a freshly created/removed path's metadata to `Unmanaged`
    /// (a no-op for paths whose metadata is untracked).
    fn reset_meta(&mut self, state: &mut SymState, p: FsPath) {
        if state.meta.contains_key(&p) {
            let fields = self.unmanaged_meta();
            state.meta.insert(p, fields);
        }
    }

    fn term_for(&self, state: &SymState, p: FsPath) -> Term {
        *state
            .fs
            .get(&p)
            .unwrap_or_else(|| panic!("path {p} not in the analysis domain"))
    }

    /// `dir?(p)` as a formula.
    pub fn is_dir(&mut self, state: &SymState, p: FsPath) -> Formula {
        let t = self.term_for(state, p);
        self.ctx.bit(t, CODE_DIR)
    }

    /// `none?(p)` as a formula.
    pub fn is_dne(&mut self, state: &SymState, p: FsPath) -> Formula {
        let t = self.term_for(state, p);
        self.ctx.bit(t, CODE_DNE)
    }

    /// `file?(p)` as a formula (not absent and not a directory).
    pub fn is_file(&mut self, state: &SymState, p: FsPath) -> Formula {
        let dne = self.is_dne(state, p);
        let dir = self.is_dir(state, p);
        let ndne = self.ctx.not(dne);
        let ndir = self.ctx.not(dir);
        self.ctx.and2(ndne, ndir)
    }

    /// `emptydir?(p)`: a directory whose modeled children are all absent.
    ///
    /// Completeness relies on the fresh children added by
    /// [`Domain::of_exprs`] (paper fig. 8).
    pub fn is_empty_dir(&mut self, state: &SymState, p: FsPath) -> Formula {
        let mut conj = vec![self.is_dir(state, p)];
        for &c in self.domain.children_of(p).to_vec().iter() {
            conj.push(self.is_dne(state, c));
        }
        self.ctx.and(conj)
    }

    /// Encodes a predicate against a symbolic state.
    pub fn eval_pred(&mut self, pred: Pred, state: &SymState) -> Formula {
        match pred.node() {
            PredNode::True => self.ctx.tt(),
            PredNode::False => self.ctx.ff(),
            PredNode::DoesNotExist(p) => self.is_dne(state, p),
            PredNode::IsFile(p) => self.is_file(state, p),
            PredNode::IsDir(p) => self.is_dir(state, p),
            PredNode::IsEmptyDir(p) => self.is_empty_dir(state, p),
            PredNode::MetaIs(p, field, v) => {
                // Exists ∧ field managed to exactly v.
                let dne = self.is_dne(state, p);
                let exists = self.ctx.not(dne);
                let term = state.meta[&p][field.index()];
                let code = self.meta_values.code(MetaValue::Set(v));
                let matches = self.ctx.bit(term, code);
                self.ctx.and2(exists, matches)
            }
            PredNode::And(a, b) => {
                let fa = self.eval_pred(a, state);
                let fb = self.eval_pred(b, state);
                self.ctx.and2(fa, fb)
            }
            PredNode::Or(a, b) => {
                let fa = self.eval_pred(a, state);
                let fb = self.eval_pred(b, state);
                self.ctx.or2(fa, fb)
            }
            PredNode::Not(a) => {
                let fa = self.eval_pred(a, state);
                self.ctx.not(fa)
            }
        }
    }

    fn set_path(&mut self, state: &mut SymState, p: FsPath, value: Term) {
        debug_assert!(
            !self.read_only.contains(&p),
            "write to pruned (read-only) path {p}"
        );
        state.fs.insert(p, value);
    }

    /// Φ(e): evaluates an expression symbolically (paper fig. 7).
    ///
    /// Composite programs are memoized on `(id, state)` at this entry
    /// point only: the permutation explorer re-evaluates whole resources
    /// from recurring intermediate states across branches, and that is
    /// where repeats actually happen. The recursion below this entry is
    /// unmemoized — intermediate states along a `Seq` spine are unique, so
    /// keying every internal node would cost O(paths) per node for no
    /// hits.
    pub fn eval_expr(&mut self, e: Expr, state: &SymState) -> SymState {
        let node = e.node();
        let key = match node {
            ExprNode::Seq(_, _) | ExprNode::If(_, _, _) => {
                let key = (e, state_key(state));
                if let Some(cached) = self.eval_memo.get(&key) {
                    self.eval_memo_hits += 1;
                    return cached.clone();
                }
                Some(key)
            }
            _ => None,
        };
        let out = self.eval_node(node, state);
        if let Some(key) = key {
            self.eval_memo.insert(key, out.clone());
        }
        out
    }

    /// Unmemoized recursion (see [`Encoder::eval_expr`]).
    fn eval_rec(&mut self, e: Expr, state: &SymState) -> SymState {
        self.eval_node(e.node(), state)
    }

    fn eval_node(&mut self, node: ExprNode, state: &SymState) -> SymState {
        match node {
            ExprNode::Skip => state.clone(),
            ExprNode::Error => SymState {
                ok: self.ctx.ff(),
                fs: state.fs.clone(),
                meta: state.meta.clone(),
            },
            ExprNode::Mkdir(p) => {
                let parent = p.parent().expect("mkdir of root is rejected upstream");
                let pre_parent = self.is_dir(state, parent);
                let pre_self = self.is_dne(state, p);
                let pre = self.ctx.and2(pre_parent, pre_self);
                let ok = self.ctx.and2(state.ok, pre);
                let mut out = SymState {
                    ok,
                    fs: state.fs.clone(),
                    meta: state.meta.clone(),
                };
                let dir = self.values.code(PathValue::Dir);
                let dir_t = self.ctx.val(dir);
                self.set_path(&mut out, p, dir_t);
                self.reset_meta(&mut out, p);
                out
            }
            ExprNode::CreateFile(p, content) => {
                let parent = p.parent().expect("creat at root is rejected upstream");
                let pre_parent = self.is_dir(state, parent);
                let pre_self = self.is_dne(state, p);
                let pre = self.ctx.and2(pre_parent, pre_self);
                let ok = self.ctx.and2(state.ok, pre);
                let mut out = SymState {
                    ok,
                    fs: state.fs.clone(),
                    meta: state.meta.clone(),
                };
                let code = self.values.code(PathValue::File(content));
                let t = self.ctx.val(code);
                self.set_path(&mut out, p, t);
                self.reset_meta(&mut out, p);
                out
            }
            ExprNode::Rm(p) => {
                let is_f = self.is_file(state, p);
                let is_ed = self.is_empty_dir(state, p);
                let pre = self.ctx.or2(is_f, is_ed);
                let ok = self.ctx.and2(state.ok, pre);
                let mut out = SymState {
                    ok,
                    fs: state.fs.clone(),
                    meta: state.meta.clone(),
                };
                let dne = self.values.code(PathValue::Dne);
                let t = self.ctx.val(dne);
                self.set_path(&mut out, p, t);
                // An absent path has canonical (Unmanaged) metadata, so
                // create-then-remove reconverges with never-created.
                self.reset_meta(&mut out, p);
                out
            }
            ExprNode::Cp(src, dst) => {
                let dst_parent = dst.parent().expect("cp to root is rejected upstream");
                let pre_src = self.is_file(state, src);
                let pre_parent = self.is_dir(state, dst_parent);
                let pre_dst = self.is_dne(state, dst);
                let pre = self.ctx.and([pre_src, pre_parent, pre_dst]);
                let ok = self.ctx.and2(state.ok, pre);
                let mut out = SymState {
                    ok,
                    fs: state.fs.clone(),
                    meta: state.meta.clone(),
                };
                // The destination takes the source's (file) value; non-file
                // cases are excluded by `ok`, so junk values are harmless.
                let src_t = self.term_for(state, src);
                self.set_path(&mut out, dst, src_t);
                // cp does not copy metadata: the fresh copy is unmanaged.
                self.reset_meta(&mut out, dst);
                out
            }
            ExprNode::ChMeta(p, field, v) => {
                let dne = self.is_dne(state, p);
                let pre = self.ctx.not(dne);
                let ok = self.ctx.and2(state.ok, pre);
                let mut out = SymState {
                    ok,
                    fs: state.fs.clone(),
                    meta: state.meta.clone(),
                };
                let code = self.meta_values.code(MetaValue::Set(v));
                let t = self.ctx.val(code);
                let fields = out.meta.get_mut(&p).expect("meta path is in the domain");
                fields[field.index()] = t;
                out
            }
            ExprNode::Seq(a, b) => {
                let mid = self.eval_rec(a, state);
                self.eval_rec(b, &mid)
            }
            ExprNode::If(pred, then_, else_) => {
                let cond = self.eval_pred(pred, state);
                if self.ctx.is_true(cond) {
                    return self.eval_rec(then_, state);
                }
                if self.ctx.is_false(cond) {
                    return self.eval_rec(else_, state);
                }
                let st = self.eval_rec(then_, state);
                let se = self.eval_rec(else_, state);
                let ok = self.ctx.ite(cond, st.ok, se.ok);
                let mut fs = state.fs.clone();
                // Only merge paths that changed in at least one branch.
                for (&p, &orig) in &state.fs {
                    let tt = *st.fs.get(&p).unwrap_or(&orig);
                    let te = *se.fs.get(&p).unwrap_or(&orig);
                    if tt != te {
                        let merged = self.ctx.tite(cond, tt, te);
                        fs.insert(p, merged);
                    } else if tt != orig {
                        fs.insert(p, tt);
                    }
                }
                // And likewise for every tracked metadata field.
                let mut meta = state.meta.clone();
                for (&p, orig) in &state.meta {
                    let ft = *st.meta.get(&p).unwrap_or(orig);
                    let fe = *se.meta.get(&p).unwrap_or(orig);
                    if ft == fe && ft == *orig {
                        continue;
                    }
                    let mut merged = *orig;
                    for i in 0..3 {
                        merged[i] = if ft[i] != fe[i] {
                            self.ctx.tite(cond, ft[i], fe[i])
                        } else {
                            ft[i]
                        };
                    }
                    meta.insert(p, merged);
                }
                SymState { ok, fs, meta }
            }
        }
    }

    /// The formula "states `a` and `b` are observably different": their
    /// error status differs, or both succeed and some path differs — in
    /// kind/content, or (for a path present in both) in managed metadata.
    pub fn states_differ(&mut self, a: &SymState, b: &SymState) -> Formula {
        let ok_differs = {
            let iff = self.ctx.iff(a.ok, b.ok);
            self.ctx.not(iff)
        };
        let mut some_path_differs = Vec::new();
        for (&p, &ta) in &a.fs {
            let tb = *b.fs.get(&p).expect("states share a domain");
            if ta != tb {
                some_path_differs.push(self.ctx.neq_terms(ta, tb));
            }
        }
        // Metadata is only observable while the path exists: removal
        // resets the tracked fields to `Unmanaged`, and two absent paths
        // are indistinguishable regardless of stale field terms.
        for (&p, fa) in &a.meta {
            let fb = b.meta.get(&p).expect("states share a domain");
            let mut field_diffs = Vec::new();
            for i in 0..3 {
                if fa[i] != fb[i] {
                    field_diffs.push(self.ctx.neq_terms(fa[i], fb[i]));
                }
            }
            if field_diffs.is_empty() {
                continue;
            }
            let any_field = self.ctx.or(field_diffs);
            let dne_a = self.is_dne(a, p);
            let dne_b = self.is_dne(b, p);
            let exists_a = self.ctx.not(dne_a);
            let exists_b = self.ctx.not(dne_b);
            let both_exist = self.ctx.and2(exists_a, exists_b);
            some_path_differs.push(self.ctx.and2(both_exist, any_field));
        }
        let any = self.ctx.or(some_path_differs);
        let both_ok = self.ctx.and2(a.ok, b.ok);
        let diff_ok = self.ctx.and2(both_ok, any);
        self.ctx.or2(ok_differs, diff_ok)
    }

    /// Decodes a model into a concrete filesystem over the domain,
    /// interpreting the given symbolic state (typically the initial one).
    pub fn decode_state(&mut self, model: &ModelView, state: &SymState) -> FileSystem {
        let mut out = FileSystem::new();
        for (&p, &t) in &state.fs {
            let code = model.term_value_in(&self.ctx, t);
            let decoded = match self.values.value(code) {
                PathValue::Dne => None,
                PathValue::Dir => Some(FileState::DIR),
                PathValue::File(c) => Some(FileState::file(c)),
                PathValue::FileInit(q) => {
                    // A provenance tag: materialize a content unique to q.
                    let c = Content::intern(&format!("<initial content of {q}>"));
                    Some(FileState::file(c))
                }
            };
            let Some(file_state) = decoded else { continue };
            let meta = match state.meta.get(&p) {
                Some(fields) => {
                    let mut m = Meta::UNMANAGED;
                    for (i, field) in rehearsal_fs::MetaField::ALL.into_iter().enumerate() {
                        let code = model.term_value_in(&self.ctx, fields[i]);
                        if let MetaValue::Set(v) = self.meta_values.value(code) {
                            m = m.with(field, v);
                        }
                    }
                    m
                }
                None => Meta::UNMANAGED,
            };
            out.insert(p, file_state.with_meta(meta));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::eval as concrete_eval;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn encoder_for(exprs: &[Expr]) -> Encoder {
        Encoder::new(Domain::of_exprs(exprs.iter().copied()))
    }

    #[test]
    fn mkdir_success_needs_parent() {
        let e = Expr::mkdir(p("/a/b"));
        let mut enc = encoder_for(&[e]);
        let s0 = enc.initial_state();
        let s1 = enc.eval_expr(e, &s0);
        // Satisfiable: /a is a dir, /a/b absent.
        let m = enc.ctx.solve(s1.ok).expect("mkdir can succeed");
        let init = enc.decode_state(&m, &s0);
        assert!(init.is_dir(p("/a")));
        assert!(init.not_exists(p("/a/b")));
    }

    #[test]
    fn mkdir_then_mkdir_same_path_always_fails() {
        let e = Expr::mkdir(p("/a")).seq(Expr::mkdir(p("/a")));
        let mut enc = encoder_for(&[e]);
        let s0 = enc.initial_state();
        let s1 = enc.eval_expr(e, &s0);
        assert!(enc.ctx.solve(s1.ok).is_none(), "second mkdir must fail");
    }

    #[test]
    fn conditional_merges_branches() {
        let a = p("/a");
        let e = Expr::if_(Pred::does_not_exist(a), Expr::mkdir(a), Expr::SKIP);
        let mut enc = encoder_for(&[e]);
        let s0 = enc.initial_state();
        let s1 = enc.eval_expr(e, &s0);
        // The program fails only when /a exists as a file... actually when
        // /a is absent it creates it (root is a dir), when /a is a dir it
        // skips, when /a is a file it skips. It never fails.
        let nok = enc.ctx.not(s1.ok);
        assert!(enc.ctx.solve(nok).is_none(), "program never errs");
        // But the final state of /a is not always Dir: a file stays a file.
        let t = s1.fs[&a];
        let dne = enc.ctx.bit(t, CODE_DNE);
        assert!(enc.ctx.solve(dne).is_none(), "/a always exists afterwards");
        let dir = enc.ctx.bit(t, CODE_DIR);
        let ndir = enc.ctx.not(dir);
        assert!(enc.ctx.solve(ndir).is_some(), "/a may remain a file");
    }

    #[test]
    fn repeated_subprograms_hit_the_memo() {
        let a = p("/m");
        let sub = Expr::if_then(Pred::is_dir(a).not(), Expr::mkdir(a))
            .seq(Expr::create_file(p("/m/f"), Content::intern("x")));
        let mut enc = encoder_for(&[sub]);
        let s0 = enc.initial_state();
        let o1 = enc.eval_expr(sub, &s0);
        assert_eq!(enc.eval_memo_hits(), 0, "first evaluation is fresh");
        let o2 = enc.eval_expr(sub, &s0);
        assert!(enc.eval_memo_hits() > 0, "identical (e, Σ) is memoized");
        // The memoized result is the same logical state.
        assert_eq!(o1.ok, o2.ok);
        assert_eq!(o1.fs, o2.fs);
    }

    #[test]
    fn emptydir_distinguishes_from_dir() {
        // Paper §4.1: these two programs differ, but only on a state with a
        // child inside /a — found thanks to the fresh child.
        let a = p("/a");
        let e1 = Expr::if_(Pred::is_empty_dir(a), Expr::SKIP, Expr::ERROR);
        let e2 = Expr::if_(Pred::is_dir(a), Expr::SKIP, Expr::ERROR);
        let mut enc = encoder_for(&[e1, e2]);
        let s0 = enc.initial_state();
        let o1 = enc.eval_expr(e1, &s0);
        let o2 = enc.eval_expr(e2, &s0);
        let diff = enc.states_differ(&o1, &o2);
        let m = enc.ctx.solve(diff).expect("the programs differ");
        let init = enc.decode_state(&m, &s0);
        assert!(init.is_dir(a), "counterexample: /a is a non-empty dir");
        let has_child = init.iter().any(|(q, _)| a.is_parent_of(q));
        assert!(has_child, "counterexample must populate /a: {init}");
    }

    #[test]
    fn equivalent_programs_have_unsat_difference() {
        // Guarded mkdir ≡ its three-way expansion (paper §4.3).
        let a = p("/a");
        let e1 = Expr::if_then(Pred::is_dir(a).not(), Expr::mkdir(a));
        let e2 = Expr::if_(
            Pred::does_not_exist(a),
            Expr::mkdir(a),
            Expr::if_(Pred::is_file(a), Expr::ERROR, Expr::SKIP),
        );
        let mut enc = encoder_for(&[e1, e2]);
        let s0 = enc.initial_state();
        let o1 = enc.eval_expr(e1, &s0);
        let o2 = enc.eval_expr(e2, &s0);
        let diff = enc.states_differ(&o1, &o2);
        assert!(enc.ctx.solve(diff).is_none(), "programs are equivalent");
    }

    #[test]
    fn cp_copies_symbolic_content() {
        let e = Expr::cp(p("/src"), p("/dst"));
        let mut enc = encoder_for(&[e]);
        let s0 = enc.initial_state();
        let s1 = enc.eval_expr(e, &s0);
        // After success, dst equals src's initial content.
        let eq = enc.ctx.eq_terms(s1.fs[&p("/dst")], s0.fs[&p("/src")]);
        let neq = enc.ctx.not(eq);
        let bad = enc.ctx.and2(s1.ok, neq);
        assert!(enc.ctx.solve(bad).is_none());
    }

    /// Cross-validation: on random-ish small programs, the symbolic
    /// encoding's model decodes to an initial state on which the concrete
    /// evaluator reproduces the symbolic verdict.
    #[test]
    fn symbolic_and_concrete_agree_on_error_behavior() {
        let cases = vec![
            Expr::mkdir(p("/a")).seq(Expr::create_file(p("/a/f"), Content::intern("x"))),
            Expr::rm(p("/a")),
            Expr::cp(p("/a"), p("/b")).seq(Expr::rm(p("/a"))),
            Expr::if_(
                Pred::is_file(p("/a")),
                Expr::rm(p("/a")),
                Expr::mkdir(p("/a")),
            ),
        ];
        for &e in &cases {
            let mut enc = encoder_for(&[e]);
            let s0 = enc.initial_state();
            let s1 = enc.eval_expr(e, &s0);
            // If a success state exists, the decoded initial state must make
            // the concrete evaluator succeed.
            if let Some(m) = enc.ctx.solve(s1.ok) {
                let init = enc.decode_state(&m, &s0);
                assert!(
                    concrete_eval(e, &init).is_ok(),
                    "symbolic success must replay concretely: {e} on {init}"
                );
            }
            // If a failure state exists, the decoded initial state must make
            // the concrete evaluator fail.
            let nok = enc.ctx.not(s1.ok);
            if let Some(m) = enc.ctx.solve(nok) {
                let init = enc.decode_state(&m, &s0);
                assert!(
                    concrete_eval(e, &init).is_err(),
                    "symbolic failure must replay concretely: {e} on {init}"
                );
            }
        }
    }

    #[test]
    fn metadata_free_states_have_no_meta_terms() {
        let e = Expr::mkdir(p("/nm"));
        let mut enc = encoder_for(&[e]);
        let s0 = enc.initial_state();
        assert!(s0.meta.is_empty(), "no meta ops → no meta terms");
        let s1 = enc.eval_expr(e, &s0);
        assert!(s1.meta.is_empty());
        // The state key is exactly the metadata-free key shape.
        assert_eq!(s1.key().1.len(), s1.fs.len());
    }

    #[test]
    fn chmod_race_is_symbolically_observable() {
        use rehearsal_fs::eval as concrete_eval;
        let f = p("/mr/f");
        let c = Content::intern("same");
        let mk = Expr::mkdir(p("/mr")).seq(Expr::create_file(f, c));
        let a = mk.seq(Expr::chmod(f, Content::intern("0644")));
        let b = mk.seq(Expr::chmod(f, Content::intern("0755")));
        let mut enc = encoder_for(&[a, b]);
        let s0 = enc.initial_state();
        let oa = enc.eval_expr(a, &s0);
        let ob = enc.eval_expr(b, &s0);
        let diff = enc.states_differ(&oa, &ob);
        let m = enc.ctx.solve(diff).expect("modes differ");
        // The decoded witness replays to genuinely different outcomes.
        let init = enc.decode_state(&m, &s0);
        let ra = concrete_eval(a, &init);
        let rb = concrete_eval(b, &init);
        assert_ne!(ra, rb, "metadata divergence must replay concretely");
    }

    #[test]
    fn remove_then_recreate_clears_metadata() {
        // chown(f, root); rm(f); creat(f, c)  ≡  creat-path without chown:
        // metadata resets on re-creation, so the two end states are equal.
        let f = p("/rc/f");
        let c = Content::intern("v");
        let mk = Expr::mkdir(p("/rc")).seq(Expr::create_file(f, c));
        let with_chown = mk
            .seq(Expr::chown(f, Content::intern("root")))
            .seq(Expr::rm(f))
            .seq(Expr::create_file(f, c));
        let without = mk.seq(Expr::rm(f)).seq(Expr::create_file(f, c));
        let mut enc = encoder_for(&[with_chown, without]);
        let s0 = enc.initial_state();
        let o1 = enc.eval_expr(with_chown, &s0);
        let o2 = enc.eval_expr(without, &s0);
        let diff = enc.states_differ(&o1, &o2);
        assert!(
            enc.ctx.solve(diff).is_none(),
            "re-creation resets metadata to Unmanaged"
        );
    }

    #[test]
    fn meta_is_matches_only_managed_values() {
        use rehearsal_fs::MetaField;
        let f = p("/mi2/f");
        let root = Content::intern("root");
        let mk = Expr::mkdir(p("/mi2")).seq(Expr::create_file(f, Content::intern("x")));
        // After creat (no chown), meta_is(owner=root) must be false on
        // every run that succeeded.
        let probe = Pred::meta_is(f, MetaField::Owner, root);
        let chowned = mk.seq(Expr::chown(f, root));
        let mut enc = encoder_for(&[mk, chowned]);
        let s0 = enc.initial_state();
        let s1 = enc.eval_expr(mk, &s0);
        let probe_f = enc.eval_pred(probe, &s1);
        let bad = enc.ctx.and2(s1.ok, probe_f);
        assert!(
            enc.ctx.solve(bad).is_none(),
            "fresh files are unmanaged: the probe can never hold"
        );
        // With the chown, the probe holds on every successful run.
        let s2 = enc.eval_expr(chowned, &s0);
        let probe_f2 = enc.eval_pred(probe, &s2);
        let not_probe = enc.ctx.not(probe_f2);
        let bad2 = enc.ctx.and2(s2.ok, not_probe);
        assert!(enc.ctx.solve(bad2).is_none(), "chown establishes the probe");
    }

    #[test]
    fn branch_merge_covers_metadata() {
        use rehearsal_fs::eval as concrete_eval;
        let f = p("/bm/f");
        let c = Content::intern("x");
        let mk = Expr::mkdir(p("/bm")).seq(Expr::create_file(f, c));
        // Conditionally chown depending on an unrelated path.
        let e = mk.seq(Expr::if_(
            Pred::is_file(p("/bm-flag")),
            Expr::chown(f, Content::intern("root")),
            Expr::SKIP,
        ));
        let plain = mk;
        let mut enc = encoder_for(&[e, plain]);
        let s0 = enc.initial_state();
        let o1 = enc.eval_expr(e, &s0);
        let o2 = enc.eval_expr(plain, &s0);
        let diff = enc.states_differ(&o1, &o2);
        let m = enc
            .ctx
            .solve(diff)
            .expect("differs when the flag file exists");
        let init = enc.decode_state(&m, &s0);
        assert!(init.is_file(p("/bm-flag")), "witness must set the flag");
        assert_ne!(concrete_eval(e, &init), concrete_eval(plain, &init));
    }

    #[test]
    fn read_only_paths_are_guarded() {
        let e = Expr::if_(Pred::is_file(p("/ro")), Expr::SKIP, Expr::ERROR);
        let mut enc = encoder_for(&[e]);
        enc.mark_read_only(p("/ro"));
        assert!(enc.is_read_only(p("/ro")));
        assert_eq!(enc.tracked_paths(), enc.domain.len() - 1);
        let s0 = enc.initial_state();
        let s1 = enc.eval_expr(e, &s0);
        assert!(enc.ctx.solve(s1.ok).is_some());
    }
}
