//! The determinacy analysis (paper §4): explore the resource graph's
//! permutations with partial-order reduction, encode the outcomes as
//! formulas, and decide determinism with one SAT query (Theorem 1).

use crate::bitset::Bits;
use crate::commutativity::{accesses, AccessSummary};
use crate::domain::Domain;
use crate::encoder::{Encoder, StateKey, SymState};
use crate::prune::prune_graph;
use rehearsal_fs::{eval as concrete_eval, Expr, FileSystem};
use rehearsal_solver::ModelView;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The per-analysis evaluation budget: deadline plus cancellation, threaded
/// down into the SAT solver so a fleet scheduler can interrupt mid-solve.
pub(crate) fn interrupt_flag(options: &AnalysisOptions) -> Option<Arc<AtomicBool>> {
    options.cancel.as_ref().map(|t| Arc::clone(&t.flag))
}

/// The abort reason for a failed solve, distinguishing cooperative
/// cancellation from a plain deadline.
pub(crate) fn solve_abort_reason(options: &AnalysisOptions) -> AnalysisAborted {
    let cancelled = options
        .cancel
        .as_ref()
        .map(CancelToken::is_cancelled)
        .unwrap_or(false);
    AnalysisAborted {
        reason: if cancelled {
            "cancelled during SAT solving".to_string()
        } else {
            "timeout during SAT solving".to_string()
        },
    }
}

/// A shareable cancellation handle for in-flight analyses.
///
/// Cloning the token shares the underlying flag, so a scheduler can hand
/// the same token to an analysis running on another thread and revoke its
/// time budget early (e.g. when a fleet run is aborted). The analysis
/// polls the token at the same points it polls its deadline and returns
/// [`AnalysisAborted`] once cancelled.
///
/// Tokens form a tree: [`CancelToken::child`] derives a token that is
/// cancelled whenever its parent is, while cancelling the child leaves
/// the parent (and its other children) untouched. A request-serving
/// daemon hands each request a child of one global drain token: the
/// request can be cancelled individually (its deadline), and draining
/// the daemon revokes every in-flight request at once.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; every analysis sharing this token (and
    /// every descendant token) aborts at its next budget check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested, on this token or any
    /// ancestor. An observed ancestor cancellation is propagated into
    /// this token's own flag so low-level pollers holding only the flag
    /// (the SAT solver's interrupt check) trip on the next poll too.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if self.parent.as_ref().is_some_and(|p| p.is_cancelled()) {
            self.flag.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Derives a linked child token: cancelling the parent cancels the
    /// child (propagated at the child's next poll), cancelling the child
    /// does not affect the parent.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }
}

/// Tuning knobs for the analysis; the defaults enable everything the paper
/// describes. Disabling individual reductions reproduces the ablations of
/// fig. 11.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Partial-order reduction via the commutativity check (§4.3).
    pub commutativity: bool,
    /// Resource elimination (§4.4).
    pub elimination: bool,
    /// Path pruning / shrinking (§4.4).
    pub pruning: bool,
    /// Abort the analysis after this much wall-clock time.
    pub timeout: Option<Duration>,
    /// Abort after exploring this many distinct sequences (a memory
    /// safety-valve for the factorial worst case, fig. 13).
    pub max_sequences: usize,
    /// Cooperative cancellation: when set, the analysis aborts as soon as
    /// the token is cancelled, independent of the timeout.
    pub cancel: Option<CancelToken>,
    /// Sound state-reconvergence cache: commuting prefixes that reach the
    /// same `(remaining, symbolic state)` are explored once, and the
    /// skipped subtree's sequence count is accounted from the first visit.
    /// Never changes the verdict (the skipped subtree would reproduce the
    /// exact same output formulas); off is an ablation/debugging mode.
    pub state_cache: bool,
    /// Check each newly discovered distinct output against the first *as
    /// it is found* on the incremental solver, returning NONDET as soon as
    /// one check is satisfiable instead of exploring the full space first.
    /// Never changes the verdict; off restores the single monolithic
    /// post-exploration query.
    pub early_exit: bool,
    /// Honor `owner`/`group`/`mode` attributes when compiling resources
    /// (the metadata-aware FS model). Strictly speaking a *modeling*
    /// option — it changes what the resource compiler emits, not how the
    /// explorer runs — but it rides in `AnalysisOptions` because it
    /// changes verdicts and therefore must reach everything keyed on the
    /// analysis configuration (the fleet verdict cache, the CLI, batch
    /// runs). Off by default: unannotated pipelines stay bit-identical.
    pub model_metadata: bool,
    /// Model `package { ensure => latest }` distinctly from `present`
    /// (the upgrade re-overwrites the package's files with version-bumped
    /// content) instead of aliasing it to the idempotent install. Rides
    /// here for the same reason as [`AnalysisOptions::model_metadata`]:
    /// it changes verdicts, so the fleet engine and the verdict-cache key
    /// must see it. Off by default; a compiler diagnostic is recorded for
    /// every `latest` either way.
    pub model_latest: bool,
    /// Worker threads for permutation exploration. `1` (the default) runs
    /// the exact sequential traversal, preserving its exploration
    /// statistics bit-for-bit; larger values split the interleaving tree
    /// into prefix subtrees explored by work-stealing workers with a
    /// shared state cache and per-worker solver contexts. The verdict is
    /// identical for every value (see [`crate::parallel`]); *scheduling*
    /// counters (`sequences_skipped`, `state_cache_hits`, solver work)
    /// may vary run-to-run when `threads > 1`. Deliberately **excluded**
    /// from the fleet verdict-cache key: it cannot change verdicts.
    pub threads: usize,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            commutativity: true,
            elimination: true,
            pruning: true,
            timeout: None,
            max_sequences: 100_000,
            cancel: None,
            state_cache: true,
            early_exit: true,
            model_metadata: false,
            model_latest: false,
            threads: 1,
        }
    }
}

impl AnalysisOptions {
    /// All reductions off (the naive baseline of fig. 11).
    pub fn naive() -> AnalysisOptions {
        AnalysisOptions {
            commutativity: false,
            elimination: false,
            pruning: false,
            ..AnalysisOptions::default()
        }
    }

    /// Sets a timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> AnalysisOptions {
        self.timeout = Some(timeout);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> AnalysisOptions {
        self.cancel = Some(token);
        self
    }

    /// Sets the explorer's worker-thread count (`0` is clamped to `1`).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> AnalysisOptions {
        self.threads = threads.max(1);
        self
    }
}

/// The analysis gave up (timeout or sequence explosion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisAborted {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for AnalysisAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis aborted: {}", self.reason)
    }
}

impl std::error::Error for AnalysisAborted {}

/// Size statistics from a determinism check, reported by the benchmark
/// harness (fig. 11a counts paths per state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeterminismStats {
    /// Resources in the input graph.
    pub resources: usize,
    /// Resources remaining after elimination.
    pub resources_after_elimination: usize,
    /// Paths in the bounded domain.
    pub paths: usize,
    /// Paths still tracked read-write after pruning (fig. 11a's metric).
    pub tracked_paths: usize,
    /// Metadata operations (`chown`/`chgrp`/`chmod`) in the analyzed
    /// programs (post-elimination, pre-pruning). Zero whenever the
    /// metadata model is off or nothing manages metadata.
    pub meta_ops: usize,
    /// Paths whose metadata the encoding tracks (see
    /// [`crate::domain::Domain::meta_paths`]).
    pub meta_tracked_paths: usize,
    /// Distinct sequences covered by ΦG, *including* ones whose suffix was
    /// answered by the state cache (so the figure is comparable across
    /// cache on/off, and `max_sequences` keeps its historical meaning:
    /// the size of the interleaving space the analysis accounted for).
    pub sequences_explored: usize,
    /// Of [`DeterminismStats::sequences_explored`], how many were covered
    /// via state-cache hits rather than evaluated symbolically.
    pub sequences_skipped: usize,
    /// Explorer state-cache hits (reconverged `(remaining, state)` pairs).
    pub state_cache_hits: usize,
    /// Distinct symbolic output states after content-hash dedup (the
    /// number of `states_differ` candidates actually considered).
    pub distinct_outputs: usize,
    /// Formula nodes allocated.
    pub formula_nodes: usize,
    /// CDCL conflicts in the persistent solver across all queries.
    pub solver_conflicts: u64,
    /// Literals propagated by the persistent solver.
    pub solver_propagations: u64,
    /// Clauses grounded into the persistent solver (each exactly once).
    pub grounded_clauses: u64,
    /// Formula nodes Tseitin-grounded (each exactly once).
    pub grounded_nodes: u64,
    /// Grounding requests answered by an already-grounded node.
    pub grounded_reused: u64,
}

impl DeterminismStats {
    /// The check's grounding statistics as the solver-layer type.
    pub fn grounding(&self) -> rehearsal_solver::GroundingStats {
        rehearsal_solver::GroundingStats {
            grounded_nodes: self.grounded_nodes,
            reused_nodes: self.grounded_reused,
            grounded_clauses: self.grounded_clauses,
        }
    }

    /// Fraction of grounding requests served by reuse across the check's
    /// incremental SAT queries (0.0 when nothing was grounded).
    pub fn grounding_reuse_ratio(&self) -> f64 {
        self.grounding().reuse_ratio()
    }

    /// Publishes the check's explorer counters into the current trace
    /// session's registry (no-op when tracing is inactive). The solver's
    /// own counters are published by
    /// [`rehearsal_solver::Ctx::publish_trace_metrics`], not here.
    pub fn publish_trace_metrics(&self) {
        if !rehearsal_trace::is_active() {
            return;
        }
        rehearsal_trace::counter_add("explore.sequences", self.sequences_explored as u64);
        rehearsal_trace::counter_add("explore.sequences_skipped", self.sequences_skipped as u64);
        rehearsal_trace::counter_add("explore.cache_hits", self.state_cache_hits as u64);
        rehearsal_trace::counter_add("explore.distinct_outputs", self.distinct_outputs as u64);
        rehearsal_trace::gauge_max("domain.paths", self.paths as i64);
        rehearsal_trace::gauge_max("domain.tracked_paths", self.tracked_paths as i64);
        rehearsal_trace::gauge_max("graph.resources", self.resources as i64);
        rehearsal_trace::gauge_max(
            "graph.resources_after_elimination",
            self.resources_after_elimination as i64,
        );
    }
}

/// A counterexample to determinism: one initial state, two valid orders,
/// two different outcomes.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The initial filesystem (restricted to the analysis domain).
    pub initial: FileSystem,
    /// The first resource order (indices into the graph's resources).
    pub order_a: Vec<usize>,
    /// The second resource order.
    pub order_b: Vec<usize>,
    /// Concrete outcome of replaying order A.
    pub outcome_a: Result<FileSystem, rehearsal_fs::ExecError>,
    /// Concrete outcome of replaying order B.
    pub outcome_b: Result<FileSystem, rehearsal_fs::ExecError>,
}

/// The verdict of the determinacy analysis.
#[derive(Debug, Clone)]
pub enum DeterminismReport {
    /// Every valid order produces the same outcome on every input.
    Deterministic(DeterminismStats),
    /// Two orders can differ; a replayed counterexample is attached.
    NonDeterministic(Box<Counterexample>, DeterminismStats),
}

impl DeterminismReport {
    /// Whether the verdict is "deterministic".
    pub fn is_deterministic(&self) -> bool {
        matches!(self, DeterminismReport::Deterministic(_))
    }

    /// The statistics either way.
    pub fn stats(&self) -> DeterminismStats {
        match self {
            DeterminismReport::Deterministic(s) => *s,
            DeterminismReport::NonDeterministic(_, s) => *s,
        }
    }
}

/// A resource graph lowered to FS programs: expressions plus dependency
/// edges (`(before, after)` index pairs), display names, and the source
/// span of each resource's declaration (for source-anchored findings).
#[derive(Debug, Clone, Default)]
pub struct FsGraph {
    /// One FS program per resource.
    pub exprs: Vec<Expr>,
    /// Dependency edges between indices.
    pub edges: BTreeSet<(usize, usize)>,
    /// Human-readable resource names (e.g. `Package[vim]`).
    pub names: Vec<String>,
    /// The manifest span each resource was declared at (parallel to
    /// `names`; dummy spans for synthesized graphs).
    pub spans: Vec<rehearsal_diag::Span>,
}

impl FsGraph {
    /// Builds a graph, checking edge bounds. Resources get dummy spans;
    /// use [`FsGraph::with_spans`] to attach declaration sites.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or names/exprs lengths
    /// differ.
    pub fn new(exprs: Vec<Expr>, edges: BTreeSet<(usize, usize)>, names: Vec<String>) -> FsGraph {
        assert_eq!(exprs.len(), names.len());
        for &(a, b) in &edges {
            assert!(a < exprs.len() && b < exprs.len());
        }
        let spans = vec![rehearsal_diag::Span::DUMMY; names.len()];
        FsGraph {
            exprs,
            edges,
            names,
            spans,
        }
    }

    /// Attaches per-resource declaration spans (parallel to `names`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn with_spans(mut self, spans: Vec<rehearsal_diag::Span>) -> FsGraph {
        assert_eq!(spans.len(), self.names.len());
        self.spans = spans;
        self
    }

    /// One resource's declaration span (dummy when unknown).
    pub fn span(&self, i: usize) -> rehearsal_diag::Span {
        self.spans
            .get(i)
            .copied()
            .unwrap_or(rehearsal_diag::Span::DUMMY)
    }

    fn successors(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.exprs.len()];
        for &(a, b) in &self.edges {
            out[a].push(b);
        }
        out
    }

    fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.exprs.len()];
        for &(a, b) in &self.edges {
            out[b].push(a);
        }
        out
    }

    fn ancestor_sets(&self) -> Vec<BTreeSet<usize>> {
        let preds = self.predecessors();
        let n = self.exprs.len();
        let mut out = vec![BTreeSet::new(); n];
        // Process in topological order so ancestor sets accumulate.
        let mut indeg: Vec<usize> = (0..n).map(|i| preds[i].len()).collect();
        let succs = self.successors();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::new();
        while let Some(i) = ready.pop() {
            order.push(i);
            for &j in &succs[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.push(j);
                }
            }
        }
        for &i in &order {
            let mut set = BTreeSet::new();
            for &p in &preds[i] {
                set.insert(p);
                set.extend(out[p].iter().copied());
            }
            out[i] = set;
        }
        out
    }

    /// Descendant sets (everything that must run after each node).
    fn descendant_sets(&self) -> Vec<BTreeSet<usize>> {
        let n = self.exprs.len();
        let anc = self.ancestor_sets();
        let mut out = vec![BTreeSet::new(); n];
        for (i, set) in anc.iter().enumerate() {
            for &a in set {
                out[a].insert(i);
            }
        }
        out
    }

    /// One valid topological order.
    pub fn topological_order(&self) -> Vec<usize> {
        let preds = self.predecessors();
        let succs = self.successors();
        let n = self.exprs.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| preds[i].len()).collect();
        let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::new();
        while let Some(&i) = ready.iter().next() {
            ready.remove(&i);
            order.push(i);
            for &j in &succs[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.insert(j);
                }
            }
        }
        assert_eq!(order.len(), n, "FsGraph must be acyclic");
        order
    }
}

/// The explorer's state-cache key: which resources remain, plus the exact
/// canonical identity of the symbolic state. Exact — no hash truncation —
/// so a hit is *guaranteed* to denote a previously completed subtree over
/// identical formulas.
#[derive(Clone, PartialEq, Eq, Hash)]
struct VisitKey {
    remaining: Bits,
    state: StateKey,
}

/// One node of the iterative DFS over permutations.
struct Frame {
    remaining: Bits,
    state: SymState,
    /// Branch choices (the whole fringe, or one element when POR commits).
    candidates: Vec<usize>,
    /// Next candidate to expand.
    next: usize,
    /// Whether this frame's latest candidate is currently on the prefix.
    pushed: bool,
    /// Entry work (budget check, cache probe, fringe computation) done.
    entered: bool,
    /// Sequence counter at entry, for the subtree's leaves-covered count.
    explored_at_entry: u64,
    /// The frame's cache key (None when the cache is disabled).
    key: Option<VisitKey>,
}

impl Frame {
    fn unentered(remaining: Bits, state: SymState) -> Frame {
        Frame {
            remaining,
            state,
            candidates: Vec::new(),
            next: 0,
            pushed: false,
            entered: false,
            explored_at_entry: 0,
            key: None,
        }
    }
}

/// A satisfiable early-exit check: output `which` differs from output 0.
struct EarlyExit {
    which: usize,
    model: ModelView,
}

/// The purely structural part of the POR explorer: predecessor masks,
/// descendant cones, and the pairwise commutativity mask. Depends only on
/// the graph (never on an encoder), so it is computed once and shared by
/// reference across every parallel worker.
pub(crate) struct ExploreShape {
    /// Per-node predecessor mask (for the word-parallel fringe test).
    preds: Vec<Bits>,
    /// Per-node descendant cone.
    descendants: Vec<Bits>,
    /// `commute_mask[e]`: the nodes whose access summaries commute with
    /// `e`'s (empty masks when the commutativity reduction is off).
    commute_mask: Vec<Bits>,
    /// Whether the partial-order reduction is on.
    commutativity: bool,
}

impl ExploreShape {
    pub(crate) fn new(
        graph: &FsGraph,
        commutativity: bool,
        oracle: Option<&crate::footprint::CommuteOracle>,
    ) -> ExploreShape {
        let n = graph.exprs.len();
        let to_bits = |sets: Vec<BTreeSet<usize>>| -> Vec<Bits> {
            sets.iter()
                .map(|s| {
                    let mut b = Bits::new(n);
                    for &i in s {
                        b.insert(i);
                    }
                    b
                })
                .collect()
        };
        let preds = {
            let mut out = vec![Bits::new(n); n];
            for &(a, b) in &graph.edges {
                out[b].insert(a);
            }
            out
        };
        let commute_mask = if commutativity {
            let summaries: Vec<Arc<AccessSummary>> =
                graph.exprs.iter().map(|&e| accesses(e)).collect();
            let mut masks = vec![Bits::new(n); n];
            for i in 0..n {
                for j in (i + 1)..n {
                    // `commutes` is symmetric (Lemma 4's conditions are).
                    // A baseline-seeded oracle short-circuits pairs whose
                    // digests it has seen; answers are identical either way.
                    if crate::footprint::commutes_with_oracle(
                        oracle,
                        graph.exprs[i],
                        graph.exprs[j],
                        &summaries[i],
                        &summaries[j],
                    ) {
                        masks[i].insert(j);
                        masks[j].insert(i);
                    }
                }
            }
            masks
        } else {
            vec![Bits::new(n); n]
        };
        ExploreShape {
            preds,
            descendants: to_bits(graph.descendant_sets()),
            commute_mask,
            commutativity,
        }
    }

    /// Whether fringe node `e` commutes with every remaining node that may
    /// run concurrently with it — every remaining node that is not `e`
    /// itself and not one of `e`'s descendants (its ancestors are gone:
    /// `e` is on the fringe). Word-parallel over the bitset words.
    fn all_concurrent_commute(&self, remaining: &Bits, e: usize) -> bool {
        let desc = self.descendants[e].words();
        let comm = self.commute_mask[e].words();
        for (w, &r) in remaining.words().iter().enumerate() {
            let mut concurrent = r & !desc[w] & !comm[w];
            if w == e / 64 {
                concurrent &= !(1u64 << (e % 64));
            }
            if concurrent != 0 {
                return false;
            }
        }
        true
    }

    /// The fringe of `remaining` (fig. 9a), reduced to a single committed
    /// node when partial-order reduction applies.
    pub(crate) fn branch_candidates(&self, remaining: &Bits) -> Vec<usize> {
        let fringe: Vec<usize> = remaining
            .iter()
            .filter(|&i| !self.preds[i].intersects(remaining))
            .collect();
        debug_assert!(!fringe.is_empty(), "acyclic graph always has a fringe");
        if self.commutativity {
            for &e in &fringe {
                if self.all_concurrent_commute(remaining, e) {
                    return vec![e];
                }
            }
        }
        fringe
    }
}

struct Explorer<'a> {
    graph: &'a FsGraph,
    shape: ExploreShape,
    options: &'a AnalysisOptions,
    deadline: Option<Instant>,
    /// One representative (sequence, final state) per *distinct* symbolic
    /// output state (content-hash dedup: structurally identical outputs
    /// collapse before any `states_differ` disjunct exists).
    outputs: Vec<(Vec<usize>, SymState)>,
    seen_outputs: HashMap<StateKey, usize>,
    /// Completed subtrees: `(remaining, state)` → sequences covered.
    visited: HashMap<VisitKey, u64>,
    /// Sequences covered, including cache-hit skips.
    explored: u64,
    /// Of `explored`, sequences covered via cache hits.
    skipped: u64,
    cache_hits: u64,
}

impl<'a> Explorer<'a> {
    fn new(
        graph: &'a FsGraph,
        options: &'a AnalysisOptions,
        deadline: Option<Instant>,
        oracle: Option<&crate::footprint::CommuteOracle>,
    ) -> Self {
        Explorer {
            graph,
            shape: ExploreShape::new(graph, options.commutativity, oracle),
            options,
            deadline,
            outputs: Vec::new(),
            seen_outputs: HashMap::new(),
            visited: HashMap::new(),
            explored: 0,
            skipped: 0,
            cache_hits: 0,
        }
    }

    fn check_budget(&self) -> Result<(), AnalysisAborted> {
        if let Some(token) = &self.options.cancel {
            if token.is_cancelled() {
                return Err(AnalysisAborted {
                    reason: "cancelled during permutation exploration".to_string(),
                });
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                return Err(AnalysisAborted {
                    reason: "timeout during permutation exploration".to_string(),
                });
            }
        }
        Ok(())
    }

    fn check_sequence_cap(&self) -> Result<(), AnalysisAborted> {
        if self.explored > self.options.max_sequences as u64 {
            return Err(AnalysisAborted {
                reason: format!(
                    "more than {} sequences explored",
                    self.options.max_sequences
                ),
            });
        }
        Ok(())
    }

    /// Records a completed sequence. New distinct outputs are immediately
    /// checked against the first on the incremental solver (early exit).
    fn record_leaf(
        &mut self,
        enc: &mut Encoder,
        state: SymState,
        prefix: &[usize],
    ) -> Result<Option<EarlyExit>, AnalysisAborted> {
        self.explored += 1;
        self.check_sequence_cap()?;
        let key = state.key();
        if self.seen_outputs.contains_key(&key) {
            return Ok(None);
        }
        let idx = self.outputs.len();
        self.seen_outputs.insert(key, idx);
        self.outputs.push((prefix.to_vec(), state));
        if self.options.early_exit && idx > 0 {
            let d = {
                let (head, tail) = self.outputs.split_at(idx);
                enc.states_differ(&head[0].1, &tail[0].1)
            };
            if !enc.ctx.is_false(d) {
                match enc
                    .ctx
                    .solve_assuming(d, self.deadline, interrupt_flag(self.options))
                {
                    Ok(None) => {}
                    Ok(Some(model)) => return Ok(Some(EarlyExit { which: idx, model })),
                    Err(_) => return Err(solve_abort_reason(self.options)),
                }
            }
        }
        Ok(None)
    }

    /// ΦG with partial-order reduction (fig. 9a) as an explicit-stack DFS:
    /// no recursion (deep graphs cannot overflow the thread stack), bitset
    /// fringe/commute computation, state-cache skipping of reconverged
    /// prefixes, and incremental early-exit NONDET checks at the leaves.
    fn run(
        &mut self,
        enc: &mut Encoder,
        initial: SymState,
    ) -> Result<Option<EarlyExit>, AnalysisAborted> {
        let n = self.graph.exprs.len();
        let mut prefix: Vec<usize> = Vec::with_capacity(n);
        let mut stack: Vec<Frame> = Vec::with_capacity(n + 1);
        stack.push(Frame::unentered(Bits::full(n), initial));
        // Sampled trace events: one per 4096 loop iterations, so a hot DFS
        // costs a local increment + branch when tracing is off and a
        // bounded number of records when it is on.
        let mut iterations: u64 = 0;

        // One closure-free helper: after popping a child, un-push the
        // parent's prefix element.
        fn return_to_parent(stack: &mut [Frame], prefix: &mut Vec<usize>) {
            if let Some(parent) = stack.last_mut() {
                if parent.pushed {
                    prefix.pop();
                    parent.pushed = false;
                }
            }
        }

        while !stack.is_empty() {
            iterations += 1;
            if iterations & 0xFFF == 0 {
                rehearsal_trace::event("explore.frames.4k", "core");
            }
            // Entry work for a frame seen for the first time.
            let top = stack.last_mut().expect("non-empty stack");
            if !top.entered {
                top.entered = true;
                self.check_budget()?;
                if top.remaining.is_empty() {
                    let frame = stack.pop().expect("frame on stack");
                    if let Some(exit) = self.record_leaf(enc, frame.state, &prefix)? {
                        return Ok(Some(exit));
                    }
                    return_to_parent(&mut stack, &mut prefix);
                    continue;
                }
                if self.options.state_cache {
                    let key = VisitKey {
                        remaining: top.remaining.clone(),
                        state: top.state.key(),
                    };
                    if let Some(&count) = self.visited.get(&key) {
                        self.cache_hits += 1;
                        self.skipped += count;
                        self.explored += count;
                        self.check_sequence_cap()?;
                        stack.pop();
                        return_to_parent(&mut stack, &mut prefix);
                        continue;
                    }
                    top.key = Some(key);
                }
                top.explored_at_entry = self.explored;
                let candidates = self.shape.branch_candidates(&top.remaining);
                let top = stack.last_mut().expect("non-empty stack");
                top.candidates = candidates;
            }

            // Advance the top frame to its next branch, or retire it.
            let top = stack.last_mut().expect("non-empty stack");
            if top.next < top.candidates.len() {
                let e = top.candidates[top.next];
                top.next += 1;
                let next_state = enc.eval_expr(self.graph.exprs[e], &top.state);
                let rest = top.remaining.without(e);
                top.pushed = true;
                prefix.push(e);
                stack.push(Frame::unentered(rest, next_state));
            } else {
                let frame = stack.pop().expect("frame on stack");
                if let Some(key) = frame.key {
                    self.visited
                        .insert(key, self.explored - frame.explored_at_entry);
                }
                return_to_parent(&mut stack, &mut prefix);
            }
        }
        Ok(None)
    }
}

/// Checks whether an [`FsGraph`] is deterministic (Theorem 1).
///
/// # Errors
///
/// Returns [`AnalysisAborted`] on timeout or sequence explosion.
pub fn check_determinism(
    graph: &FsGraph,
    options: &AnalysisOptions,
) -> Result<DeterminismReport, AnalysisAborted> {
    check_determinism_with_oracle(graph, options, None)
}

/// [`check_determinism`] with an optional
/// [`CommuteOracle`](crate::footprint::CommuteOracle) that
/// short-circuits pairwise commutativity checks (both in elimination and
/// in the explorer's partial-order-reduction mask) with digest-keyed
/// results from a prior run. Because the oracle only memoizes a pure
/// structural function, the verdict is bit-identical to an oracle-free
/// run; only wall time and the oracle's reuse counters change.
///
/// # Errors
///
/// Returns [`AnalysisAborted`] on timeout or sequence explosion.
pub fn check_determinism_with_oracle(
    graph: &FsGraph,
    options: &AnalysisOptions,
    oracle: Option<&crate::footprint::CommuteOracle>,
) -> Result<DeterminismReport, AnalysisAborted> {
    let deadline = options.timeout.map(|t| Instant::now() + t);
    let n = graph.exprs.len();
    let summaries: Vec<Arc<AccessSummary>> = graph.exprs.iter().map(|&e| accesses(e)).collect();

    // 1. Resource elimination (§4.4). Elimination is justified by the
    //    commutativity check, so disabling commutativity disables it too.
    let alive: BTreeSet<usize> = {
        let _span = rehearsal_trace::span_cat("eliminate", "core");
        if options.elimination && options.commutativity {
            crate::elimination::surviving_nodes_with(
                &graph.exprs,
                &summaries,
                &graph.successors(),
                &graph.ancestor_sets(),
                oracle,
            )
        } else {
            (0..n).collect()
        }
    };
    let sub = subgraph(graph, &alive);

    // 2. Path pruning (§4.4): definitive writes by exactly one resource,
    //    unobserved by the rest, become read-only residues.
    let (pruned, read_only) = {
        let _span = rehearsal_trace::span_cat("prune", "core");
        if options.pruning {
            prune_graph(&sub)
        } else {
            (sub.clone(), BTreeSet::new())
        }
    };

    // 3+4. Encode, explore (bitset POR + state cache + early exit), and
    //    decide. `--threads 1` runs the exact historical sequential loop
    //    (identical traversal order and statistics); `--threads N` splits
    //    the interleaving tree into prefix subtrees explored by
    //    work-stealing workers (see [`crate::parallel`]) with a shared
    //    state cache and per-worker solver contexts. Both paths reduce a
    //    divergence to the same evidence: a concrete initial filesystem
    //    plus two pruned-graph orders.
    let explore_span = rehearsal_trace::span_cat("explore", "core");
    let domain = Domain::of_exprs(pruned.exprs.iter().copied());
    let paths = domain.len();
    let meta_tracked_paths = domain.meta_paths.len();
    let mut stats = DeterminismStats {
        resources: n,
        resources_after_elimination: alive.len(),
        paths,
        meta_ops: pruned.exprs.iter().map(|&e| count_meta_ops(e)).sum(),
        meta_tracked_paths,
        ..DeterminismStats::default()
    };

    let divergence: Option<(FileSystem, Vec<usize>, Vec<usize>)> = if options.threads <= 1 {
        let mut enc = Encoder::new(domain);
        for &p in &read_only {
            enc.mark_read_only(p);
        }
        let initial = enc.initial_state();
        let mut explorer = Explorer::new(&pruned, options, deadline, oracle);
        let early = explorer.run(&mut enc, initial.clone())?;
        let outputs = explorer.outputs;

        stats.tracked_paths = enc.tracked_paths();
        stats.sequences_explored = explorer.explored as usize;
        stats.sequences_skipped = explorer.skipped as usize;
        stats.state_cache_hits = explorer.cache_hits as usize;
        stats.distinct_outputs = outputs.len();

        // All outputs equal to the first ⟺ deterministic. With early exit
        // on, every distinct output was already checked incrementally as
        // it was found; otherwise fall back to one monolithic query.
        let divergence: Option<(usize, ModelView)> = match early {
            Some(exit) => Some((exit.which, exit.model)),
            None if options.early_exit || outputs.len() <= 1 => None,
            None => {
                let _span = rehearsal_trace::span_cat("solve.final", "core");
                let first_state = &outputs[0].1;
                let mut disjuncts = Vec::new();
                for (_, other_state) in &outputs[1..] {
                    let d = enc.states_differ(first_state, other_state);
                    disjuncts.push(d);
                }
                let any_diff = enc.ctx.or(disjuncts.clone());
                let solved = enc
                    .ctx
                    .solve_with_budget(any_diff, deadline, interrupt_flag(options))
                    .map_err(|_| solve_abort_reason(options))?;
                solved.map(|model| {
                    // Find which alternative differed.
                    let mut which = 1;
                    for (k, d) in disjuncts.iter().enumerate() {
                        if model.formula_value_in(&enc.ctx, *d) {
                            which = k + 1;
                            break;
                        }
                    }
                    (which, model)
                })
            }
        };

        stats.formula_nodes = enc.ctx.stats().formula_nodes;
        let solver = enc.ctx.solver_stats();
        stats.solver_conflicts = solver.conflicts;
        stats.solver_propagations = solver.propagations;
        let grounding = enc.ctx.grounding_stats();
        stats.grounded_clauses = grounding.grounded_clauses;
        stats.grounded_nodes = grounding.grounded_nodes;
        stats.grounded_reused = grounding.reused_nodes;
        // Phase boundary: the hot loops above kept local counters; the
        // registry sees them exactly once, here.
        enc.ctx.publish_trace_metrics();

        divergence.map(|(which, model)| {
            let init_fs = enc.decode_state(&model, &initial);
            (init_fs, outputs[0].0.clone(), outputs[which].0.clone())
        })
    } else {
        let shape = ExploreShape::new(&pruned, options.commutativity, oracle);
        let outcome = crate::parallel::explore_parallel(
            &pruned, options, deadline, &shape, &domain, &read_only,
        )?;
        stats.tracked_paths = outcome.tracked_paths;
        stats.sequences_explored = outcome.explored as usize;
        stats.sequences_skipped = outcome.skipped as usize;
        stats.state_cache_hits = outcome.cache_hits as usize;
        stats.distinct_outputs = outcome.distinct_outputs;
        stats.formula_nodes = outcome.ctx.formula_nodes;
        stats.solver_conflicts = outcome.solver_conflicts;
        stats.solver_propagations = outcome.solver_propagations;
        stats.grounded_clauses = outcome.grounding.grounded_clauses;
        stats.grounded_nodes = outcome.grounding.grounded_nodes;
        stats.grounded_reused = outcome.grounding.reused_nodes;
        outcome.publish_trace_metrics();
        outcome.divergence
    };
    drop(explore_span);

    stats.publish_trace_metrics();
    rehearsal_fs::publish_arena_metrics();

    match divergence {
        None => Ok(DeterminismReport::Deterministic(stats)),
        Some((init_fs, seq_a, seq_b)) => {
            // Map pruned-graph indices back to original indices and append
            // the eliminated resources (which form an upward-closed set of
            // sinks) in one fixed topological order. Elimination's
            // `e1; e ≡ e2; e ⟺ e1 ≡ e2` argument can be fooled when `e`
            // errs on every distinguishing state, so a NONDET verdict on
            // the reduced graph must be validated against the full graph.
            let back: Vec<usize> = alive.iter().copied().collect();
            let eliminated: Vec<usize> = eliminated_topo_order(graph, &alive);
            let full_order = |seq: &[usize]| -> Vec<usize> {
                seq.iter()
                    .map(|&i| back[i])
                    .chain(eliminated.iter().copied())
                    .collect()
            };
            let order_a = full_order(&seq_a);
            let order_b = full_order(&seq_b);
            let outcome_a = replay(graph, &order_a, &init_fs);
            let outcome_b = replay(graph, &order_b, &init_fs);
            if outcome_a == outcome_b && alive.len() != n {
                // The divergence was masked by an eliminated resource:
                // re-run exactly, without elimination.
                let mut exact = options.clone();
                exact.elimination = false;
                if let Some(d) = deadline {
                    exact.timeout = Some(d.saturating_duration_since(Instant::now()));
                }
                return check_determinism_with_oracle(graph, &exact, oracle);
            }
            let cex = Counterexample {
                initial: init_fs,
                order_a,
                order_b,
                outcome_a,
                outcome_b,
            };
            Ok(DeterminismReport::NonDeterministic(Box::new(cex), stats))
        }
    }
}

/// Counts `chown`/`chgrp`/`chmod` occurrences in an expression's text
/// (each textual occurrence counts, matching how `size()` measures
/// programs).
fn count_meta_ops(e: Expr) -> usize {
    match e.node() {
        rehearsal_fs::ExprNode::ChMeta(_, _, _) => 1,
        rehearsal_fs::ExprNode::Seq(a, b) | rehearsal_fs::ExprNode::If(_, a, b) => {
            count_meta_ops(a) + count_meta_ops(b)
        }
        _ => 0,
    }
}

/// Topological order of the eliminated (non-alive) nodes in the full
/// graph. Elimination only ever removes nodes whose surviving successors
/// are all eliminated too, so appending this order after any valid order
/// of the alive nodes yields a valid full order.
fn eliminated_topo_order(graph: &FsGraph, alive: &BTreeSet<usize>) -> Vec<usize> {
    graph
        .topological_order()
        .into_iter()
        .filter(|i| !alive.contains(i))
        .collect()
}

/// Runs the (pruned) programs concretely in the given order.
fn replay(
    graph: &FsGraph,
    order: &[usize],
    init: &FileSystem,
) -> Result<FileSystem, rehearsal_fs::ExecError> {
    let mut fs = init.clone();
    for &i in order {
        fs = concrete_eval(graph.exprs[i], &fs)?;
    }
    Ok(fs)
}

/// The induced subgraph on `alive`, with indices renumbered.
fn subgraph(graph: &FsGraph, alive: &BTreeSet<usize>) -> FsGraph {
    let index: Vec<usize> = alive.iter().copied().collect();
    let renumber: std::collections::HashMap<usize, usize> = index
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    FsGraph {
        exprs: index.iter().map(|&i| graph.exprs[i]).collect(),
        names: index.iter().map(|&i| graph.names[i].clone()).collect(),
        edges: graph
            .edges
            .iter()
            .filter(|(a, b)| alive.contains(a) && alive.contains(b))
            .map(|&(a, b)| (renumber[&a], renumber[&b]))
            .collect(),
        spans: index.iter().map(|&i| graph.span(i)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::{Content, FsPath, Pred};

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn file(path: &str, content: &str) -> Expr {
        Expr::create_file(p(path), Content::intern(content))
    }

    fn graph(exprs: Vec<Expr>, edges: &[(usize, usize)]) -> FsGraph {
        let names = (0..exprs.len()).map(|i| format!("r{i}")).collect();
        FsGraph::new(exprs, edges.iter().copied().collect(), names)
    }

    #[test]
    fn empty_graph_is_deterministic() {
        let g = graph(vec![], &[]);
        let r = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        assert!(r.is_deterministic());
    }

    #[test]
    fn single_resource_is_deterministic() {
        let g = graph(vec![file("/a", "x")], &[]);
        let r = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        assert!(r.is_deterministic());
    }

    #[test]
    fn unordered_conflicting_writes_are_nondeterministic() {
        // Two unguarded writes to the same file: one errors depending on
        // order... both orders err on every input where either errs; on an
        // input where /f is absent, first succeeds and second always errs.
        // So every order errs — deterministic! Use overwrite-style writes
        // to create a genuine divergence.
        let w = |c: &str| {
            Expr::if_(
                Pred::does_not_exist(p("/f")),
                Expr::create_file(p("/f"), Content::intern(c)),
                Expr::SKIP,
            )
        };
        let g = graph(vec![w("one"), w("two")], &[]);
        let r = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        match r {
            DeterminismReport::NonDeterministic(cex, _) => {
                assert_ne!(cex.outcome_a, cex.outcome_b, "replay confirms divergence");
                assert_ne!(cex.order_a, cex.order_b);
            }
            DeterminismReport::Deterministic(_) => panic!("should be nondeterministic"),
        }
    }

    #[test]
    fn ordering_edge_fixes_nondeterminism() {
        let w = |c: &str| {
            Expr::if_(
                Pred::does_not_exist(p("/f")),
                Expr::create_file(p("/f"), Content::intern(c)),
                Expr::SKIP,
            )
        };
        let g = graph(vec![w("one"), w("two")], &[(0, 1)]);
        let r = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        assert!(r.is_deterministic(), "total order leaves one permutation");
    }

    #[test]
    fn error_nondeterminism_is_detected() {
        // Resource A: creates /dir; resource B: creates /dir/f (needs the
        // dir). Unordered: B-first errs, A-first then B succeeds.
        let a = Expr::mkdir(p("/dir"));
        let b = file("/dir/f", "x");
        let g = graph(vec![a, b], &[]);
        let r = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        assert!(!r.is_deterministic());
        if let DeterminismReport::NonDeterministic(cex, _) = r {
            assert_ne!(
                cex.outcome_a.is_ok(),
                cex.outcome_b.is_ok(),
                "one order errs, the other succeeds"
            );
        }
    }

    #[test]
    fn commuting_resources_explore_one_sequence() {
        let g = graph(vec![file("/a", "1"), file("/b", "2"), file("/c", "3")], &[]);
        let opts = AnalysisOptions {
            elimination: false, // keep them all so exploration runs
            ..AnalysisOptions::default()
        };
        let r = check_determinism(&g, &opts).unwrap();
        assert!(r.is_deterministic());
        assert_eq!(
            r.stats().sequences_explored,
            1,
            "POR collapses to one order"
        );
    }

    #[test]
    fn naive_mode_explores_all_permutations() {
        let g = graph(vec![file("/a", "1"), file("/b", "2"), file("/c", "3")], &[]);
        let r = check_determinism(&g, &AnalysisOptions::naive()).unwrap();
        assert!(r.is_deterministic());
        assert_eq!(r.stats().sequences_explored, 6, "3! permutations");
    }

    #[test]
    fn elimination_removes_isolated_resources() {
        let g = graph(vec![file("/a", "1"), file("/b", "2")], &[]);
        let r = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        assert!(r.is_deterministic());
        assert_eq!(r.stats().resources_after_elimination, 0);
    }

    #[test]
    fn diamond_dependencies_respected() {
        // a -> b, a -> c, b -> d, c -> d; b and c both write /shared with
        // different contents — nondeterministic.
        let a = Expr::mkdir(p("/d"));
        let b = Expr::if_(
            Pred::does_not_exist(p("/d/shared")),
            Expr::create_file(p("/d/shared"), Content::intern("from-b")),
            Expr::SKIP,
        );
        let c = Expr::if_(
            Pred::does_not_exist(p("/d/shared")),
            Expr::create_file(p("/d/shared"), Content::intern("from-c")),
            Expr::SKIP,
        );
        let d = Expr::if_(Pred::is_file(p("/d/shared")), Expr::SKIP, Expr::ERROR);
        let g = graph(vec![a, b, c, d], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let r = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        assert!(!r.is_deterministic());
    }

    #[test]
    fn sequence_cap_aborts() {
        let exprs: Vec<Expr> = (0..6)
            .map(|i| {
                Expr::if_(
                    Pred::does_not_exist(p("/f")),
                    Expr::create_file(p("/f"), Content::intern(&format!("w{i}"))),
                    Expr::SKIP,
                )
            })
            .collect();
        let g = graph(exprs, &[]);
        let opts = AnalysisOptions {
            max_sequences: 10,
            ..AnalysisOptions::naive()
        };
        let err = check_determinism(&g, &opts).unwrap_err();
        assert!(err.reason.contains("sequences"));
    }

    #[test]
    fn timeout_aborts() {
        let exprs: Vec<Expr> = (0..7)
            .map(|i| {
                Expr::if_(
                    Pred::does_not_exist(p("/f")),
                    Expr::create_file(p("/f"), Content::intern(&format!("t{i}"))),
                    Expr::SKIP,
                )
            })
            .collect();
        let g = graph(exprs, &[]);
        let opts = AnalysisOptions::naive().with_timeout(Duration::from_millis(1));
        // Either it finishes impossibly fast or it reports a timeout; with
        // 7! = 5040 sequences the timeout fires in practice.
        if let Err(e) = check_determinism(&g, &opts) {
            assert!(e.reason.contains("timeout"));
        } // an Ok on an extremely fast machine is not a failure
    }

    #[test]
    fn metadata_race_is_nondeterministic_and_fixable() {
        // Two resources ensure the same file with the same content but
        // different modes: invisible to the metadata-free model, a genuine
        // race in the metadata-aware one.
        let f = p("/www/index");
        let c = Content::intern("hello");
        let ensure = Expr::if_then(Pred::is_dir(p("/www")).not(), Expr::mkdir(p("/www")));
        let write = Expr::if_(
            Pred::does_not_exist(f),
            Expr::create_file(f, c),
            Expr::if_(
                Pred::is_file(f),
                Expr::rm(f).seq(Expr::create_file(f, c)),
                Expr::ERROR,
            ),
        );
        let res = |mode: &str| ensure.seq(write).seq(Expr::chmod(f, Content::intern(mode)));
        let g = graph(vec![res("0644"), res("0755")], &[]);
        let r = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        match r {
            DeterminismReport::NonDeterministic(cex, stats) => {
                assert!(stats.meta_ops >= 2);
                assert_eq!(stats.meta_tracked_paths, 1);
                // Both orders succeed; only the mode differs — and the
                // replay (which compares metadata) confirms it.
                assert!(cex.outcome_a.is_ok() && cex.outcome_b.is_ok());
                assert_ne!(cex.outcome_a, cex.outcome_b);
                let ma = cex.outcome_a.as_ref().unwrap().meta(f).unwrap();
                let mb = cex.outcome_b.as_ref().unwrap().meta(f).unwrap();
                assert_ne!(ma.mode, mb.mode, "the divergence is the mode");
            }
            DeterminismReport::Deterministic(_) => panic!("mode race must be caught"),
        }
        // An ordering edge fixes it.
        let g2 = graph(vec![res("0644"), res("0755")], &[(0, 1)]);
        let r2 = check_determinism(&g2, &AnalysisOptions::default()).unwrap();
        assert!(r2.is_deterministic());
    }

    #[test]
    fn parallel_verdict_and_invariant_counters_match_sequential() {
        // A deterministic graph with a genuinely branching interleaving
        // space: naive mode keeps all 4! = 24 orders live.
        let g = graph(
            vec![
                file("/a", "1"),
                file("/b", "2"),
                file("/c", "3"),
                file("/d", "4"),
            ],
            &[],
        );
        let seq = check_determinism(&g, &AnalysisOptions::naive()).unwrap();
        assert!(seq.is_deterministic());
        let s1 = seq.stats();
        assert_eq!(s1.sequences_explored, 24);
        for threads in [2, 4, 8] {
            let par =
                check_determinism(&g, &AnalysisOptions::naive().with_threads(threads)).unwrap();
            assert!(
                par.is_deterministic(),
                "verdict invariant at {threads} threads"
            );
            let sp = par.stats();
            // The exact counters: every leaf is accounted exactly once no
            // matter how the subtrees were scheduled.
            assert_eq!(sp.sequences_explored, s1.sequences_explored);
            assert_eq!(sp.distinct_outputs, s1.distinct_outputs);
            assert_eq!(sp.resources, s1.resources);
            assert_eq!(
                sp.resources_after_elimination,
                s1.resources_after_elimination
            );
            assert_eq!(sp.paths, s1.paths);
            assert_eq!(sp.tracked_paths, s1.tracked_paths);
        }
    }

    #[test]
    fn parallel_nondeterminism_yields_replayable_counterexample() {
        let a = Expr::mkdir(p("/dir"));
        let b = file("/dir/f", "x");
        let g = graph(vec![a, b], &[]);
        for threads in [2, 4] {
            let opts = AnalysisOptions::default().with_threads(threads);
            match check_determinism(&g, &opts).unwrap() {
                DeterminismReport::NonDeterministic(cex, _) => {
                    assert_ne!(cex.outcome_a, cex.outcome_b, "replay confirms divergence");
                }
                DeterminismReport::Deterministic(_) => {
                    panic!("parallel explorer must find the race at {threads} threads")
                }
            }
        }
    }

    #[test]
    fn parallel_sequence_cap_aborts() {
        let exprs: Vec<Expr> = (0..6)
            .map(|i| {
                Expr::if_(
                    Pred::does_not_exist(p("/f")),
                    Expr::create_file(p("/f"), Content::intern(&format!("w{i}"))),
                    Expr::SKIP,
                )
            })
            .collect();
        let g = graph(exprs, &[]);
        let opts = AnalysisOptions {
            max_sequences: 10,
            ..AnalysisOptions::naive()
        }
        .with_threads(4);
        let err = check_determinism(&g, &opts).unwrap_err();
        assert!(err.reason.contains("sequences"));
    }

    #[test]
    fn child_tokens_observe_the_parent_but_not_vice_versa() {
        let drain = CancelToken::new();
        let request = drain.child();
        assert!(!request.is_cancelled());
        // Child cancellation stays local: the drain token (and a sibling
        // request) keep running.
        request.cancel();
        assert!(request.is_cancelled());
        assert!(!drain.is_cancelled());
        let sibling = drain.child();
        assert!(!sibling.is_cancelled());
        // Parent cancellation reaches every descendant, and propagates
        // into the child's own flag (the one the solver polls).
        drain.cancel();
        assert!(sibling.is_cancelled());
        assert!(sibling.is_cancelled(), "sticky after propagation");
        let grandchild = sibling.child();
        assert!(grandchild.is_cancelled());
    }

    #[test]
    fn counterexample_replay_is_confirmed() {
        let a = Expr::mkdir(p("/dir"));
        let b = file("/dir/f", "x");
        let g = graph(vec![a, b], &[]);
        if let DeterminismReport::NonDeterministic(cex, _) =
            check_determinism(&g, &AnalysisOptions::default()).unwrap()
        {
            // The initial state plus the two orders must genuinely diverge
            // when run through the concrete evaluator.
            assert_ne!(cex.outcome_a, cex.outcome_b);
        } else {
            panic!("expected nondeterminism");
        }
    }
}
