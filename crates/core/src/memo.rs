//! Process-wide, id-keyed memo tables for structure-dependent analyses.
//!
//! Hash-consed [`Expr`] ids are stable for the process lifetime and
//! identify structure exactly, so any analysis that depends only on an
//! expression's structure can be cached here once and shared (as an
//! `Arc`) with every later caller — across analysis sessions and fleet
//! worker threads. Like the arena itself, tables are append-only; there
//! is nothing to invalidate. Memory therefore grows with the number of
//! *distinct* expressions ever analyzed (summaries are O(paths) each):
//! right for batch fleet runs and repeated analyses of the same manifests,
//! while a very long-lived service processing an unbounded stream of novel
//! manifests should recycle its process (or grow an eviction policy here
//! and in the arena together).
//!
//! Tables are backed by [`rehearsal_sync::ShardedMap`], so concurrent
//! probes from explorer threads and fleet workers stripe across
//! independent locks instead of serializing on one `Mutex`.

use rehearsal_fs::Expr;
use rehearsal_sync::ShardedMap;
use std::sync::{Arc, OnceLock};

/// A lazily-initialized, thread-safe `Expr → Arc<T>` memo table.
///
/// Each table carries the trace-counter names its hits and misses are
/// recorded under (e.g. `memo.accesses.hits`), so the registry shows
/// how much structural analysis was shared vs. computed.
pub(crate) struct ExprMemo<T> {
    table: OnceLock<ShardedMap<Expr, Arc<T>>>,
    hit_metric: &'static str,
    miss_metric: &'static str,
}

impl<T> ExprMemo<T> {
    /// An empty table (usable in `static` position) whose lookups are
    /// counted under the two given trace-counter names.
    pub(crate) const fn new(hit_metric: &'static str, miss_metric: &'static str) -> ExprMemo<T> {
        ExprMemo {
            table: OnceLock::new(),
            hit_metric,
            miss_metric,
        }
    }

    /// The memoized value for `e`, computing and caching it on first use.
    ///
    /// No lock is held during `compute`, so two threads may race to fill
    /// the same entry; both compute the same structural fact and the
    /// first insert wins.
    pub(crate) fn get_or_compute(&self, e: Expr, compute: impl FnOnce() -> T) -> Arc<T> {
        let table = self.table.get_or_init(ShardedMap::new);
        let (value, hit) = table.get_or_insert_with(e, || Arc::new(compute()));
        if hit {
            rehearsal_trace::counter_add(self.hit_metric, 1);
        } else {
            rehearsal_trace::counter_add(self.miss_metric, 1);
        }
        value
    }
}
