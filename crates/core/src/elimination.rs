//! Resource elimination (paper §4.4): drop resources whose effects no
//! later-running resource can observe.
//!
//! If a resource commutes with every resource that may run after it, every
//! permutation can be rewritten so this resource runs last, and
//! `e1; e ≡ e2; e ⟺ e1 ≡ e2` lets us delete it without changing the
//! determinism verdict. Working from the fringe (resources nothing depends
//! on) inward lets one deletion unlock the next — the strategy the paper
//! reports as most effective.

use crate::commutativity::{commutes, AccessSummary};
use crate::footprint::CommuteOracle;
use rehearsal_fs::Expr;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Computes the set of node indices that survive elimination.
///
/// `summaries[i]` is the (shared, memoized) access summary of node `i`;
/// `successors` / `ancestors` describe the dependency DAG (`successors[i]`
/// = nodes that must run after `i`).
pub fn surviving_nodes(
    summaries: &[Arc<AccessSummary>],
    successors: &[Vec<usize>],
    ancestors: &[BTreeSet<usize>],
) -> BTreeSet<usize> {
    surviving(None, summaries, successors, ancestors, None)
}

/// [`surviving_nodes`] with an optional [`CommuteOracle`] reusing
/// digest-keyed pair verdicts from a prior run (`exprs` supplies the
/// programs to digest). Answers are identical with or without the oracle;
/// only its reuse counters observe the difference.
pub fn surviving_nodes_with(
    exprs: &[Expr],
    summaries: &[Arc<AccessSummary>],
    successors: &[Vec<usize>],
    ancestors: &[BTreeSet<usize>],
    oracle: Option<&CommuteOracle>,
) -> BTreeSet<usize> {
    surviving(Some(exprs), summaries, successors, ancestors, oracle)
}

fn surviving(
    exprs: Option<&[Expr]>,
    summaries: &[Arc<AccessSummary>],
    successors: &[Vec<usize>],
    ancestors: &[BTreeSet<usize>],
    oracle: Option<&CommuteOracle>,
) -> BTreeSet<usize> {
    let commutes_ij = |i: usize, j: usize| -> bool {
        match (exprs, oracle) {
            (Some(es), Some(_)) => crate::footprint::commutes_with_oracle(
                oracle,
                es[i],
                es[j],
                &summaries[i],
                &summaries[j],
            ),
            _ => commutes(&summaries[i], &summaries[j]),
        }
    };
    let n = summaries.len();
    let mut alive: BTreeSet<usize> = (0..n).collect();
    loop {
        let mut removed = None;
        'candidates: for &i in &alive {
            // Only fringe resources: nothing alive depends on i.
            if successors[i].iter().any(|s| alive.contains(s)) {
                continue;
            }
            // i must commute with every alive resource that may run after
            // it — everything except its ancestors.
            for &j in &alive {
                if j == i || ancestors[i].contains(&j) {
                    continue;
                }
                if !commutes_ij(i, j) {
                    continue 'candidates;
                }
            }
            removed = Some(i);
            break;
        }
        match removed {
            Some(i) => {
                alive.remove(&i);
            }
            None => return alive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commutativity::accesses;
    use rehearsal_fs::{Content, Expr, FsPath, Pred};

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn file(path: &str, content: &str) -> Expr {
        Expr::create_file(p(path), Content::intern(content))
    }

    type TestGraph = (
        Vec<Arc<AccessSummary>>,
        Vec<Vec<usize>>,
        Vec<BTreeSet<usize>>,
    );

    fn graph(exprs: &[Expr], edges: &[(usize, usize)]) -> TestGraph {
        let n = exprs.len();
        let summaries: Vec<Arc<AccessSummary>> = exprs.iter().map(|&e| accesses(e)).collect();
        let mut successors = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for &(a, b) in edges {
            successors[a].push(b);
            preds[b].push(a);
        }
        let mut ancestors: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for i in 0..n {
            let mut stack: Vec<usize> = preds[i].clone();
            while let Some(j) = stack.pop() {
                if ancestors[i].insert(j) {
                    stack.extend(preds[j].iter().copied());
                }
            }
        }
        (summaries, successors, ancestors)
    }

    #[test]
    fn independent_resources_all_eliminated() {
        let exprs = vec![file("/a", "1"), file("/b", "2"), file("/c", "3")];
        let (s, succ, anc) = graph(&exprs, &[]);
        assert!(surviving_nodes(&s, &succ, &anc).is_empty());
    }

    #[test]
    fn conflicting_pair_survives() {
        let exprs = vec![file("/a", "1"), file("/a", "2"), file("/b", "3")];
        let (s, succ, anc) = graph(&exprs, &[]);
        let alive = surviving_nodes(&s, &succ, &anc);
        assert_eq!(
            alive,
            [0, 1].into_iter().collect(),
            "/b eliminated, conflict kept"
        );
    }

    #[test]
    fn elimination_cascades_through_chains() {
        // a -> b -> c where each writes its own path: c eliminated first,
        // then b, then a (the paper's cascade).
        let exprs = vec![file("/a", "1"), file("/b", "2"), file("/c", "3")];
        let (s, succ, anc) = graph(&exprs, &[(0, 1), (1, 2)]);
        assert!(surviving_nodes(&s, &succ, &anc).is_empty());
    }

    #[test]
    fn dependent_conflict_keeps_chain() {
        // a writes /f; b (after a) reads /f; c also writes /f unordered.
        let a = file("/f", "1");
        let b = Expr::if_(Pred::is_file(p("/f")), Expr::SKIP, Expr::ERROR);
        let c = file("/f", "2");
        let (s, succ, anc) = graph(&[a, b, c], &[(0, 1)]);
        let alive = surviving_nodes(&s, &succ, &anc);
        // Nothing can be eliminated: b conflicts with c; a conflicts with
        // b (non-ancestor direction) and c.
        assert_eq!(alive.len(), 3);
    }

    #[test]
    fn fringe_restriction_matters() {
        // b depends on a; a conflicts with nothing else, but a is not on
        // the fringe while b is alive.
        let a = file("/x", "1");
        let b = Expr::if_(Pred::is_file(p("/x")), Expr::SKIP, Expr::ERROR);
        let (s, succ, anc) = graph(&[a, b], &[(0, 1)]);
        // b eliminated first? b reads /x which a writes — but a is b's
        // ancestor, so only non-ancestors matter: none. b goes, then a.
        assert!(surviving_nodes(&s, &succ, &anc).is_empty());
    }
}
