//! The syntactic commutativity check (paper §4.3, fig. 9b, Lemma 4).
//!
//! The conventional read/write-set check fails for Puppet because packages
//! create overlapping directory trees (`/usr`, `/etc`, …) — a form of
//! *false sharing*. The fix is a third abstract access kind `D`: "this
//! expression idempotently ensures the path is a directory". Two
//! expressions may both hold `D` on a path and still commute.
//!
//! Lattice: `⊥ ⊏ R, D ⊏ W`.
//!
//! Summaries are memoized process-wide, keyed by the hash-consed
//! expression id: the O(n²) pairwise commutativity pass, resource
//! elimination, pruning, and repair all consult [`accesses`] for the same
//! expressions, and identical subprograms (shared dependency blocks,
//! repeated idioms) now summarize exactly once.

use crate::memo::ExprMemo;
use rehearsal_fs::{Expr, ExprNode, FsPath, Pred, PredNode};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Abstract access to one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Access {
    /// Untouched.
    Bot,
    /// Read.
    Read,
    /// Idempotently ensured to be a directory.
    EnsureDir,
    /// Written (or mixed access).
    Write,
}

impl Access {
    fn join(self, other: Access) -> Access {
        use Access::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Read, Read) => Read,
            (EnsureDir, EnsureDir) => EnsureDir,
            _ => Write,
        }
    }
}

/// Identifies an idempotent check-then-act block (e.g. a package-install
/// guard). Two resources that access a path only through *identical* blocks
/// commute on that path: the block is idempotent, so whichever runs first
/// does the work and the other skips. This is how two packages sharing a
/// dependency (both embedding the same `install(libc6)` block) are proven
/// to commute.
///
/// With the hash-consed IR the tag is simply the block's arena id —
/// structural identity is id identity, so the seed's hash-plus-size
/// approximation (with its theoretical collisions) is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct BlockTag(Expr);

/// How a path relates to idempotent blocks within one expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockCtx {
    /// Every access to the path sits inside this one block.
    Only(BlockTag),
    /// The path is (also) accessed outside any block.
    Outside,
}

/// The abstract access summary of one expression.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessSummary {
    map: BTreeMap<FsPath, Access>,
    /// Paths whose *children* the expression observes (via `rm` or
    /// `emptydir?`): any write to a child of such a path conflicts.
    observes_children_of: BTreeSet<FsPath>,
    /// Block context per path (see [`BlockCtx`]).
    blocks: BTreeMap<FsPath, BlockCtx>,
}

impl AccessSummary {
    /// The access recorded for `p`.
    pub fn access(&self, p: FsPath) -> Access {
        self.map.get(&p).copied().unwrap_or(Access::Bot)
    }

    /// Paths with the given access kind.
    pub fn paths_with(&self, a: Access) -> impl Iterator<Item = FsPath> + '_ {
        self.map
            .iter()
            .filter(move |(_, &x)| x == a)
            .map(|(&p, _)| p)
    }

    /// All touched paths.
    pub fn touched(&self) -> impl Iterator<Item = (FsPath, Access)> + '_ {
        self.map.iter().map(|(&p, &a)| (p, a))
    }

    /// Paths whose children the expression observes.
    pub fn observed_dirs(&self) -> &BTreeSet<FsPath> {
        &self.observes_children_of
    }

    fn note_block(&mut self, p: FsPath, current: Option<BlockTag>) {
        let entry = self.blocks.entry(p);
        match (entry, current) {
            (std::collections::btree_map::Entry::Vacant(v), Some(tag)) => {
                v.insert(BlockCtx::Only(tag));
            }
            (std::collections::btree_map::Entry::Vacant(v), None) => {
                v.insert(BlockCtx::Outside);
            }
            (std::collections::btree_map::Entry::Occupied(mut o), cur) => {
                let keep = matches!((o.get(), cur), (BlockCtx::Only(t), Some(tag)) if *t == tag);
                if !keep {
                    o.insert(BlockCtx::Outside);
                }
            }
        }
    }

    fn block_of(&self, p: FsPath) -> Option<BlockTag> {
        match self.blocks.get(&p) {
            Some(BlockCtx::Only(t)) => Some(*t),
            _ => None,
        }
    }

    fn read(&mut self, p: FsPath) {
        let cur = self.access(p);
        // A read of a path this expression already pins as `D` is stable
        // (only dir-ness is observable and `D` guarantees it); do not
        // promote D to W.
        let next = match cur {
            Access::EnsureDir => Access::EnsureDir,
            other => other.join(Access::Read),
        };
        self.map.insert(p, next);
    }

    fn write(&mut self, p: FsPath) {
        self.map.insert(p, Access::Write);
    }

    fn ensure_dir(&mut self, p: FsPath) {
        // fig. 9b: p may become D only if its parent is already D (or is
        // the root, which always exists) and p itself is at most D.
        let parent_ok = match p.parent() {
            Some(parent) => parent == FsPath::root() || self.access(parent) == Access::EnsureDir,
            None => false,
        };
        let self_ok = matches!(self.access(p), Access::Bot | Access::EnsureDir);
        if parent_ok && self_ok {
            self.map.insert(p, Access::EnsureDir);
        } else {
            // The un-absorbed mkdir also reads its parent's dir-ness.
            if let Some(parent) = p.parent() {
                if parent != FsPath::root() {
                    self.read(parent);
                }
            }
            self.write(p);
        }
    }

    fn observe_children(&mut self, p: FsPath) {
        self.observes_children_of.insert(p);
    }

    fn merge_branch(&mut self, other: AccessSummary) {
        for (p, a) in other.map {
            let cur = self.access(p);
            self.map.insert(p, cur.join(a));
        }
        self.observes_children_of.extend(other.observes_children_of);
        for (p, ctx) in other.blocks {
            match ctx {
                BlockCtx::Only(t) => self.note_block(p, Some(t)),
                BlockCtx::Outside => self.note_block(p, None),
            }
        }
    }
}

/// The last expression on the right spine of a `Seq` chain.
fn last_op(e: Expr) -> Expr {
    match e.node() {
        ExprNode::Seq(_, b) => last_op(b),
        _ => e,
    }
}

/// Recognizes an idempotent check-then-act block keyed on a path `m`.
/// Two expressions that access a path only through *identical* such blocks
/// commute on it: whichever block runs first does the work, the second run
/// is a no-op (and the block's error conditions depend only on state the
/// conflict analysis tracks separately).
///
/// Shapes recognized:
///
/// * marker-install style: `if (none?(m)) { …; creat(m, _) } else if
///   (file?(m)) id else err`;
/// * marker-remove style: `if (file?(m)) { …; rm(m) } else id`;
/// * overwrite: `if (none?(m)) creat(m, c) else if (file?(m)) { rm(m);
///   creat(m, c) } else err` (the definitive write idiom — used for every
///   package file, so two packages shipping the same file with the same
///   content commute);
/// * create-if-absent: `if (none?(m)) creat(m, _) else if (file?(m)) id
///   else err`;
/// * remove-if-present: `if (file?(m)) rm(m) else if (none?(m)) id else
///   err`.
fn idempotent_block(pred: Pred, then_: Expr, else_: Expr) -> Option<()> {
    match (pred.node(), else_.node()) {
        (PredNode::DoesNotExist(m), ExprNode::If(ep, et, ee)) => {
            match (ep.node(), et.node(), ee.node()) {
                // create-if-absent / marker-install.
                (PredNode::IsFile(m2), ExprNode::Skip, ExprNode::Error) if m2 == m => {
                    match last_op(then_).node() {
                        ExprNode::CreateFile(q, _) if q == m => Some(()),
                        _ => None,
                    }
                }
                // overwrite.
                (PredNode::IsFile(m2), ExprNode::Seq(rm, cr), ExprNode::Error) if m2 == m => {
                    match (then_.node(), rm.node(), cr.node()) {
                        (
                            ExprNode::CreateFile(q1, c1),
                            ExprNode::Rm(q2),
                            ExprNode::CreateFile(q3, c2),
                        ) if q1 == m && q2 == m && q3 == m && c1 == c2 => Some(()),
                        _ => None,
                    }
                }
                _ => None,
            }
        }
        // marker-remove.
        (PredNode::IsFile(m), ExprNode::Skip) => match last_op(then_).node() {
            ExprNode::Rm(q) if q == m => Some(()),
            _ => None,
        },
        // remove-if-present.
        (PredNode::IsFile(m), ExprNode::If(ep, et, ee)) => {
            match (then_.node(), ep.node(), et.node(), ee.node()) {
                (ExprNode::Rm(q1), PredNode::DoesNotExist(m2), ExprNode::Skip, ExprNode::Error)
                    if q1 == m && m2 == m =>
                {
                    Some(())
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Recognizes the guarded-mkdir idioms of fig. 9b:
/// `if (¬dir?(p)) mkdir(p) [else id]` and
/// `if (none?(p)) mkdir(p) else if (file?(p)) err else id`.
fn guarded_mkdir(pred: Pred, then_: Expr, else_: Expr) -> Option<FsPath> {
    match (pred.node(), then_.node(), else_.node()) {
        (PredNode::Not(inner), ExprNode::Mkdir(p), ExprNode::Skip) => match inner.node() {
            PredNode::IsDir(q) if q == p => Some(p),
            _ => None,
        },
        (
            PredNode::DoesNotExist(q),
            ExprNode::Mkdir(p),
            ExprNode::If(inner_pred, inner_then, inner_else),
        ) if q == p => match (inner_pred.node(), inner_then.node(), inner_else.node()) {
            (PredNode::IsFile(r), ExprNode::Error, ExprNode::Skip) if r == p => Some(p),
            _ => None,
        },
        _ => None,
    }
}

fn pred_accesses(pred: Pred, out: &mut AccessSummary, block: Option<BlockTag>) {
    match pred.node() {
        PredNode::True | PredNode::False => {}
        PredNode::DoesNotExist(p) | PredNode::IsFile(p) | PredNode::IsDir(p) => {
            out.read(p);
            out.note_block(p, block);
        }
        PredNode::IsEmptyDir(p) => {
            out.read(p);
            out.note_block(p, block);
            out.observe_children(p);
        }
        PredNode::MetaIs(p, _, _) => {
            // Observes both existence and a metadata field of p.
            out.read(p);
            out.note_block(p, block);
        }
        PredNode::And(a, b) | PredNode::Or(a, b) => {
            pred_accesses(a, out, block);
            pred_accesses(b, out, block);
        }
        PredNode::Not(a) => pred_accesses(a, out, block),
    }
}

fn expr_accesses(e: Expr, out: &mut AccessSummary, block: Option<BlockTag>) {
    match e.node() {
        ExprNode::Skip | ExprNode::Error => {}
        ExprNode::Mkdir(p) | ExprNode::CreateFile(p, _) => {
            if let Some(parent) = p.parent() {
                out.read(parent);
                out.note_block(parent, block);
            }
            out.write(p);
            out.note_block(p, block);
        }
        ExprNode::Rm(p) => {
            out.write(p);
            out.note_block(p, block);
            out.observe_children(p);
        }
        ExprNode::ChMeta(p, _, _) => {
            // A metadata write is a write to p: two expressions that
            // manage the same path's metadata must not commute (last
            // write wins), and a metadata write does not commute with a
            // content write or removal of the same path either. The
            // access lattice stays path-granular — a per-field refinement
            // would buy little, since real resources set owner/group/mode
            // together.
            out.write(p);
            out.note_block(p, block);
        }
        ExprNode::Cp(src, dst) => {
            out.read(src);
            out.note_block(src, block);
            if let Some(parent) = dst.parent() {
                out.read(parent);
                out.note_block(parent, block);
            }
            out.write(dst);
            out.note_block(dst, block);
        }
        ExprNode::Seq(a, b) => {
            expr_accesses(a, out, block);
            expr_accesses(b, out, block);
        }
        ExprNode::If(pred, then_, else_) => {
            if let Some(p) = guarded_mkdir(pred, then_, else_) {
                out.ensure_dir(p);
                out.note_block(p, block);
                return;
            }
            let block = if block.is_none() && idempotent_block(pred, then_, else_).is_some() {
                Some(BlockTag(e))
            } else {
                block
            };
            pred_accesses(pred, out, block);
            let mut bt = AccessSummary::default();
            expr_accesses(then_, &mut bt, block);
            let mut be = AccessSummary::default();
            expr_accesses(else_, &mut be, block);
            bt.merge_branch(be);
            // Branch results compose sequentially with what came before.
            for (p, a) in &bt.map {
                match a {
                    Access::Bot => {}
                    Access::Read => out.read(*p),
                    Access::EnsureDir => out.ensure_dir(*p),
                    Access::Write => out.write(*p),
                }
            }
            for (p, ctx) in bt.blocks {
                match ctx {
                    BlockCtx::Only(t) => out.note_block(p, Some(t)),
                    BlockCtx::Outside => out.note_block(p, None),
                }
            }
            out.observes_children_of.extend(bt.observes_children_of);
        }
    }
}

/// Computes the abstract access summary of an expression (`[e]C ⊥`).
///
/// Summaries depend only on the expression's structure, so they are
/// memoized process-wide keyed by the hash-consed id: repeated queries for
/// the same (sub)program — across the commutativity pass, elimination,
/// pruning, and repair — are answered by a shared `Arc` in O(1).
pub fn accesses(e: Expr) -> Arc<AccessSummary> {
    static MEMO: ExprMemo<AccessSummary> =
        ExprMemo::new("memo.accesses.hits", "memo.accesses.misses");
    MEMO.get_or_compute(e, || {
        let mut out = AccessSummary::default();
        expr_accesses(e, &mut out, None);
        out
    })
}

/// Lemma 4: do `e1` and `e2` commute?
///
/// Conditions (plus a write/write disjointness check stated in the paper's
/// prose, and child-observation checks that make `rm`/`emptydir?` sound):
/// 1. `R(e1) ∩ W(e2) = ∅` and symmetrically;
/// 2. `W(e1) ∩ W(e2) = ∅`;
/// 3. `D(e1) ∩ (R(e2) ∪ W(e2)) = ∅` and symmetrically;
/// 4. no write or `D` of one under a directory whose children the other
///    observes.
pub fn commutes(a: &AccessSummary, b: &AccessSummary) -> bool {
    use Access::*;
    for (p, aa) in a.touched() {
        let ba = b.access(p);
        let conflict = matches!(
            (aa, ba),
            (Read, Write)
                | (Write, Read)
                | (Write, Write)
                | (EnsureDir, Read)
                | (Read, EnsureDir)
                | (EnsureDir, Write)
                | (Write, EnsureDir)
        );
        if conflict {
            // Excused when both sides touch p only inside the *same*
            // idempotent block (e.g. two packages installing a shared
            // dependency).
            let excused = matches!(
                (a.block_of(p), b.block_of(p)),
                (Some(ta), Some(tb)) if ta == tb
            );
            if !excused {
                return false;
            }
        }
    }
    // Child-observation: a path created/removed/ensured by one side under a
    // directory whose emptiness the other side can observe.
    let changes = |s: &AccessSummary| -> Vec<FsPath> {
        s.touched()
            .filter(|(_, acc)| matches!(acc, Write | EnsureDir))
            .map(|(p, _)| p)
            .collect()
    };
    for p in changes(a) {
        if let Some(parent) = p.parent() {
            if b.observed_dirs().contains(&parent) {
                return false;
            }
        }
    }
    for p in changes(b) {
        if let Some(parent) = p.parent() {
            if a.observed_dirs().contains(&parent) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::{check_equiv_brute_force, Content, FsPath};

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn ensure_dir(path: FsPath) -> Expr {
        Expr::if_then(Pred::is_dir(path).not(), Expr::mkdir(path))
    }

    #[test]
    fn guarded_mkdir_is_d() {
        let e = ensure_dir(p("/usr"));
        let s = accesses(e);
        assert_eq!(s.access(p("/usr")), Access::EnsureDir);
    }

    #[test]
    fn accesses_are_memoized() {
        let e = ensure_dir(p("/memo")).seq(Expr::create_file(p("/memo/f"), Content::intern("x")));
        let s1 = accesses(e);
        let s2 = accesses(e);
        assert!(Arc::ptr_eq(&s1, &s2), "same id returns the shared summary");
    }

    #[test]
    fn expanded_guard_form_is_d() {
        let a = p("/usr");
        let e = Expr::if_(
            Pred::does_not_exist(a),
            Expr::mkdir(a),
            Expr::if_(Pred::is_file(a), Expr::ERROR, Expr::SKIP),
        );
        assert_eq!(accesses(e).access(a), Access::EnsureDir);
    }

    #[test]
    fn unguarded_mkdir_is_w() {
        let e = Expr::mkdir(p("/usr"));
        assert_eq!(accesses(e).access(p("/usr")), Access::Write);
    }

    #[test]
    fn d_requires_parent_d() {
        // Creating /a/b before /a is not D for /a/b.
        let bad = ensure_dir(p("/a/b")).seq(ensure_dir(p("/a")));
        let s = accesses(bad);
        assert_eq!(s.access(p("/a/b")), Access::Write);
        // In the right order both are D.
        let good = ensure_dir(p("/a")).seq(ensure_dir(p("/a/b")));
        let s = accesses(good);
        assert_eq!(s.access(p("/a")), Access::EnsureDir);
        assert_eq!(s.access(p("/a/b")), Access::EnsureDir);
    }

    #[test]
    fn packages_with_shared_dirs_commute() {
        // Two "packages" that both ensure /usr and /usr/bin, then create
        // their own files — the motivating case of §4.3.
        let pkg = |name: &str| {
            ensure_dir(p("/usr"))
                .seq(ensure_dir(p("/usr/bin")))
                .seq(Expr::create_file(
                    p("/usr/bin").join(name),
                    Content::intern(name),
                ))
        };
        let a = pkg("vim");
        let b = pkg("git");
        assert!(commutes(&accesses(a), &accesses(b)));
        // Sanity: brute-force agrees they commute.
        let ab = a.seq(b);
        let ba = b.seq(a);
        check_equiv_brute_force(ab, ba, &[p("/usr"), p("/usr/bin")], &[])
            .expect("they really commute");
    }

    #[test]
    fn conflicting_writes_do_not_commute() {
        let a = Expr::create_file(p("/f"), Content::intern("a"));
        let b = Expr::create_file(p("/f"), Content::intern("b"));
        assert!(!commutes(&accesses(a), &accesses(b)));
    }

    #[test]
    fn read_write_conflict() {
        let a = Expr::if_(Pred::is_file(p("/f")), Expr::SKIP, Expr::ERROR);
        let b = Expr::create_file(p("/f"), Content::intern("x"));
        assert!(!commutes(&accesses(a), &accesses(b)));
    }

    #[test]
    fn d_conflicts_with_read_and_write() {
        let d = ensure_dir(p("/d"));
        let r = Expr::if_(Pred::does_not_exist(p("/d")), Expr::SKIP, Expr::ERROR);
        let w = Expr::rm(p("/d"));
        assert!(!commutes(&accesses(d), &accesses(r)));
        assert!(!commutes(&accesses(d), &accesses(w)));
        // But D/D is fine.
        assert!(commutes(&accesses(d), &accesses(ensure_dir(p("/d")))));
    }

    #[test]
    fn rm_observes_children() {
        // rm(/d) vs creating a file inside /d: removing first succeeds,
        // removing second fails — they must not commute.
        let a = Expr::rm(p("/d"));
        let b = Expr::create_file(p("/d/f"), Content::intern("x"));
        assert!(!commutes(&accesses(a), &accesses(b)));
    }

    #[test]
    fn emptydir_test_observes_children() {
        let a = Expr::if_(Pred::is_empty_dir(p("/d")), Expr::SKIP, Expr::ERROR);
        let b = Expr::create_file(p("/d/f"), Content::intern("x"));
        assert!(!commutes(&accesses(a), &accesses(b)));
        // A sibling write does not disturb the emptiness of /d.
        let c = Expr::create_file(p("/e"), Content::intern("x"));
        assert!(commutes(&accesses(a), &accesses(c)));
    }

    #[test]
    fn meta_writes_conflict_on_the_same_path() {
        let f = p("/mw/f");
        let a = Expr::chmod(f, Content::intern("0644"));
        let b = Expr::chmod(f, Content::intern("0755"));
        assert!(!commutes(&accesses(a), &accesses(b)), "chmod vs chmod");
        let o = Expr::chown(f, Content::intern("root"));
        assert!(!commutes(&accesses(a), &accesses(o)), "chmod vs chown");
        let w = Expr::create_file(f, Content::intern("x"));
        assert!(!commutes(&accesses(a), &accesses(w)), "chmod vs creat");
        let r = Expr::if_(
            Pred::meta_is(f, rehearsal_fs::MetaField::Mode, Content::intern("0644")),
            Expr::SKIP,
            Expr::ERROR,
        );
        assert!(!commutes(&accesses(a), &accesses(r)), "chmod vs meta_is");
    }

    #[test]
    fn meta_writes_on_distinct_paths_commute() {
        let a = Expr::chmod(p("/mw/a"), Content::intern("0644"));
        let b = Expr::chown(p("/mw/b"), Content::intern("root"));
        assert!(commutes(&accesses(a), &accesses(b)));
        // Brute-force confirmation over states where both paths exist.
        let fs = rehearsal_fs::FileSystem::with_root()
            .set(p("/mw"), rehearsal_fs::FileState::DIR)
            .set(
                p("/mw/a"),
                rehearsal_fs::FileState::file(Content::intern("x")),
            )
            .set(
                p("/mw/b"),
                rehearsal_fs::FileState::file(Content::intern("y")),
            );
        let ab = rehearsal_fs::eval(a.seq(b), &fs).unwrap();
        let ba = rehearsal_fs::eval(b.seq(a), &fs).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn disjoint_resources_commute() {
        let a = Expr::create_file(p("/x"), Content::intern("1"));
        let b = Expr::create_file(p("/y"), Content::intern("2"));
        assert!(commutes(&accesses(a), &accesses(b)));
    }

    /// Two resources that embed the *identical* install block for a shared
    /// dependency commute — the block-tag excuse. With hash-consing the
    /// two embedded blocks are literally the same node.
    #[test]
    fn shared_dependency_blocks_commute() {
        let m = p("/packages/libc");
        let marker_content = Content::intern("installed:libc");
        let libf = p("/usr/libc.so");
        let install_libc = Expr::if_(
            Pred::does_not_exist(m),
            ensure_dir(p("/usr"))
                .seq(Expr::create_file(libf, Content::intern("pkg:libc")))
                .seq(Expr::create_file(m, marker_content)),
            Expr::if_(Pred::is_file(m), Expr::SKIP, Expr::ERROR),
        );
        let own = |name: &str| {
            ensure_dir(p("/usr")).seq(Expr::create_file(
                p("/usr").join(name),
                Content::intern(name),
            ))
        };
        let pkg_a = install_libc.seq(own("vim"));
        let pkg_b = install_libc.seq(own("git"));
        assert!(
            commutes(&accesses(pkg_a), &accesses(pkg_b)),
            "identical dependency blocks must be excused"
        );
        // Brute-force confirmation that the excuse is sound.
        let ab = pkg_a.seq(pkg_b);
        let ba = pkg_b.seq(pkg_a);
        check_equiv_brute_force(
            ab,
            ba,
            &[
                p("/packages"),
                m,
                p("/usr"),
                libf,
                p("/usr/vim"),
                p("/usr/git"),
            ],
            &[marker_content],
        )
        .expect("shared blocks really commute");
        // A file resource clobbering the shared file is NOT excused.
        let clobber = Expr::create_file(libf, Content::intern("mine"));
        assert!(!commutes(&accesses(pkg_a), &accesses(clobber)));
    }

    /// The soundness property behind Lemma 4, validated by brute force on a
    /// gallery of expression pairs: whenever the analysis says two
    /// expressions commute, they are semantically equivalent in both
    /// orders.
    #[test]
    fn commute_verdicts_are_sound() {
        let c1 = Content::intern("one");
        let c2 = Content::intern("two");
        let gallery = vec![
            Expr::create_file(p("/a/f"), c1),
            Expr::create_file(p("/a/g"), c2),
            ensure_dir(p("/a")),
            ensure_dir(p("/a")).seq(ensure_dir(p("/a/sub"))),
            Expr::rm(p("/a")),
            Expr::if_(Pred::is_file(p("/a/f")), Expr::rm(p("/a/f")), Expr::SKIP),
            Expr::cp(p("/a/f"), p("/b")),
            Expr::mkdir(p("/c")),
            Expr::if_(Pred::is_empty_dir(p("/a")), Expr::SKIP, Expr::ERROR),
            Expr::chmod(p("/a/f"), Content::intern("0600")),
            Expr::chown(p("/b"), Content::intern("root")),
            Expr::if_(
                Pred::meta_is(
                    p("/a/g"),
                    rehearsal_fs::MetaField::Owner,
                    Content::intern("root"),
                ),
                Expr::SKIP,
                Expr::ERROR,
            ),
        ];
        let paths = [p("/a"), p("/a/f"), p("/a/g"), p("/a/sub"), p("/b"), p("/c")];
        for (i, &e1) in gallery.iter().enumerate() {
            for &e2 in gallery.iter().skip(i + 1) {
                if commutes(&accesses(e1), &accesses(e2)) {
                    let ab = e1.seq(e2);
                    let ba = e2.seq(e1);
                    check_equiv_brute_force(ab, ba, &paths, &[c1]).unwrap_or_else(|cex| {
                        panic!(
                            "analysis claims {e1} and {e2} commute, \
                                 but they differ on {cex}"
                        )
                    });
                }
            }
        }
    }
}
