//! Fixed-width bitsets over `u64` words for the permutation explorer.
//!
//! The explorer of [`crate::determinism`] manipulates sets of resource
//! indices on every step of a (worst-case factorial) search:
//! `remaining`, per-node predecessor masks, descendant cones, and the
//! commutativity relation. [`Bits`] packs those sets into machine words so
//! membership, difference, and the fringe/commute checks are word-parallel
//! bit operations instead of `BTreeSet` traversals and clones. Equality
//! and hashing are word-wise, which makes `Bits` directly usable as (part
//! of) the explorer's state-cache key.

use std::fmt;

/// A fixed-universe bitset: indices `0..n` packed into `u64` words.
///
/// All operations assume both operands share the same universe size; the
/// explorer only ever combines sets over one graph's node indices.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    words: Box<[u64]>,
}

impl Bits {
    /// The empty set over a universe of `n` indices.
    pub fn new(n: usize) -> Bits {
        Bits {
            words: vec![0u64; n.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// The full set `{0, …, n-1}`.
    pub fn full(n: usize) -> Bits {
        let mut b = Bits::new(n);
        for i in 0..n {
            b.insert(i);
        }
        b
    }

    /// The raw words (low index = low bits), for word-parallel checks.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Inserts index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether index `i` is in the set (out-of-universe indices are not).
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// A copy with index `i` removed.
    pub fn without(&self, i: usize) -> Bits {
        let mut out = self.clone();
        out.remove(i);
        out
    }

    /// Whether the two sets share an element.
    pub fn intersects(&self, other: &Bits) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Bits) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> BitsIter<'_> {
        BitsIter {
            bits: self,
            word: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl FromIterator<usize> for Bits {
    /// Collects indices into a set whose universe is just large enough.
    /// (Mostly a test convenience; the explorer sizes sets by the graph.)
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Bits {
        let indices: Vec<usize> = iter.into_iter().collect();
        let n = indices.iter().map(|&i| i + 1).max().unwrap_or(0);
        let mut b = Bits::new(n);
        for i in indices {
            b.insert(i);
        }
        b
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending iterator over a [`Bits`].
pub struct BitsIter<'a> {
    bits: &'a Bits,
    word: usize,
    current: u64,
}

impl Iterator for BitsIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word * 64 + tz);
            }
            self.word += 1;
            self.current = *self.bits.words.get(self.word)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_contains() {
        let mut b = Bits::new(130);
        assert!(b.is_empty());
        for i in [0, 63, 64, 129] {
            b.insert(i);
            assert!(b.contains(i));
        }
        assert_eq!(b.len(), 4);
        b.remove(64);
        assert!(!b.contains(64));
        assert_eq!(b.len(), 3);
        assert!(!b.contains(500), "out of universe is absent");
    }

    #[test]
    fn full_and_without() {
        let b = Bits::full(70);
        assert_eq!(b.len(), 70);
        let c = b.without(69);
        assert!(!c.contains(69));
        assert!(b.contains(69), "without is non-destructive");
    }

    #[test]
    fn iteration_is_ascending() {
        let b: Bits = [5usize, 1, 64, 127, 66].into_iter().collect();
        let got: Vec<usize> = b.iter().collect();
        assert_eq!(got, vec![1, 5, 64, 66, 127]);
    }

    #[test]
    fn subset_and_intersection() {
        let a: Bits = [1usize, 2, 65].into_iter().collect();
        let mut b = Bits::new(66);
        for i in [1, 2, 3, 65] {
            b.insert(i);
        }
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.intersects(&b));
        let empty = Bits::new(66);
        assert!(!a.intersects(&empty));
        assert!(empty.is_subset_of(&a), "∅ is a subset of everything");
    }

    #[test]
    fn equality_and_hash_match_btreeset_semantics() {
        let mut a = Bits::new(100);
        let mut b = Bits::new(100);
        let mut reference = BTreeSet::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..64 {
            // splitmix64 steps drive pseudo-random membership.
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            let i = (z ^ (z >> 31)) as usize % 100;
            a.insert(i);
            b.insert(i);
            reference.insert(i);
        }
        assert_eq!(a, b);
        assert_eq!(a.iter().collect::<BTreeSet<_>>(), reference);
        assert_eq!(a.len(), reference.len());
    }
}
