//! **rehearsal-core** — the determinacy and idempotency analyses of
//! *Rehearsal: A Configuration Verification Tool for Puppet* (PLDI 2016).
//!
//! The pipeline (paper §3–§5):
//!
//! 1. Puppet manifests are evaluated to a *resource graph* by
//!    `rehearsal-puppet` and each resource is compiled to an FS program by
//!    `rehearsal-resources`.
//! 2. [`determinism::check_determinism`] decides whether every valid order
//!    of the graph produces the same outcome on every input, using three
//!    reductions to stay tractable: resource [`elimination`], path
//!    [`prune`]-ing, and [`commutativity`]-based partial-order reduction.
//! 3. Once deterministic, [`idempotence`] (`e ≡ e; e`) and post-state
//!    [`invariants`] are single symbolic queries.
//!
//! The symbolic [`encoder`] grounds everything to the CDCL SAT solver in
//! `rehearsal-solver`; verdicts come with *replayed* counterexamples (the
//! initial filesystem plus two resource orders, executed by the concrete
//! FS evaluator).
//!
//! The convenient entry point is [`Rehearsal`]:
//!
//! ```
//! use rehearsal_core::Rehearsal;
//! use rehearsal_pkgdb::Platform;
//!
//! let tool = Rehearsal::new(Platform::Ubuntu);
//! let report = tool.check_determinism(r#"
//!     package { 'vim': ensure => present }
//!     file { '/home/carol/.vimrc': content => 'syntax on' }
//!     user { 'carol': ensure => present, managehome => true }
//! "#)?;
//! assert!(!report.is_deterministic(), "the .vimrc needs its user first");
//! # Ok::<(), rehearsal_core::RehearsalError>(())
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod commutativity;
pub mod determinism;
pub mod domain;
pub mod elimination;
pub mod encoder;
pub mod equivalence;
pub mod footprint;
pub mod idempotence;
pub mod invariants;
mod memo;
pub mod parallel;
pub mod pipeline;
pub mod prune;
pub mod repair;
pub mod report;

pub use determinism::{
    check_determinism, check_determinism_with_oracle, AnalysisAborted, AnalysisOptions,
    CancelToken, Counterexample, DeterminismReport, DeterminismStats, FsGraph,
};
pub use equivalence::{check_expr_equivalence, EquivalenceReport};
pub use footprint::{
    dirty_cone, expr_digest, footprint, graph_digest, pred_digest, CommuteOracle, Footprint,
};
pub use idempotence::{
    check_expr_idempotence, check_idempotence, IdempotenceCounterexample, IdempotenceReport,
};
pub use invariants::{check_expr_invariant, check_invariant, Invariant, InvariantReport};
pub use pipeline::{
    Rehearsal, RehearsalError, RehearsalErrorKind, SourceAnalysis, VerificationReport,
};
pub use repair::{suggest_repair, RepairReport};
pub use report::{
    aborted_diagnostic, determinism_diagnostics, idempotence_diagnostics, race_diagnostic,
    racing_pair, render_counterexample, render_determinism, render_idempotence,
};
