//! Idempotence checking (paper §5): once a manifest is deterministic, any
//! topological order gives *the* semantics as a single expression `e`, and
//! idempotence is the equivalence `e ≡ e; e` — one more symbolic query.
//!
//! Applying these checks to a non-deterministic manifest would be unsound
//! (the paper stresses this), so the driver runs the determinacy analysis
//! first.

use crate::determinism::{AnalysisAborted, AnalysisOptions, FsGraph};
use crate::domain::Domain;
use crate::encoder::Encoder;
use rehearsal_fs::{eval as concrete_eval, Expr, FileSystem};
use std::time::Instant;

/// A counterexample to idempotence: an initial state where applying the
/// manifest twice differs from applying it once.
#[derive(Debug, Clone)]
pub struct IdempotenceCounterexample {
    /// The initial filesystem.
    pub initial: FileSystem,
    /// Concrete outcome after one application.
    pub after_once: Result<FileSystem, rehearsal_fs::ExecError>,
    /// Concrete outcome after two applications.
    pub after_twice: Result<FileSystem, rehearsal_fs::ExecError>,
}

/// The verdict of the idempotence check.
#[derive(Debug, Clone)]
pub enum IdempotenceReport {
    /// `e ≡ e; e`.
    Idempotent,
    /// Applying twice can differ from applying once.
    NotIdempotent(Box<IdempotenceCounterexample>),
}

impl IdempotenceReport {
    /// Whether the manifest is idempotent.
    pub fn is_idempotent(&self) -> bool {
        matches!(self, IdempotenceReport::Idempotent)
    }
}

/// Checks `e ≡ e; e` for a single expression.
///
/// # Errors
///
/// Returns [`AnalysisAborted`] on timeout.
pub fn check_expr_idempotence(
    e: Expr,
    options: &AnalysisOptions,
) -> Result<IdempotenceReport, AnalysisAborted> {
    let _span = rehearsal_trace::span_cat("idempotence", "core");
    let deadline = options.timeout.map(|t| Instant::now() + t);
    let domain = Domain::of_exprs([e]);
    let mut enc = Encoder::new(domain);
    let s0 = enc.initial_state();
    let once = enc.eval_expr(e, &s0);
    let twice = enc.eval_expr(e, &once);
    let diff = enc.states_differ(&once, &twice);
    let solved = enc
        .ctx
        .solve_with_budget(diff, deadline, crate::determinism::interrupt_flag(options))
        .map_err(|_| crate::determinism::solve_abort_reason(options))?;
    enc.ctx.publish_trace_metrics();
    match solved {
        None => Ok(IdempotenceReport::Idempotent),
        Some(model) => {
            let initial = enc.decode_state(&model, &s0);
            let after_once = concrete_eval(e, &initial);
            let after_twice = after_once.clone().and_then(|mid| concrete_eval(e, &mid));
            Ok(IdempotenceReport::NotIdempotent(Box::new(
                IdempotenceCounterexample {
                    initial,
                    after_once,
                    after_twice,
                },
            )))
        }
    }
}

/// Checks idempotence of a (deterministic) resource graph by sequencing
/// one topological order.
///
/// # Errors
///
/// Returns [`AnalysisAborted`] on timeout.
pub fn check_idempotence(
    graph: &FsGraph,
    options: &AnalysisOptions,
) -> Result<IdempotenceReport, AnalysisAborted> {
    let order = graph.topological_order();
    let seq = Expr::seq_all(order.into_iter().map(|i| graph.exprs[i]));
    check_expr_idempotence(seq, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::{Content, FsPath, Pred};

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn skip_is_idempotent() {
        let r = check_expr_idempotence(Expr::SKIP, &AnalysisOptions::default()).unwrap();
        assert!(r.is_idempotent());
    }

    #[test]
    fn raw_mkdir_is_not_idempotent() {
        // mkdir(/a); mkdir(/a) always fails the second time when the first
        // succeeded.
        let e = Expr::mkdir(p("/a"));
        let r = check_expr_idempotence(e, &AnalysisOptions::default()).unwrap();
        match r {
            IdempotenceReport::NotIdempotent(cex) => {
                assert!(cex.after_once.is_ok());
                assert!(cex.after_twice.is_err());
            }
            IdempotenceReport::Idempotent => panic!("raw mkdir is not idempotent"),
        }
    }

    #[test]
    fn guarded_mkdir_is_idempotent() {
        let e = Expr::if_then(Pred::is_dir(p("/a")).not(), Expr::mkdir(p("/a")));
        let r = check_expr_idempotence(e, &AnalysisOptions::default()).unwrap();
        assert!(r.is_idempotent());
    }

    #[test]
    fn paper_fig3d_copy_then_delete() {
        // file{/dst: source => /src}; file{/src: ensure => absent} with the
        // dependency File[/dst] -> File[/src]: deterministic but NOT
        // idempotent (the second run has no /src to copy).
        let copy = Expr::if_(
            Pred::does_not_exist(p("/dst")),
            Expr::cp(p("/src"), p("/dst")),
            Expr::if_(
                Pred::is_file(p("/dst")),
                Expr::rm(p("/dst")).seq(Expr::cp(p("/src"), p("/dst"))),
                Expr::ERROR,
            ),
        );
        let delete = Expr::if_(
            Pred::is_file(p("/src")),
            Expr::rm(p("/src")),
            Expr::if_(Pred::does_not_exist(p("/src")), Expr::SKIP, Expr::ERROR),
        );
        let e = copy.seq(delete);
        let r = check_expr_idempotence(e, &AnalysisOptions::default()).unwrap();
        match r {
            IdempotenceReport::NotIdempotent(cex) => {
                assert!(cex.after_once.is_ok(), "first run succeeds");
                assert!(cex.after_twice.is_err(), "second run fails: /src gone");
            }
            IdempotenceReport::Idempotent => panic!("fig 3d is not idempotent"),
        }
    }

    #[test]
    fn overwrite_is_idempotent() {
        let c = Content::intern("v");
        let f = p("/f");
        let e = Expr::if_(
            Pred::does_not_exist(f),
            Expr::create_file(f, c),
            Expr::if_(
                Pred::is_file(f),
                Expr::rm(f).seq(Expr::create_file(f, c)),
                Expr::ERROR,
            ),
        );
        let r = check_expr_idempotence(e, &AnalysisOptions::default()).unwrap();
        assert!(r.is_idempotent());
    }

    #[test]
    fn graph_level_check_uses_topological_order() {
        let a = Expr::if_then(Pred::is_dir(p("/d")).not(), Expr::mkdir(p("/d")));
        let b = Expr::if_(
            Pred::does_not_exist(p("/d/f")),
            Expr::create_file(p("/d/f"), Content::intern("x")),
            Expr::if_(Pred::is_file(p("/d/f")), Expr::SKIP, Expr::ERROR),
        );
        let g = FsGraph::new(
            vec![a, b],
            [(0usize, 1usize)].into_iter().collect(),
            vec!["dir".into(), "file".into()],
        );
        let r = check_idempotence(&g, &AnalysisOptions::default()).unwrap();
        assert!(r.is_idempotent());
    }
}
