//! Human-readable rendering of analysis reports.
//!
//! Counterexamples reference resources by index; rendering pairs them with
//! the graph's display names and formats the initial filesystem, the two
//! orders, and the replayed outcomes the way the `rehearsal` CLI prints
//! them.

use crate::determinism::{Counterexample, DeterminismReport, FsGraph};
use crate::idempotence::IdempotenceReport;
use rehearsal_fs::{ExecError, FileSystem};
use std::fmt::Write;

fn describe_outcome(o: &Result<FileSystem, ExecError>) -> String {
    match o {
        Ok(fs) => format!("success ({} populated paths)", fs.len()),
        Err(_) => "error".to_string(),
    }
}

fn render_state(fs: &FileSystem, indent: &str, out: &mut String) {
    if fs.is_empty() {
        let _ = writeln!(out, "{indent}(empty filesystem)");
        return;
    }
    for (p, s) in fs.iter() {
        let _ = writeln!(out, "{indent}{p} = {s}");
    }
}

fn render_order(cex_order: &[usize], graph: &FsGraph) -> String {
    cex_order
        .iter()
        .map(|&i| graph.names[i].as_str())
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Renders a determinism counterexample against its graph.
pub fn render_counterexample(cex: &Counterexample, graph: &FsGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "counterexample initial state:");
    render_state(&cex.initial, "  ", &mut out);
    let _ = writeln!(out, "order A: {}", render_order(&cex.order_a, graph));
    let _ = writeln!(out, "  outcome: {}", describe_outcome(&cex.outcome_a));
    let _ = writeln!(out, "order B: {}", render_order(&cex.order_b, graph));
    let _ = writeln!(out, "  outcome: {}", describe_outcome(&cex.outcome_b));
    // When both orders succeed, show the paths on which they disagree.
    if let (Ok(a), Ok(b)) = (&cex.outcome_a, &cex.outcome_b) {
        let mut diffs = Vec::new();
        for (p, s) in a.iter() {
            match b.get(p) {
                Some(t) if t == s => {}
                Some(t) => diffs.push(format!("  {p}: {s} (A) vs {t} (B)")),
                None => diffs.push(format!("  {p}: {s} (A) vs absent (B)")),
            }
        }
        for (p, t) in b.iter() {
            if a.get(p).is_none() {
                diffs.push(format!("  {p}: absent (A) vs {t} (B)"));
            }
        }
        if !diffs.is_empty() {
            let _ = writeln!(out, "states differ at:");
            for d in diffs {
                let _ = writeln!(out, "{d}");
            }
        }
    }
    out
}

/// Renders a full determinism report.
pub fn render_determinism(report: &DeterminismReport, graph: &FsGraph) -> String {
    match report {
        DeterminismReport::Deterministic(stats) => format!(
            "deterministic ({} resources, {} after elimination, {} paths, \
             {} tracked, {} sequence(s) explored)\n",
            stats.resources,
            stats.resources_after_elimination,
            stats.paths,
            stats.tracked_paths,
            stats.sequences_explored
        ),
        DeterminismReport::NonDeterministic(cex, stats) => {
            let mut out = format!(
                "NON-DETERMINISTIC ({} resources, {} paths, {} sequences explored)\n",
                stats.resources, stats.paths, stats.sequences_explored
            );
            out.push_str(&render_counterexample(cex, graph));
            out
        }
    }
}

/// Renders an idempotence report.
pub fn render_idempotence(report: &IdempotenceReport) -> String {
    match report {
        IdempotenceReport::Idempotent => "idempotent\n".to_string(),
        IdempotenceReport::NotIdempotent(cex) => {
            let mut out = String::from("NOT IDEMPOTENT\ninitial state:\n");
            render_state(&cex.initial, "  ", &mut out);
            let _ = writeln!(
                out,
                "after one application: {}",
                describe_outcome(&cex.after_once)
            );
            let _ = writeln!(
                out,
                "after two applications: {}",
                describe_outcome(&cex.after_twice)
            );
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinism::{check_determinism, AnalysisOptions};
    use crate::idempotence::check_expr_idempotence;
    use rehearsal_fs::{Content, Expr, FsPath, Pred};
    use std::collections::BTreeSet;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn renders_nondeterministic_report() {
        let a = Expr::mkdir(p("/dir"));
        let b = Expr::create_file(p("/dir/f"), Content::intern("x"));
        let g = FsGraph::new(
            vec![a, b],
            BTreeSet::new(),
            vec!["File[/dir]".into(), "File[/dir/f]".into()],
        );
        let report = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        let text = render_determinism(&report, &g);
        assert!(text.contains("NON-DETERMINISTIC"), "{text}");
        assert!(text.contains("order A: "), "{text}");
        assert!(text.contains("File[/dir]"), "{text}");
        assert!(text.contains("outcome"), "{text}");
    }

    #[test]
    fn renders_deterministic_report() {
        let g = FsGraph::new(vec![Expr::SKIP], BTreeSet::new(), vec!["Notify[x]".into()]);
        let report = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        let text = render_determinism(&report, &g);
        assert!(text.starts_with("deterministic"), "{text}");
    }

    #[test]
    fn renders_divergent_success_states() {
        let w = |c: &str| {
            Expr::if_(
                Pred::does_not_exist(p("/f")),
                Expr::create_file(p("/f"), Content::intern(c)),
                Expr::SKIP,
            )
        };
        let g = FsGraph::new(
            vec![w("one"), w("two")],
            BTreeSet::new(),
            vec!["r1".into(), "r2".into()],
        );
        let report = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        let text = render_determinism(&report, &g);
        assert!(text.contains("states differ at:"), "{text}");
        assert!(text.contains("/f"), "{text}");
    }

    #[test]
    fn renders_idempotence_counterexample() {
        let report =
            check_expr_idempotence(Expr::mkdir(p("/a")), &AnalysisOptions::default()).unwrap();
        let text = render_idempotence(&report);
        assert!(text.contains("NOT IDEMPOTENT"), "{text}");
        assert!(text.contains("after two applications: error"), "{text}");
        let ok = render_idempotence(&IdempotenceReport::Idempotent);
        assert_eq!(ok, "idempotent\n");
    }
}
