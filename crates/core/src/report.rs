//! Human-readable rendering of analysis reports.
//!
//! Counterexamples reference resources by index; rendering pairs them with
//! the graph's display names and formats the initial filesystem, the two
//! orders, and the replayed outcomes the way the `rehearsal` CLI prints
//! them.

use crate::determinism::{AnalysisAborted, Counterexample, DeterminismReport, FsGraph};
use crate::idempotence::{IdempotenceCounterexample, IdempotenceReport};
use rehearsal_diag::{codes, Diagnostic, Pos, Span};
use rehearsal_fs::{eval as concrete_eval, ExecError, FileSystem};
use std::fmt::Write;

fn describe_outcome(o: &Result<FileSystem, ExecError>) -> String {
    match o {
        Ok(fs) => format!("success ({} populated paths)", fs.len()),
        Err(_) => "error".to_string(),
    }
}

fn render_state(fs: &FileSystem, indent: &str, out: &mut String) {
    if fs.is_empty() {
        let _ = writeln!(out, "{indent}(empty filesystem)");
        return;
    }
    for (p, s) in fs.iter() {
        let _ = writeln!(out, "{indent}{p} = {s}");
    }
}

fn render_order(cex_order: &[usize], graph: &FsGraph) -> String {
    cex_order
        .iter()
        .map(|&i| graph.names[i].as_str())
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Renders a determinism counterexample against its graph.
pub fn render_counterexample(cex: &Counterexample, graph: &FsGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "counterexample initial state:");
    render_state(&cex.initial, "  ", &mut out);
    let _ = writeln!(out, "order A: {}", render_order(&cex.order_a, graph));
    let _ = writeln!(out, "  outcome: {}", describe_outcome(&cex.outcome_a));
    let _ = writeln!(out, "order B: {}", render_order(&cex.order_b, graph));
    let _ = writeln!(out, "  outcome: {}", describe_outcome(&cex.outcome_b));
    // When both orders succeed, show the paths on which they disagree.
    if let (Ok(a), Ok(b)) = (&cex.outcome_a, &cex.outcome_b) {
        let mut diffs = Vec::new();
        for (p, s) in a.iter() {
            match b.get(p) {
                Some(t) if t == s => {}
                Some(t) => diffs.push(format!("  {p}: {s} (A) vs {t} (B)")),
                None => diffs.push(format!("  {p}: {s} (A) vs absent (B)")),
            }
        }
        for (p, t) in b.iter() {
            if a.get(p).is_none() {
                diffs.push(format!("  {p}: absent (A) vs {t} (B)"));
            }
        }
        if !diffs.is_empty() {
            let _ = writeln!(out, "states differ at:");
            for d in diffs {
                let _ = writeln!(out, "{d}");
            }
        }
    }
    out
}

/// Renders a full determinism report.
pub fn render_determinism(report: &DeterminismReport, graph: &FsGraph) -> String {
    match report {
        DeterminismReport::Deterministic(stats) => format!(
            "deterministic ({} resources, {} after elimination, {} paths, \
             {} tracked, {} sequence(s) explored)\n",
            stats.resources,
            stats.resources_after_elimination,
            stats.paths,
            stats.tracked_paths,
            stats.sequences_explored
        ),
        DeterminismReport::NonDeterministic(cex, stats) => {
            let mut out = format!(
                "NON-DETERMINISTIC ({} resources, {} paths, {} sequences explored)\n",
                stats.resources, stats.paths, stats.sequences_explored
            );
            out.push_str(&render_counterexample(cex, graph));
            out
        }
    }
}

/// The two racing resources of a counterexample: the first position where
/// the two orders diverge names the pair the explorer swapped.
pub fn racing_pair(cex: &Counterexample) -> (usize, usize) {
    cex.order_a
        .iter()
        .zip(&cex.order_b)
        .find(|(a, b)| a != b)
        .map(|(&a, &b)| (a, b))
        .unwrap_or((0, 0))
}

fn order_names(order: &[usize], graph: &FsGraph) -> String {
    order
        .iter()
        .map(|&i| graph.names[i].as_str())
        .collect::<Vec<_>>()
        .join(" → ")
}

fn outcome_word(o: &Result<FileSystem, ExecError>) -> &'static str {
    if o.is_ok() {
        "succeeds"
    } else {
        "errors"
    }
}

/// A determinism counterexample as a source-anchored [`Diagnostic`]
/// (code `R3001`): the primary label points at the first racing resource's
/// declaration, the secondary at the other, and the notes carry the two
/// replayed orders with their outcomes.
pub fn race_diagnostic(cex: &Counterexample, graph: &FsGraph) -> Diagnostic {
    let (a, b) = racing_pair(cex);
    let name_a = graph.names[a].clone();
    let name_b = graph.names[b].clone();
    let mut d = Diagnostic::error(
        codes::NONDETERMINISTIC,
        format!("{name_a} and {name_b} race: applying them in different orders produces different machine states"),
    )
    .with_primary(
        graph.span(a),
        format!("this resource races with {name_b}"),
    )
    .with_secondary(graph.span(b), "the other racing resource, declared here")
    .with_note(format!(
        "order A ({}) {}",
        order_names(&cex.order_a, graph),
        outcome_word(&cex.outcome_a)
    ))
    .with_note(format!(
        "order B ({}) {}",
        order_names(&cex.order_b, graph),
        outcome_word(&cex.outcome_b)
    ))
    .with_payload("resource_a", &name_a)
    .with_payload("resource_b", &name_b)
    .with_payload("outcome_a", outcome_word(&cex.outcome_a))
    .with_payload("outcome_b", outcome_word(&cex.outcome_b));
    if let (Ok(fa), Ok(fb)) = (&cex.outcome_a, &cex.outcome_b) {
        let mut diffs: Vec<String> = Vec::new();
        for (p, s) in fa.iter() {
            match fb.get(p) {
                Some(t) if t == s => {}
                _ => diffs.push(p.to_string()),
            }
        }
        for (p, _) in fb.iter() {
            if fa.get(p).is_none() {
                diffs.push(p.to_string());
            }
        }
        if !diffs.is_empty() {
            diffs.sort();
            diffs.dedup();
            let shown = diffs.iter().take(3).cloned().collect::<Vec<_>>().join(", ");
            let more = diffs.len().saturating_sub(3);
            d = d.with_note(if more > 0 {
                format!("both orders succeed but disagree at {shown} (+{more} more)")
            } else {
                format!("both orders succeed but disagree at {shown}")
            });
        }
    }
    d.with_note(format!(
        "add a dependency between {name_a} and {name_b} (a `->` chain or a \
         `require`) so one order is always chosen; `rehearsal repair` \
         suggests the direction"
    ))
}

/// Every finding of a determinism report as diagnostics (empty when
/// deterministic).
pub fn determinism_diagnostics(report: &DeterminismReport, graph: &FsGraph) -> Vec<Diagnostic> {
    match report {
        DeterminismReport::Deterministic(_) => Vec::new(),
        DeterminismReport::NonDeterministic(cex, _) => vec![race_diagnostic(cex, graph)],
    }
}

/// The resource whose *second* application diverges, found by replaying
/// the counterexample concretely along one topological order.
fn idempotence_culprit(cex: &IdempotenceCounterexample, graph: &FsGraph) -> Option<usize> {
    let order = graph.topological_order();
    let mut fs = cex.initial.clone();
    // First application (expected to succeed for a meaningful verdict).
    for &i in &order {
        fs = concrete_eval(graph.exprs[i], &fs).ok()?;
    }
    let after_once = fs.clone();
    // Second application: the first failing resource is the culprit; if
    // all succeed, the first whose program touches a differing path.
    for &i in &order {
        match concrete_eval(graph.exprs[i], &fs) {
            Ok(next) => fs = next,
            Err(_) => return Some(i),
        }
    }
    let mut differing: Vec<String> = Vec::new();
    for (p, s) in fs.iter() {
        if after_once.get(p) != Some(s) {
            differing.push(p.to_string());
        }
    }
    for (p, _) in after_once.iter() {
        if fs.get(p).is_none() {
            differing.push(p.to_string());
        }
    }
    order.into_iter().find(|&i| {
        graph.exprs[i]
            .paths()
            .iter()
            .any(|p| differing.iter().any(|d| *d == p.to_string()))
    })
}

/// An idempotence report as source-anchored diagnostics (code `R3002`;
/// empty when idempotent). The primary label points at the declaration of
/// the resource whose second application diverges.
pub fn idempotence_diagnostics(report: &IdempotenceReport, graph: &FsGraph) -> Vec<Diagnostic> {
    let IdempotenceReport::NotIdempotent(cex) = report else {
        return Vec::new();
    };
    let mut d = Diagnostic::error(
        codes::NONIDEMPOTENT,
        "manifest is not idempotent: applying it twice differs from applying it once",
    )
    .with_note(format!(
        "first application {}",
        outcome_word(&cex.after_once)
    ))
    .with_note(format!(
        "second application {}",
        outcome_word(&cex.after_twice)
    ))
    .with_payload("after_once", outcome_word(&cex.after_once))
    .with_payload("after_twice", outcome_word(&cex.after_twice));
    if let Some(i) = idempotence_culprit(cex, graph) {
        d = d
            .with_primary(
                graph.span(i),
                format!("{}'s second application diverges", graph.names[i]),
            )
            .with_payload("resource", &graph.names[i]);
    } else if let Some(i) = (0..graph.names.len()).find(|&i| !graph.span(i).is_dummy()) {
        d = d.with_primary(graph.span(i), "first resource of the manifest");
    }
    vec![d]
}

/// An aborted analysis as a diagnostic (code `R3003`), anchored at the
/// top of the manifest (the abort has no narrower source location).
pub fn aborted_diagnostic(aborted: &AnalysisAborted) -> Diagnostic {
    Diagnostic::error(codes::ANALYSIS_ABORTED, aborted.to_string())
        .with_primary(Span::at(Pos::new(1, 1)), "while analyzing this manifest")
}

/// Renders an idempotence report.
pub fn render_idempotence(report: &IdempotenceReport) -> String {
    match report {
        IdempotenceReport::Idempotent => "idempotent\n".to_string(),
        IdempotenceReport::NotIdempotent(cex) => {
            let mut out = String::from("NOT IDEMPOTENT\ninitial state:\n");
            render_state(&cex.initial, "  ", &mut out);
            let _ = writeln!(
                out,
                "after one application: {}",
                describe_outcome(&cex.after_once)
            );
            let _ = writeln!(
                out,
                "after two applications: {}",
                describe_outcome(&cex.after_twice)
            );
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinism::{check_determinism, AnalysisOptions};
    use crate::idempotence::check_expr_idempotence;
    use rehearsal_fs::{Content, Expr, FsPath, Pred};
    use std::collections::BTreeSet;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn renders_nondeterministic_report() {
        let a = Expr::mkdir(p("/dir"));
        let b = Expr::create_file(p("/dir/f"), Content::intern("x"));
        let g = FsGraph::new(
            vec![a, b],
            BTreeSet::new(),
            vec!["File[/dir]".into(), "File[/dir/f]".into()],
        );
        let report = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        let text = render_determinism(&report, &g);
        assert!(text.contains("NON-DETERMINISTIC"), "{text}");
        assert!(text.contains("order A: "), "{text}");
        assert!(text.contains("File[/dir]"), "{text}");
        assert!(text.contains("outcome"), "{text}");
    }

    #[test]
    fn renders_deterministic_report() {
        let g = FsGraph::new(vec![Expr::SKIP], BTreeSet::new(), vec!["Notify[x]".into()]);
        let report = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        let text = render_determinism(&report, &g);
        assert!(text.starts_with("deterministic"), "{text}");
    }

    #[test]
    fn renders_divergent_success_states() {
        let w = |c: &str| {
            Expr::if_(
                Pred::does_not_exist(p("/f")),
                Expr::create_file(p("/f"), Content::intern(c)),
                Expr::SKIP,
            )
        };
        let g = FsGraph::new(
            vec![w("one"), w("two")],
            BTreeSet::new(),
            vec!["r1".into(), "r2".into()],
        );
        let report = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        let text = render_determinism(&report, &g);
        assert!(text.contains("states differ at:"), "{text}");
        assert!(text.contains("/f"), "{text}");
    }

    #[test]
    fn renders_idempotence_counterexample() {
        let report =
            check_expr_idempotence(Expr::mkdir(p("/a")), &AnalysisOptions::default()).unwrap();
        let text = render_idempotence(&report);
        assert!(text.contains("NOT IDEMPOTENT"), "{text}");
        assert!(text.contains("after two applications: error"), "{text}");
        let ok = render_idempotence(&IdempotenceReport::Idempotent);
        assert_eq!(ok, "idempotent\n");
    }
}
