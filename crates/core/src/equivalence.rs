//! Semantic equivalence of FS programs (paper §4.2): `e1 ≡ e2` iff they
//! produce the same outcome on every (tree-consistent) input filesystem.
//!
//! Equivalence checking is the primitive underneath both the determinacy
//! check (all permutations pairwise equivalent) and the idempotence check
//! (`e ≡ e; e`); exposing it directly makes the library usable for
//! manifest-refactoring workflows ("is my rewritten module observably the
//! same?").

use crate::determinism::{AnalysisAborted, AnalysisOptions};
use crate::domain::Domain;
use crate::encoder::Encoder;
use rehearsal_fs::{eval as concrete_eval, Expr, FileSystem};
use std::time::Instant;

/// The verdict of an equivalence query.
#[derive(Debug, Clone)]
pub enum EquivalenceReport {
    /// The programs agree on every input.
    Equivalent,
    /// A witness input on which they differ, with both replayed outcomes.
    Inequivalent {
        /// The distinguishing initial filesystem.
        witness: FileSystem,
        /// Concrete outcome of the first program.
        outcome_1: Result<FileSystem, rehearsal_fs::ExecError>,
        /// Concrete outcome of the second program.
        outcome_2: Result<FileSystem, rehearsal_fs::ExecError>,
    },
}

impl EquivalenceReport {
    /// Whether the programs are equivalent.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivalenceReport::Equivalent)
    }
}

/// Decides `e1 ≡ e2` (over tree-consistent inputs, compared on the bounded
/// domain of both programs — complete by the paper's Lemma 2 thanks to
/// fresh-child domain bounding).
///
/// # Errors
///
/// Returns [`AnalysisAborted`] on timeout.
///
/// # Examples
///
/// ```
/// use rehearsal_core::{check_expr_equivalence, AnalysisOptions};
/// use rehearsal_fs::{Expr, FsPath, Pred};
///
/// // The paper's §4.3 equivalence: a guarded mkdir and its expansion.
/// let p = FsPath::parse("/a")?;
/// let e1 = Expr::if_then(Pred::is_dir(p).not(), Expr::mkdir(p));
/// let e2 = Expr::if_(
///     Pred::does_not_exist(p),
///     Expr::mkdir(p),
///     Expr::if_(Pred::is_file(p), Expr::ERROR, Expr::SKIP),
/// );
/// let report = check_expr_equivalence(e1, e2, &AnalysisOptions::default())?;
/// assert!(report.is_equivalent());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check_expr_equivalence(
    e1: Expr,
    e2: Expr,
    options: &AnalysisOptions,
) -> Result<EquivalenceReport, AnalysisAborted> {
    let deadline = options.timeout.map(|t| Instant::now() + t);
    let domain = Domain::of_exprs([e1, e2]);
    let mut enc = Encoder::new(domain);
    let s0 = enc.initial_state();
    let o1 = enc.eval_expr(e1, &s0);
    let o2 = enc.eval_expr(e2, &s0);
    let diff = enc.states_differ(&o1, &o2);
    let solved = enc
        .ctx
        .solve_with_budget(diff, deadline, crate::determinism::interrupt_flag(options))
        .map_err(|_| crate::determinism::solve_abort_reason(options))?;
    match solved {
        None => Ok(EquivalenceReport::Equivalent),
        Some(model) => {
            let witness = enc.decode_state(&model, &s0);
            let outcome_1 = concrete_eval(e1, &witness);
            let outcome_2 = concrete_eval(e2, &witness);
            Ok(EquivalenceReport::Inequivalent {
                witness,
                outcome_1,
                outcome_2,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::{Content, FsPath, Pred};

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn opts() -> AnalysisOptions {
        AnalysisOptions::default()
    }

    #[test]
    fn identical_programs_are_equivalent() {
        let e = Expr::mkdir(p("/a"));
        assert!(check_expr_equivalence(e, e, &opts())
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn paper_emptydir_vs_dir_witness_populates_directory() {
        // §4.1's completeness example.
        let e1 = Expr::if_(Pred::is_empty_dir(p("/a")), Expr::SKIP, Expr::ERROR);
        let e2 = Expr::if_(Pred::is_dir(p("/a")), Expr::SKIP, Expr::ERROR);
        match check_expr_equivalence(e1, e2, &opts()).unwrap() {
            EquivalenceReport::Inequivalent {
                witness,
                outcome_1,
                outcome_2,
            } => {
                assert!(witness.is_dir(p("/a")));
                assert!(
                    witness.iter().any(|(q, _)| p("/a").is_parent_of(q)),
                    "witness must place something inside /a"
                );
                assert_ne!(outcome_1, outcome_2);
            }
            EquivalenceReport::Equivalent => panic!("must differ"),
        }
    }

    #[test]
    fn commuting_writes_make_equal_sequences() {
        let a = Expr::create_file(p("/x"), Content::intern("1"));
        let b = Expr::create_file(p("/y"), Content::intern("2"));
        let ab = a.seq(b);
        let ba = b.seq(a);
        assert!(check_expr_equivalence(ab, ba, &opts())
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn content_difference_is_detected() {
        let e1 = Expr::create_file(p("/x"), Content::intern("one"));
        let e2 = Expr::create_file(p("/x"), Content::intern("two"));
        let report = check_expr_equivalence(e1, e2, &opts()).unwrap();
        assert!(!report.is_equivalent());
    }

    #[test]
    fn skip_vs_error_guard() {
        let e1 = Expr::SKIP;
        let e2 = Expr::if_(Pred::is_file(p("/f")), Expr::ERROR, Expr::SKIP);
        match check_expr_equivalence(e1, e2, &opts()).unwrap() {
            EquivalenceReport::Inequivalent { witness, .. } => {
                assert!(witness.is_file(p("/f")));
            }
            EquivalenceReport::Equivalent => panic!("must differ when /f is a file"),
        }
    }
}
