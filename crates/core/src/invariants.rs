//! Invariant checking (paper §5): once a manifest is deterministic, simple
//! post-state invariants are single symbolic queries over the sequenced
//! expression — e.g. "the manifest always leaves `p` a file with content
//! `c`" is the unsatisfiability of `ok(e)σ ∧ f(e)σ(p) ≠ file(c)`.

use crate::determinism::{AnalysisAborted, AnalysisOptions, FsGraph};
use crate::domain::{Domain, PathValue};
use crate::encoder::Encoder;
use rehearsal_fs::{Content, Expr, FileSystem, FsPath};
use std::fmt;

/// A post-state invariant to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Invariant {
    /// After a successful run, `path` is a file with exactly `content`.
    FileWithContent(FsPath, Content),
    /// After a successful run, `path` is a file (any content).
    IsFile(FsPath),
    /// After a successful run, `path` is a directory.
    IsDir(FsPath),
    /// After a successful run, `path` does not exist.
    Absent(FsPath),
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Invariant::FileWithContent(p, c) => {
                write!(f, "{p} is a file with content {:?}", c.as_string())
            }
            Invariant::IsFile(p) => write!(f, "{p} is a file"),
            Invariant::IsDir(p) => write!(f, "{p} is a directory"),
            Invariant::Absent(p) => write!(f, "{p} is absent"),
        }
    }
}

/// The verdict of an invariant check.
#[derive(Debug, Clone)]
pub enum InvariantReport {
    /// The invariant holds on every successful run.
    Holds,
    /// An initial state exists on which the run succeeds but the invariant
    /// fails afterwards.
    Violated {
        /// The witnessing initial state.
        initial: FileSystem,
    },
}

impl InvariantReport {
    /// Whether the invariant holds.
    pub fn holds(&self) -> bool {
        matches!(self, InvariantReport::Holds)
    }
}

/// Checks an invariant against a single expression.
///
/// # Errors
///
/// Returns [`AnalysisAborted`] on timeout (currently only a placeholder,
/// the query is a single solve).
pub fn check_expr_invariant(
    e: Expr,
    invariant: &Invariant,
    _options: &AnalysisOptions,
) -> Result<InvariantReport, AnalysisAborted> {
    let path = match invariant {
        Invariant::FileWithContent(p, _) => *p,
        Invariant::IsFile(p) | Invariant::IsDir(p) | Invariant::Absent(p) => *p,
    };
    // Make sure the path is part of the domain even if the program never
    // touches it (raw interning: the smart `if_` might fold this away).
    let probe = Expr::intern(rehearsal_fs::ExprNode::If(
        rehearsal_fs::Pred::is_file(path),
        Expr::SKIP,
        Expr::ERROR,
    ));
    let domain = Domain::of_exprs([e, probe]);
    let mut enc = Encoder::new(domain);
    let s0 = enc.initial_state();
    let out = enc.eval_expr(e, &s0);
    let final_term = out.fs[&path];
    let satisfied = match invariant {
        Invariant::FileWithContent(_, c) => {
            let code = enc.values.code(PathValue::File(*c));
            enc.ctx.bit(final_term, code)
        }
        Invariant::IsFile(_) => enc.is_file(&out, path),
        Invariant::IsDir(_) => enc.is_dir(&out, path),
        Invariant::Absent(_) => enc.is_dne(&out, path),
    };
    let violated = enc.ctx.not(satisfied);
    let query = enc.ctx.and2(out.ok, violated);
    match enc.ctx.solve(query) {
        None => Ok(InvariantReport::Holds),
        Some(model) => {
            let initial = enc.decode_state(&model, &s0);
            Ok(InvariantReport::Violated { initial })
        }
    }
}

/// Checks an invariant against a (deterministic) resource graph.
///
/// # Errors
///
/// Returns [`AnalysisAborted`] on timeout.
pub fn check_invariant(
    graph: &FsGraph,
    invariant: &Invariant,
    options: &AnalysisOptions,
) -> Result<InvariantReport, AnalysisAborted> {
    let order = graph.topological_order();
    let seq = Expr::seq_all(order.into_iter().map(|i| graph.exprs[i]));
    check_expr_invariant(seq, invariant, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::Pred;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn overwrite(path: FsPath, c: Content) -> Expr {
        Expr::if_(
            Pred::does_not_exist(path),
            Expr::create_file(path, c),
            Expr::if_(
                Pred::is_file(path),
                Expr::rm(path).seq(Expr::create_file(path, c)),
                Expr::ERROR,
            ),
        )
    }

    #[test]
    fn overwrite_guarantees_content() {
        let c = Content::intern("motd");
        let e = overwrite(p("/etc/motd"), c);
        let inv = Invariant::FileWithContent(p("/etc/motd"), c);
        let r = check_expr_invariant(e, &inv, &AnalysisOptions::default()).unwrap();
        assert!(r.holds());
        // And also the weaker invariant.
        let r2 = check_expr_invariant(
            e,
            &Invariant::IsFile(p("/etc/motd")),
            &AnalysisOptions::default(),
        )
        .unwrap();
        assert!(r2.holds());
    }

    #[test]
    fn conditional_write_violates_content_invariant() {
        // Writes only when absent: a pre-existing file with other content
        // survives — the "one resource overwrites another" concern of §5.
        let c = Content::intern("mine");
        let f = p("/f");
        let e = Expr::if_(
            Pred::does_not_exist(f),
            Expr::create_file(f, c),
            Expr::if_(Pred::is_file(f), Expr::SKIP, Expr::ERROR),
        );
        let inv = Invariant::FileWithContent(f, c);
        let r = check_expr_invariant(e, &inv, &AnalysisOptions::default()).unwrap();
        match r {
            InvariantReport::Violated { initial } => {
                assert!(initial.is_file(f), "witness has a pre-existing file");
            }
            InvariantReport::Holds => panic!("invariant should be violated"),
        }
    }

    #[test]
    fn absent_invariant() {
        let f = p("/tmp/scratch");
        let e = Expr::if_(
            Pred::is_file(f),
            Expr::rm(f),
            Expr::if_(Pred::does_not_exist(f), Expr::SKIP, Expr::ERROR),
        );
        let r =
            check_expr_invariant(e, &Invariant::Absent(f), &AnalysisOptions::default()).unwrap();
        assert!(r.holds());
    }

    #[test]
    fn dir_invariant_on_untouched_path_fails() {
        let e = Expr::SKIP;
        let r = check_expr_invariant(e, &Invariant::IsDir(p("/var")), &AnalysisOptions::default())
            .unwrap();
        assert!(!r.holds(), "skip guarantees nothing about /var");
    }
}
