//! Multi-core permutation exploration (the `--threads N` engine).
//!
//! The sequential explorer ([`crate::determinism`]) walks the POR-reduced
//! interleaving tree depth-first with one encoder and one incremental
//! solver. This module splits that walk across OS threads while keeping
//! the verdict **bit-identical** for every thread count:
//!
//! 1. **Structural frontier.** The first few levels of the interleaving
//!    tree are expanded *without an encoder* — `ExploreShape`'s branch
//!    candidates depend only on the `remaining` bitset — into a fixed,
//!    thread-count-independent list of `(prefix, remaining)` work items
//!    whose subtrees partition the sequence space.
//! 2. **Work stealing.** Items are dealt round-robin to per-worker
//!    deques; an idle worker pops its own front and steals from the back
//!    of the longest victim queue (the same discipline as the fleet
//!    scheduler). Steals are counted into the `explorer.steals` metric.
//! 3. **Per-worker encoders.** [`Ctx`](rehearsal_solver::Ctx) is
//!    single-threaded by design, so each worker owns an encoder plus a
//!    persistent incremental solver. Workers exchange knowledge through
//!    three shared structures, all built on
//!    [`rehearsal_sync::ShardedMap`]:
//!    * a **state cache** keyed by `(remaining, state digest)` — the
//!      128-bit structural digest is stable across same-domain encoders,
//!      so a subtree completed by one worker is skipped by all;
//!    * an **output registry** keyed by state digest, holding one
//!      representative sequence per distinct symbolic output;
//!    * a bounded **learnt-clause pool**: short clauses proved over the
//!      shared variable prefix (everything allocated by
//!      `initial_state`) are published after each SAT call and imported
//!      by siblings before theirs.
//! 4. **Baseline comparison.** Every worker evaluates one fixed
//!    topological order as its *baseline* output. A newly discovered
//!    distinct output is checked against the baseline in the finding
//!    worker's own context. By POR soundness the baseline is semantically
//!    equal to some explored output, so "some output differs from the
//!    baseline on some input" is equivalent to the sequential "some
//!    output differs from the first output" — the verdict transfers.
//! 5. **Deterministic accounting.** `sequences_explored` and
//!    `distinct_outputs` are exact and thread-count-invariant (each leaf
//!    is counted exactly once, by construction of the disjoint
//!    subtrees). Scheduling-dependent counters (`sequences_skipped`,
//!    `state_cache_hits`, per-solver work) are summed honestly but vary
//!    run-to-run; `--threads 1` bypasses this module entirely and
//!    reproduces the sequential statistics bit-for-bit.
//!
//! A divergence found by any worker is decoded to a concrete initial
//! filesystem *in that worker's context*, stored first-writer-wins, and
//! propagated to the others through an abort flag (which also interrupts
//! in-flight SAT calls). A divergence always wins over a concurrent
//! cap/timeout abort: the evidence is already replayable.

use crate::bitset::Bits;
use crate::determinism::{
    interrupt_flag, solve_abort_reason, AnalysisAborted, AnalysisOptions, ExploreShape, FsGraph,
};
use crate::domain::Domain;
use crate::encoder::{Encoder, SymState};
use rehearsal_fs::{FileSystem, FsPath};
use rehearsal_solver::{ClausePool, CtxStats, GroundingStats};
use rehearsal_sync::ShardedMap;
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Target size of the structural frontier. Fixed (never derived from the
/// thread count) so the work decomposition — and with it every exact
/// counter — is identical no matter how many workers run it.
const FRONTIER_TARGET: usize = 128;

/// Maximum literal count for clauses exchanged through the pool; longer
/// learnt clauses rarely pay for their import cost.
const SHARED_CLAUSE_MAX_LEN: usize = 8;

/// Divergence evidence: a concrete initial filesystem plus two orders
/// (pruned-graph indices) that provably produce different outcomes.
pub(crate) type Divergence = (FileSystem, Vec<usize>, Vec<usize>);

/// Everything the parallel exploration learned, merged deterministically
/// (exact counters are sums over disjoint subtrees; context gauges are
/// maxima; solver counters are honest sums).
pub(crate) struct ParallelOutcome {
    pub(crate) divergence: Option<Divergence>,
    pub(crate) explored: u64,
    pub(crate) skipped: u64,
    pub(crate) cache_hits: u64,
    pub(crate) distinct_outputs: usize,
    pub(crate) tracked_paths: usize,
    pub(crate) ctx: CtxStats,
    pub(crate) grounding: GroundingStats,
    pub(crate) solver_conflicts: u64,
    pub(crate) solver_decisions: u64,
    pub(crate) solver_propagations: u64,
    pub(crate) steals: u64,
    pub(crate) clauses_shared: u64,
}

impl ParallelOutcome {
    /// Publishes the merged counters under the same metric names the
    /// sequential path uses, plus the parallel-only `explorer.*` series.
    pub(crate) fn publish_trace_metrics(&self) {
        if !rehearsal_trace::is_active() {
            return;
        }
        rehearsal_trace::gauge_max("ctx.formula_nodes", self.ctx.formula_nodes as i64);
        rehearsal_trace::gauge_max("ctx.term_nodes", self.ctx.term_nodes as i64);
        rehearsal_trace::gauge_max(
            "ctx.dedup_hits",
            (self.ctx.formula_dedup_hits + self.ctx.term_dedup_hits) as i64,
        );
        rehearsal_trace::counter_add("sat.conflicts", self.solver_conflicts);
        rehearsal_trace::counter_add("sat.decisions", self.solver_decisions);
        rehearsal_trace::counter_add("sat.propagations", self.solver_propagations);
        rehearsal_trace::counter_add("sat.grounded_nodes", self.grounding.grounded_nodes);
        rehearsal_trace::counter_add("sat.grounded_clauses", self.grounding.grounded_clauses);
        rehearsal_trace::counter_add("sat.grounding_reused", self.grounding.reused_nodes);
        rehearsal_trace::counter_add("explorer.steals", self.steals);
        rehearsal_trace::counter_add("explorer.clauses_shared", self.clauses_shared);
    }
}

/// State shared by every worker of one exploration.
struct SharedExplore {
    /// Completed subtrees: `(remaining, state digest)` → sequences
    /// covered. Entries are inserted only after a subtree completes, with
    /// the inserting worker's *local* leaf delta, so a hit always adds an
    /// exact count.
    visited: ShardedMap<(Bits, u128), u64>,
    /// Distinct symbolic outputs: state digest → index into
    /// `output_seqs`. Index 0 is always the baseline.
    outputs: ShardedMap<u128, usize>,
    /// One representative sequence per distinct output, in registration
    /// order (paired with its digest).
    output_seqs: Mutex<Vec<(Vec<usize>, u128)>>,
    /// Whether some explored leaf reproduced the baseline digest (used to
    /// keep `distinct_outputs` equal to the sequential count, which never
    /// includes the baseline as an extra entry).
    baseline_observed: AtomicBool,
    /// Total sequences covered across workers, for the `max_sequences`
    /// cap. Worker-local counters, not this one, feed cache entries.
    explored_global: AtomicU64,
    /// Cooperative stop: set on divergence, error, or cancellation; also
    /// passed to in-flight SAT calls as their interrupt flag.
    abort: Arc<AtomicBool>,
    /// First divergence found, with replayable evidence.
    divergence: Mutex<Option<Divergence>>,
    /// Learnt clauses over the shared variable prefix.
    pool: ClausePool,
}

impl SharedExplore {
    fn new() -> SharedExplore {
        SharedExplore {
            visited: ShardedMap::new(),
            outputs: ShardedMap::new(),
            output_seqs: Mutex::new(Vec::new()),
            baseline_observed: AtomicBool::new(false),
            explored_global: AtomicU64::new(0),
            abort: Arc::new(AtomicBool::new(false)),
            divergence: Mutex::new(None),
            pool: ClausePool::default(),
        }
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// Registers an output digest, returning `(index, freshly inserted)`.
    /// First-writer-wins across workers; the sequence is stored only for
    /// fresh digests.
    fn register_output(&self, digest: u128, seq: &[usize]) -> (usize, bool) {
        if let Some(idx) = self.outputs.get(&digest) {
            return (idx, false);
        }
        let mut seqs = self.output_seqs.lock().expect("output registry poisoned");
        // Double-check under the lock: a sibling may have won the race.
        if let Some(idx) = self.outputs.get(&digest) {
            return (idx, false);
        }
        let idx = seqs.len();
        seqs.push((seq.to_vec(), digest));
        self.outputs.insert_if_absent(digest, idx);
        (idx, true)
    }
}

/// One work item: a committed prefix and the nodes still to schedule.
type WorkItem = (Vec<usize>, Bits);

/// Expands the interleaving tree level by level — purely structurally,
/// using only [`ExploreShape::branch_candidates`] — until at least
/// `target` items exist or every item is a complete sequence. The items'
/// subtrees partition the POR-reduced sequence space.
fn expand_frontier(shape: &ExploreShape, n: usize, target: usize) -> Vec<WorkItem> {
    let mut items: Vec<WorkItem> = vec![(Vec::new(), Bits::full(n))];
    while items.len() < target {
        let mut next: Vec<WorkItem> = Vec::with_capacity(items.len() * 2);
        let mut expanded = false;
        for (prefix, remaining) in &items {
            if remaining.is_empty() {
                next.push((prefix.clone(), remaining.clone()));
                continue;
            }
            expanded = true;
            for &e in &shape.branch_candidates(remaining) {
                let mut p = prefix.clone();
                p.push(e);
                next.push((p, remaining.without(e)));
            }
        }
        items = next;
        if !expanded {
            break;
        }
    }
    items
}

/// A DFS frame of the worker-local subtree walk (the worker-mode twin of
/// the sequential explorer's frame).
struct WFrame {
    remaining: Bits,
    state: SymState,
    candidates: Vec<usize>,
    next: usize,
    pushed: bool,
    entered: bool,
    explored_at_entry: u64,
    key: Option<(Bits, u128)>,
}

impl WFrame {
    fn unentered(remaining: Bits, state: SymState) -> WFrame {
        WFrame {
            remaining,
            state,
            candidates: Vec::new(),
            next: 0,
            pushed: false,
            entered: false,
            explored_at_entry: 0,
            key: None,
        }
    }
}

/// Per-worker counters handed back to the merge step.
struct WorkerStats {
    explored: u64,
    skipped: u64,
    cache_hits: u64,
    tracked_paths: usize,
    ctx: CtxStats,
    grounding: GroundingStats,
    solver: rehearsal_solver::SolverStats,
    steals: u64,
}

/// One exploration worker: its own encoder, incremental solver, baseline
/// output, and clause-pool cursor. Built lazily, on the worker's own
/// thread (the context is single-threaded), when the first item arrives.
struct Worker<'a> {
    graph: &'a FsGraph,
    shape: &'a ExploreShape,
    options: &'a AnalysisOptions,
    deadline: Option<Instant>,
    shared: &'a SharedExplore,
    enc: Encoder,
    initial: SymState,
    baseline_state: SymState,
    baseline_seq: &'a [usize],
    watermark: u32,
    pool_cursor: usize,
    explored: u64,
    skipped: u64,
    cache_hits: u64,
}

impl<'a> Worker<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        graph: &'a FsGraph,
        shape: &'a ExploreShape,
        options: &'a AnalysisOptions,
        deadline: Option<Instant>,
        shared: &'a SharedExplore,
        domain: Domain,
        read_only: &BTreeSet<FsPath>,
        baseline_seq: &'a [usize],
    ) -> Worker<'a> {
        let mut enc = Encoder::new(domain);
        for &p in read_only {
            enc.mark_read_only(p);
        }
        let initial = enc.initial_state();
        // Everything allocated so far — the finite-domain variables and
        // their one-hot bits — is identical across workers (deterministic
        // domain order), so clauses over variables below this watermark
        // transfer between their solvers.
        let watermark = enc.ctx.watermark();
        let mut baseline_state = initial.clone();
        for &e in baseline_seq {
            baseline_state = enc.eval_expr(graph.exprs[e], &baseline_state);
        }
        let baseline_digest = enc.state_digest(&baseline_state);
        shared.register_output(baseline_digest, baseline_seq);
        Worker {
            graph,
            shape,
            options,
            deadline,
            shared,
            enc,
            initial,
            baseline_state,
            baseline_seq,
            watermark,
            pool_cursor: 0,
            explored: 0,
            skipped: 0,
            cache_hits: 0,
        }
    }

    fn check_budget(&self) -> Result<(), AnalysisAborted> {
        if let Some(token) = &self.options.cancel {
            if token.is_cancelled() {
                return Err(AnalysisAborted {
                    reason: "cancelled during permutation exploration".to_string(),
                });
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                return Err(AnalysisAborted {
                    reason: "timeout during permutation exploration".to_string(),
                });
            }
        }
        Ok(())
    }

    /// Adds `k` covered sequences to the global total, enforcing the cap.
    fn bump_global(&self, k: u64) -> Result<(), AnalysisAborted> {
        let total = self.shared.explored_global.fetch_add(k, Ordering::Relaxed) + k;
        if total > self.options.max_sequences as u64 {
            return Err(AnalysisAborted {
                reason: format!(
                    "more than {} sequences explored",
                    self.options.max_sequences
                ),
            });
        }
        Ok(())
    }

    /// Records a completed sequence; on early exit, checks fresh distinct
    /// outputs against this worker's baseline. Returns `true` when a
    /// divergence was found (and the abort flag raised).
    fn record_leaf(&mut self, state: SymState, prefix: &[usize]) -> Result<bool, AnalysisAborted> {
        self.explored += 1;
        self.bump_global(1)?;
        let digest = self.enc.state_digest(&state);
        let (idx, fresh) = self.shared.register_output(digest, prefix);
        if !fresh {
            if idx == 0 {
                self.shared.baseline_observed.store(true, Ordering::Relaxed);
            }
            return Ok(false);
        }
        if !self.options.early_exit {
            return Ok(false);
        }
        let d = self.enc.states_differ(&self.baseline_state, &state);
        if self.enc.ctx.is_false(d) {
            return Ok(false);
        }
        // Clause exchange around the SAT call: import what siblings
        // proved over the shared prefix, solve, publish what we learnt.
        let (fresh_clauses, cursor) = self.shared.pool.fetch_since(self.pool_cursor);
        self.pool_cursor = cursor;
        if !fresh_clauses.is_empty() {
            self.enc.ctx.import_clauses(&fresh_clauses, self.watermark);
        }
        let solved =
            self.enc
                .ctx
                .solve_assuming(d, self.deadline, Some(Arc::clone(&self.shared.abort)));
        self.shared.pool.publish(
            self.enc
                .ctx
                .export_learnt_clauses(SHARED_CLAUSE_MAX_LEN, self.watermark),
        );
        match solved {
            Ok(None) => Ok(false),
            Ok(Some(model)) => {
                let init_fs = self.enc.decode_state(&model, &self.initial);
                let mut slot = self.shared.divergence.lock().expect("divergence poisoned");
                if slot.is_none() {
                    *slot = Some((init_fs, self.baseline_seq.to_vec(), prefix.to_vec()));
                }
                drop(slot);
                self.shared.abort.store(true, Ordering::Relaxed);
                Ok(true)
            }
            Err(_) => {
                // The solver aborts on deadline, cancellation, or the
                // shared abort flag. Only the first two are *this*
                // worker's errors; a sibling's abort just means stop.
                self.check_budget()?;
                Ok(false)
            }
        }
    }

    /// Explores one work item's subtree to completion (the worker-mode
    /// twin of the sequential DFS: same fringe logic, shared caches).
    /// Returns `true` when this worker found a divergence.
    fn run_item(&mut self, item: WorkItem) -> Result<bool, AnalysisAborted> {
        let (mut prefix, remaining) = item;
        self.check_budget()?;
        let mut state = self.initial.clone();
        for &e in &prefix {
            state = self.enc.eval_expr(self.graph.exprs[e], &state);
        }
        let mut stack: Vec<WFrame> = vec![WFrame::unentered(remaining, state)];
        let mut iterations: u64 = 0;

        fn return_to_parent(stack: &mut [WFrame], prefix: &mut Vec<usize>) {
            if let Some(parent) = stack.last_mut() {
                if parent.pushed {
                    prefix.pop();
                    parent.pushed = false;
                }
            }
        }

        while !stack.is_empty() {
            if self.shared.aborted() {
                return Ok(false);
            }
            iterations += 1;
            if iterations & 0xFFF == 0 {
                rehearsal_trace::event("explore.frames.4k", "core");
            }
            let top = stack.last_mut().expect("non-empty stack");
            if !top.entered {
                top.entered = true;
                self.check_budget()?;
                if top.remaining.is_empty() {
                    let frame = stack.pop().expect("frame on stack");
                    if self.record_leaf(frame.state, &prefix)? {
                        return Ok(true);
                    }
                    return_to_parent(&mut stack, &mut prefix);
                    continue;
                }
                if self.options.state_cache {
                    let digest = self.enc.state_digest(&top.state);
                    let key = (top.remaining.clone(), digest);
                    if let Some(count) = self.shared.visited.get(&key) {
                        self.cache_hits += 1;
                        self.skipped += count;
                        self.explored += count;
                        self.bump_global(count)?;
                        stack.pop();
                        return_to_parent(&mut stack, &mut prefix);
                        continue;
                    }
                    top.key = Some(key);
                }
                top.explored_at_entry = self.explored;
                let candidates = self.shape.branch_candidates(&top.remaining);
                let top = stack.last_mut().expect("non-empty stack");
                top.candidates = candidates;
            }

            let top = stack.last_mut().expect("non-empty stack");
            if top.next < top.candidates.len() {
                let e = top.candidates[top.next];
                top.next += 1;
                let next_state = self.enc.eval_expr(self.graph.exprs[e], &top.state);
                let rest = top.remaining.without(e);
                top.pushed = true;
                prefix.push(e);
                stack.push(WFrame::unentered(rest, next_state));
            } else {
                let frame = stack.pop().expect("frame on stack");
                if let Some(key) = frame.key {
                    // First writer wins: racing workers computed the same
                    // exact subtree count, so either entry is correct.
                    self.shared
                        .visited
                        .insert_if_absent(key, self.explored - frame.explored_at_entry);
                }
                return_to_parent(&mut stack, &mut prefix);
            }
        }
        Ok(false)
    }

    fn finish(self, steals: u64) -> WorkerStats {
        WorkerStats {
            explored: self.explored,
            skipped: self.skipped,
            cache_hits: self.cache_hits,
            tracked_paths: self.enc.tracked_paths(),
            ctx: self.enc.ctx.stats(),
            grounding: self.enc.ctx.grounding_stats(),
            solver: self.enc.ctx.solver_stats(),
            steals,
        }
    }
}

/// Pops the caller's own front, or steals from the back of the longest
/// sibling queue (re-scanning until every queue is observed empty).
fn next_item(
    queues: &[Mutex<VecDeque<WorkItem>>],
    own: usize,
    steals: &mut u64,
) -> Option<WorkItem> {
    if let Some(item) = queues[own].lock().expect("work queue poisoned").pop_front() {
        return Some(item);
    }
    loop {
        let mut victim = None;
        let mut best_len = 0;
        for (i, q) in queues.iter().enumerate() {
            if i == own {
                continue;
            }
            let len = q.lock().expect("work queue poisoned").len();
            if len > best_len {
                best_len = len;
                victim = Some(i);
            }
        }
        let v = victim?;
        if let Some(item) = queues[v].lock().expect("work queue poisoned").pop_back() {
            *steals += 1;
            return Some(item);
        }
        // The victim drained between the scan and the pop; rescan.
    }
}

/// Explores the (pruned) graph's interleavings on `options.threads`
/// workers and decides determinism. Only called with `threads > 1`; the
/// sequential path never enters this module.
pub(crate) fn explore_parallel(
    graph: &FsGraph,
    options: &AnalysisOptions,
    deadline: Option<Instant>,
    shape: &ExploreShape,
    domain: &Domain,
    read_only: &BTreeSet<FsPath>,
) -> Result<ParallelOutcome, AnalysisAborted> {
    let n = graph.exprs.len();
    let threads = options.threads.max(1);
    let items = expand_frontier(shape, n, FRONTIER_TARGET);
    let topo = graph.topological_order();
    let shared = SharedExplore::new();

    let queues: Vec<Mutex<VecDeque<WorkItem>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % threads]
            .lock()
            .expect("work queue poisoned")
            .push_back(item);
    }
    let error: Mutex<Option<AnalysisAborted>> = Mutex::new(None);
    let sink: Mutex<Vec<WorkerStats>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        let (queues, shared, error, sink, topo) = (&queues, &shared, &error, &sink, &topo);
        for w in 0..threads {
            s.spawn(move || {
                let mut steals = 0u64;
                let mut worker: Option<Worker<'_>> = None;
                loop {
                    if shared.aborted() {
                        break;
                    }
                    let Some(item) = next_item(queues, w, &mut steals) else {
                        break;
                    };
                    let wk = worker.get_or_insert_with(|| {
                        Worker::new(
                            graph,
                            shape,
                            options,
                            deadline,
                            shared,
                            domain.clone(),
                            read_only,
                            topo,
                        )
                    });
                    match wk.run_item(item) {
                        Ok(true) => break,
                        Ok(false) => {}
                        Err(e) => {
                            let mut slot = error.lock().expect("error slot poisoned");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            drop(slot);
                            shared.abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                if let Some(wk) = worker {
                    sink.lock()
                        .expect("stats sink poisoned")
                        .push(wk.finish(steals));
                }
            });
        }
    });

    // Merge worker counters: exact counts sum over disjoint subtrees,
    // context sizes take the per-worker maximum, solver work sums.
    let workers = sink.into_inner().expect("stats sink poisoned");
    let mut ctx = CtxStats::default();
    let mut grounding = GroundingStats::default();
    let mut outcome = ParallelOutcome {
        divergence: None,
        explored: 0,
        skipped: 0,
        cache_hits: 0,
        distinct_outputs: 0,
        tracked_paths: workers.first().map_or(0, |w| w.tracked_paths),
        ctx: CtxStats::default(),
        grounding: GroundingStats::default(),
        solver_conflicts: 0,
        solver_decisions: 0,
        solver_propagations: 0,
        steals: 0,
        clauses_shared: shared.pool.len() as u64,
    };
    for w in &workers {
        ctx.merge(&w.ctx);
        grounding.merge(&w.grounding);
        outcome.explored += w.explored;
        outcome.skipped += w.skipped;
        outcome.cache_hits += w.cache_hits;
        outcome.solver_conflicts += w.solver.conflicts;
        outcome.solver_decisions += w.solver.decisions;
        outcome.solver_propagations += w.solver.propagations;
        outcome.steals += w.steals;
    }

    // A divergence wins over a concurrent cap/timeout abort: the evidence
    // is complete and replayable regardless of what the siblings hit.
    let divergence = shared
        .divergence
        .lock()
        .expect("divergence poisoned")
        .take();
    if divergence.is_none() {
        if let Some(e) = error.into_inner().expect("error slot poisoned") {
            return Err(e);
        }
    }

    let output_seqs = shared
        .output_seqs
        .lock()
        .expect("output registry poisoned")
        .clone();
    // The registry holds the baseline plus every distinct explored
    // output; the sequential `distinct_outputs` counts only the latter,
    // so subtract the baseline unless some leaf reproduced it.
    let baseline_extra = usize::from(!shared.baseline_observed.load(Ordering::Relaxed));
    outcome.distinct_outputs = output_seqs.len().saturating_sub(baseline_extra);

    let divergence = match divergence {
        Some(d) => Some(d),
        // Early exit off: nobody solved during exploration; fall back to
        // the sequential path's monolithic disjunction, replaying each
        // representative sequence in a fresh context.
        None if !options.early_exit && output_seqs.len() > 1 => {
            let _span = rehearsal_trace::span_cat("solve.final", "core");
            let mut enc = Encoder::new(domain.clone());
            for &p in read_only {
                enc.mark_read_only(p);
            }
            let initial = enc.initial_state();
            let replayed: Vec<SymState> = output_seqs
                .iter()
                .map(|(seq, _)| {
                    let mut st = initial.clone();
                    for &e in seq {
                        st = enc.eval_expr(graph.exprs[e], &st);
                    }
                    st
                })
                .collect();
            let mut disjuncts = Vec::new();
            for other in &replayed[1..] {
                let d = enc.states_differ(&replayed[0], other);
                disjuncts.push(d);
            }
            let any_diff = enc.ctx.or(disjuncts.clone());
            let solved = enc
                .ctx
                .solve_with_budget(any_diff, deadline, interrupt_flag(options))
                .map_err(|_| solve_abort_reason(options))?;
            let found = solved.map(|model| {
                let mut which = 1;
                for (k, d) in disjuncts.iter().enumerate() {
                    if model.formula_value_in(&enc.ctx, *d) {
                        which = k + 1;
                        break;
                    }
                }
                let init_fs = enc.decode_state(&model, &initial);
                (
                    init_fs,
                    output_seqs[0].0.clone(),
                    output_seqs[which].0.clone(),
                )
            });
            // The final query's solver work is real; fold it in.
            ctx.merge(&enc.ctx.stats());
            grounding.merge(&enc.ctx.grounding_stats());
            let solver = enc.ctx.solver_stats();
            outcome.solver_conflicts += solver.conflicts;
            outcome.solver_decisions += solver.decisions;
            outcome.solver_propagations += solver.propagations;
            found
        }
        None => None,
    };
    outcome.divergence = divergence;
    outcome.ctx = ctx;
    outcome.grounding = grounding;
    Ok(outcome)
}
