//! The end-to-end Rehearsal pipeline: Puppet source → parse → evaluate →
//! resource graph → resource compiler → determinacy and idempotency
//! analyses.

use crate::determinism::{
    check_determinism, AnalysisAborted, AnalysisOptions, DeterminismReport, FsGraph,
};
use crate::idempotence::{check_idempotence, IdempotenceReport};
use crate::invariants::{check_invariant, Invariant, InvariantReport};
use crate::report::{aborted_diagnostic, determinism_diagnostics, idempotence_diagnostics};
use rehearsal_diag::{Diagnostic, SourceMap};
use rehearsal_pkgdb::{PackageDb, Platform};
use rehearsal_puppet::{
    evaluate, parse, Catalog, CycleError, EvalError, Facts, ParseError, ResourceGraph,
};
use rehearsal_resources::{compile, CompileCtx, CompileError};
use std::fmt;

/// Which pipeline stage a [`RehearsalError`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RehearsalErrorKind {
    /// Lexing/parsing failed.
    Parse,
    /// Catalog compilation failed.
    Eval,
    /// The dependency graph has a cycle (e.g. the paper's fig. 3b
    /// composition).
    Cycle,
    /// A resource could not be modeled as an FS program.
    Compile,
    /// The analysis ran out of time or space.
    Aborted,
}

/// Any error on the road from manifest text to a verdict: a thin wrapper
/// over source-anchored [`Diagnostic`]s, tagged with the pipeline stage.
///
/// `Display` keeps the historical one-line message (e.g.
/// `parse error at 3:7: unexpected token`); use
/// [`RehearsalError::diagnostics`] for the structured findings with spans
/// and stable codes, and a [`SourceMap`] to render snippets.
#[derive(Debug, Clone)]
pub struct RehearsalError {
    kind: RehearsalErrorKind,
    message: String,
    diagnostics: Vec<Diagnostic>,
}

impl RehearsalError {
    fn new(kind: RehearsalErrorKind, message: String, diagnostics: Vec<Diagnostic>) -> Self {
        RehearsalError {
            kind,
            message,
            diagnostics,
        }
    }

    /// Which stage failed.
    pub fn kind(&self) -> RehearsalErrorKind {
        self.kind
    }

    /// The structured findings (≥ 1; the first is the principal error).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consumes the error into its findings.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// The principal finding's stable code (e.g. `R0001`).
    pub fn code(&self) -> &str {
        self.diagnostics
            .first()
            .map(|d| d.code.as_str())
            .unwrap_or("R0000")
    }
}

impl fmt::Display for RehearsalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for RehearsalError {}

impl From<ParseError> for RehearsalError {
    fn from(e: ParseError) -> Self {
        RehearsalError::new(
            RehearsalErrorKind::Parse,
            e.to_string(),
            vec![e.to_diagnostic()],
        )
    }
}
impl From<EvalError> for RehearsalError {
    fn from(e: EvalError) -> Self {
        RehearsalError::new(
            RehearsalErrorKind::Eval,
            e.to_string(),
            vec![e.to_diagnostic()],
        )
    }
}
impl From<CycleError> for RehearsalError {
    fn from(e: CycleError) -> Self {
        RehearsalError::new(
            RehearsalErrorKind::Cycle,
            e.to_string(),
            vec![e.to_diagnostic()],
        )
    }
}
impl From<CompileError> for RehearsalError {
    fn from(e: CompileError) -> Self {
        RehearsalError::new(
            RehearsalErrorKind::Compile,
            e.to_string(),
            vec![e.to_diagnostic()],
        )
    }
}
impl From<AnalysisAborted> for RehearsalError {
    fn from(e: AnalysisAborted) -> Self {
        let d = aborted_diagnostic(&e);
        RehearsalError::new(RehearsalErrorKind::Aborted, e.to_string(), vec![d])
    }
}

/// The combined verdict of [`Rehearsal::verify`].
#[derive(Debug)]
pub struct VerificationReport {
    /// The determinacy verdict.
    pub determinism: DeterminismReport,
    /// The idempotency verdict; only checked when deterministic (applying
    /// the idempotence check to a non-deterministic manifest would be
    /// unsound, paper §5).
    pub idempotence: Option<IdempotenceReport>,
}

impl VerificationReport {
    /// Whether the manifest passed both checks.
    pub fn is_correct(&self) -> bool {
        self.determinism.is_deterministic()
            && self
                .idempotence
                .as_ref()
                .map(IdempotenceReport::is_idempotent)
                .unwrap_or(false)
    }
}

/// The top-level verification tool: platform + options + package database.
///
/// # Examples
///
/// ```
/// use rehearsal_core::Rehearsal;
/// use rehearsal_pkgdb::Platform;
///
/// let tool = Rehearsal::new(Platform::Ubuntu);
/// let report = tool.verify(
///     "file { '/etc/motd': content => 'welcome' }",
/// )?;
/// assert!(report.is_correct());
/// # Ok::<(), rehearsal_core::RehearsalError>(())
/// ```
#[derive(Debug)]
pub struct Rehearsal {
    facts: Facts,
    db: PackageDb,
    options: AnalysisOptions,
    dependency_closures: bool,
}

impl Rehearsal {
    /// A tool instance for the given platform with the built-in package
    /// database and default options.
    pub fn new(platform: Platform) -> Rehearsal {
        let facts = match platform {
            Platform::Ubuntu => Facts::ubuntu(),
            Platform::Centos => Facts::centos(),
        };
        Rehearsal {
            facts,
            db: PackageDb::builtin(platform),
            options: AnalysisOptions::default(),
            dependency_closures: false,
        }
    }

    /// Enables dependency-closure modeling for packages: installs pull in
    /// dependencies, removals pull in reverse-dependents, as `apt` does.
    /// This is our implementation of the paper's §8 future-work suggestion
    /// (Opium-style metadata) and is what detects the golang-go/perl silent
    /// failure (fig. 3c). Off by default to match the original tool.
    #[must_use]
    pub fn with_dependency_closures(mut self, on: bool) -> Rehearsal {
        self.dependency_closures = on;
        self
    }

    /// Enables the metadata-aware FS model: `owner`/`group`/`mode`
    /// attributes compile to `chown`/`chgrp`/`chmod` steps and `user`
    /// resources own their home directories, so permission races become
    /// checkable. Equivalent to setting
    /// [`AnalysisOptions::model_metadata`]. Off by default — unannotated
    /// pipelines keep bit-identical verdicts.
    #[must_use]
    pub fn with_model_metadata(mut self, on: bool) -> Rehearsal {
        self.options.model_metadata = on;
        self
    }

    /// Models `package { ensure => latest }` distinctly from `present`
    /// (the upgrade re-overwrites the package's files with version-bumped
    /// content) instead of aliasing it to the idempotent install.
    /// Equivalent to setting [`AnalysisOptions::model_latest`]. Off by
    /// default; a diagnostic is recorded either way.
    #[must_use]
    pub fn with_model_latest(mut self, on: bool) -> Rehearsal {
        self.options.model_latest = on;
        self
    }

    /// Replaces the analysis options.
    #[must_use]
    pub fn with_options(mut self, options: AnalysisOptions) -> Rehearsal {
        self.options = options;
        self
    }

    /// Replaces the node facts.
    #[must_use]
    pub fn with_facts(mut self, facts: Facts) -> Rehearsal {
        self.facts = facts;
        self
    }

    /// Replaces the package database.
    #[must_use]
    pub fn with_db(mut self, db: PackageDb) -> Rehearsal {
        self.db = db;
        self
    }

    /// The current analysis options.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Parses and evaluates a manifest to a catalog.
    ///
    /// # Errors
    ///
    /// Parse or evaluation errors.
    pub fn catalog(&self, source: &str) -> Result<Catalog, RehearsalError> {
        let manifest = parse(source)?;
        Ok(evaluate(&manifest, &self.facts)?)
    }

    /// Lowers a manifest all the way to an [`FsGraph`].
    ///
    /// # Errors
    ///
    /// Parse, evaluation, cycle, or resource-compilation errors.
    pub fn lower(&self, source: &str) -> Result<FsGraph, RehearsalError> {
        Ok(self.lower_source(source)?.0)
    }

    /// Lowers a manifest to an [`FsGraph`], also returning the non-fatal
    /// [`Diagnostic`]s emitted on the way (e.g. the `ensure => latest`
    /// modeling warning) — the one lowering entry point of the unified
    /// diagnostics API.
    ///
    /// # Errors
    ///
    /// Parse, evaluation, cycle, or resource-compilation errors (each a
    /// [`RehearsalError`] wrapping source-anchored diagnostics).
    pub fn lower_source(&self, source: &str) -> Result<(FsGraph, Vec<Diagnostic>), RehearsalError> {
        let catalog = self.catalog(source)?;
        self.lower_catalog_source(&catalog)
    }

    /// Lowers an already-evaluated catalog to an [`FsGraph`].
    ///
    /// # Errors
    ///
    /// Cycle or resource-compilation errors.
    pub fn lower_catalog(&self, catalog: &Catalog) -> Result<FsGraph, RehearsalError> {
        Ok(self.lower_catalog_source(catalog)?.0)
    }

    /// Lowers an already-evaluated catalog, also returning the non-fatal
    /// [`Diagnostic`]s.
    ///
    /// # Errors
    ///
    /// Cycle or resource-compilation errors.
    pub fn lower_catalog_source(
        &self,
        catalog: &Catalog,
    ) -> Result<(FsGraph, Vec<Diagnostic>), RehearsalError> {
        let _span = rehearsal_trace::span_cat("lower", "core");
        let graph = ResourceGraph::from_catalog(catalog)?;
        let ctx = CompileCtx::new(&self.db)
            .with_dependency_closures(self.dependency_closures)
            .with_model_metadata(self.options.model_metadata)
            .with_model_latest(self.options.model_latest);
        let mut exprs = Vec::with_capacity(graph.len());
        let mut names = Vec::with_capacity(graph.len());
        let mut spans = Vec::with_capacity(graph.len());
        for r in graph.resources() {
            match compile(r, &ctx) {
                Ok(e) => exprs.push(e),
                Err(e) => {
                    // Keep the modeling warnings already emitted for earlier
                    // resources: the error's diagnostics are the full stream
                    // up to the failure, not just the failure.
                    let mut err = RehearsalError::from(e);
                    err.diagnostics.extend(ctx.drain_diagnostics());
                    return Err(err);
                }
            }
            names.push(r.display_name());
            spans.push(r.span());
        }
        let edges: std::collections::BTreeSet<(usize, usize)> =
            graph.edges().iter().copied().collect();
        Ok((
            FsGraph::new(exprs, edges, names).with_spans(spans),
            ctx.drain_diagnostics(),
        ))
    }

    /// Runs the determinacy analysis on a manifest.
    ///
    /// # Errors
    ///
    /// Pipeline errors or [`AnalysisAborted`].
    pub fn check_determinism(&self, source: &str) -> Result<DeterminismReport, RehearsalError> {
        let graph = self.lower(source)?;
        Ok(check_determinism(&graph, &self.options)?)
    }

    /// Runs the idempotence check on a manifest (callers should establish
    /// determinism first; [`Rehearsal::verify`] does).
    ///
    /// # Errors
    ///
    /// Pipeline errors or [`AnalysisAborted`].
    pub fn check_idempotence(&self, source: &str) -> Result<IdempotenceReport, RehearsalError> {
        let graph = self.lower(source)?;
        Ok(check_idempotence(&graph, &self.options)?)
    }

    /// Checks a post-state invariant (callers should establish determinism
    /// first).
    ///
    /// # Errors
    ///
    /// Pipeline errors or [`AnalysisAborted`].
    pub fn check_invariant(
        &self,
        source: &str,
        invariant: &Invariant,
    ) -> Result<InvariantReport, RehearsalError> {
        let graph = self.lower(source)?;
        Ok(check_invariant(&graph, invariant, &self.options)?)
    }

    /// The full verification: determinism, then (if deterministic)
    /// idempotence.
    ///
    /// # Errors
    ///
    /// Pipeline errors or [`AnalysisAborted`].
    pub fn verify(&self, source: &str) -> Result<VerificationReport, RehearsalError> {
        let graph = self.lower(source)?;
        let determinism = check_determinism(&graph, &self.options)?;
        let idempotence = if determinism.is_deterministic() {
            Some(check_idempotence(&graph, &self.options)?)
        } else {
            None
        };
        Ok(VerificationReport {
            determinism,
            idempotence,
        })
    }

    /// The unified-diagnostics entry point: verifies a named manifest and
    /// returns everything as one [`SourceAnalysis`] — the verdict (when
    /// the pipeline got that far), the lowered graph, every [`Diagnostic`]
    /// (errors, analysis findings like the `R3001` race report, and
    /// modeling warnings), and a [`SourceMap`] ready to render snippets.
    ///
    /// Unlike [`Rehearsal::verify`], this never returns `Err`: failures
    /// become error diagnostics with `report: None`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rehearsal_core::Rehearsal;
    /// use rehearsal_pkgdb::Platform;
    ///
    /// let tool = Rehearsal::new(Platform::Ubuntu);
    /// let analysis = tool.verify_source(
    ///     "race.pp",
    ///     "file { '/home/carol/.vimrc': content => 'syntax on' }\n\
    ///      user { 'carol': ensure => present, managehome => true }\n",
    /// );
    /// // Nondeterministic: the race is reported as a source-anchored
    /// // R3001 diagnostic pointing at both declarations.
    /// let race = &analysis.diagnostics[0];
    /// assert_eq!(race.code, "R3001");
    /// let rendered = analysis.source_map.render(race);
    /// assert!(rendered.contains("--> race.pp:"));
    /// ```
    pub fn verify_source(&self, name: &str, source: &str) -> SourceAnalysis {
        let source_map = SourceMap::single(name, source);
        let mut diagnostics = Vec::new();
        let (graph, warnings) = match self.lower_source(source) {
            Ok(ok) => ok,
            Err(e) => {
                diagnostics.extend(e.into_diagnostics());
                return SourceAnalysis {
                    report: None,
                    graph: None,
                    diagnostics,
                    source_map,
                };
            }
        };
        diagnostics.extend(warnings);
        let determinism = match check_determinism(&graph, &self.options) {
            Ok(report) => report,
            Err(aborted) => {
                diagnostics.push(crate::report::aborted_diagnostic(&aborted));
                return SourceAnalysis {
                    report: None,
                    graph: Some(graph),
                    diagnostics,
                    source_map,
                };
            }
        };
        diagnostics.extend(determinism_diagnostics(&determinism, &graph));
        let idempotence = if determinism.is_deterministic() {
            match check_idempotence(&graph, &self.options) {
                Ok(report) => {
                    diagnostics.extend(idempotence_diagnostics(&report, &graph));
                    Some(report)
                }
                Err(aborted) => {
                    diagnostics.push(crate::report::aborted_diagnostic(&aborted));
                    return SourceAnalysis {
                        report: None,
                        graph: Some(graph),
                        diagnostics,
                        source_map,
                    };
                }
            }
        } else {
            None
        };
        SourceAnalysis {
            report: Some(VerificationReport {
                determinism,
                idempotence,
            }),
            graph: Some(graph),
            diagnostics,
            source_map,
        }
    }
}

/// Everything [`Rehearsal::verify_source`] learned about one manifest.
#[derive(Debug)]
pub struct SourceAnalysis {
    /// The verdict, when the pipeline reached the analyses (`None` on
    /// frontend/compile errors or an aborted analysis).
    pub report: Option<VerificationReport>,
    /// The lowered graph, when lowering succeeded.
    pub graph: Option<FsGraph>,
    /// Every finding, most severe first within each stage: pipeline
    /// errors, analysis findings (`R3001`/`R3002`), modeling warnings.
    pub diagnostics: Vec<Diagnostic>,
    /// Renders the diagnostics against the named source.
    pub source_map: SourceMap,
}

impl SourceAnalysis {
    /// Whether the manifest verified clean (deterministic + idempotent,
    /// no error diagnostics).
    pub fn is_correct(&self) -> bool {
        self.report
            .as_ref()
            .map(VerificationReport::is_correct)
            .unwrap_or(false)
    }

    /// Findings at [`rehearsal_diag::Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == rehearsal_diag::Severity::Error)
    }
}

// The batch engine in `rehearsal-fleet` runs analyses from worker threads;
// every entry-point type must stay shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Rehearsal>();
    assert_send_sync::<AnalysisOptions>();
    assert_send_sync::<crate::determinism::CancelToken>();
    assert_send_sync::<DeterminismReport>();
    assert_send_sync::<IdempotenceReport>();
    assert_send_sync::<VerificationReport>();
    assert_send_sync::<RehearsalError>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn tool() -> Rehearsal {
        Rehearsal::new(Platform::Ubuntu)
    }

    #[test]
    fn trivial_manifest_verifies() {
        let r = tool()
            .verify("file { '/etc/motd': content => 'hi' }")
            .unwrap();
        assert!(r.is_correct());
    }

    #[test]
    fn paper_intro_example_is_nondeterministic() {
        // §1: vim + carol's .vimrc + carol, with no dependency between the
        // user and the file.
        let src = r#"
            package { 'vim': ensure => present }
            file { '/home/carol/.vimrc': content => 'syntax on' }
            user { 'carol': ensure => present, managehome => true }
        "#;
        let r = tool().check_determinism(src).unwrap();
        assert!(!r.is_deterministic(), "missing User -> File dependency");
    }

    #[test]
    fn paper_intro_example_fixed() {
        let src = r#"
            package { 'vim': ensure => present }
            file { '/home/carol/.vimrc': content => 'syntax on' }
            user { 'carol': ensure => present, managehome => true }
            User['carol'] -> File['/home/carol/.vimrc']
        "#;
        let r = tool().verify(src).unwrap();
        assert!(r.determinism.is_deterministic());
        assert!(r.idempotence.unwrap().is_idempotent());
    }

    #[test]
    fn fig3a_apache_missing_dependency() {
        let src = r#"
            file { '/etc/apache2/sites-available/000-default.conf':
              content => 'my site',
            }
            package { 'apache2': ensure => present }
        "#;
        let r = tool().check_determinism(src).unwrap();
        assert!(!r.is_deterministic());
    }

    #[test]
    fn fig3a_apache_fixed() {
        let src = r#"
            file { '/etc/apache2/sites-available/000-default.conf':
              content => 'my site',
              require => Package['apache2'],
            }
            package { 'apache2': ensure => present }
        "#;
        let r = tool().verify(src).unwrap();
        assert!(r.is_correct());
    }

    #[test]
    fn fig3b_false_dependencies_cycle() {
        let src = r#"
            define cpp() {
              if !defined(Package['m4']) { package { 'm4': ensure => present } }
              if !defined(Package['make']) { package { 'make': ensure => present } }
              package { 'gcc': ensure => present }
              Package['m4'] -> Package['make']
              Package['make'] -> Package['gcc']
            }
            define ocaml() {
              if !defined(Package['make']) { package { 'make': ensure => present } }
              if !defined(Package['m4']) { package { 'm4': ensure => present } }
              package { 'ocaml': ensure => present }
              Package['make'] -> Package['m4']
              Package['m4'] -> Package['ocaml']
            }
            cpp { 'dev': }
            ocaml { 'dev': }
        "#;
        let err = tool().check_determinism(src).unwrap_err();
        assert_eq!(err.kind(), RehearsalErrorKind::Cycle, "got: {err}");
        assert_eq!(err.code(), "R0201");
    }

    #[test]
    fn fig3c_silent_failure_two_success_states() {
        // Requires dependency-closure modeling (our §8 extension).
        let src = r#"
            package { 'golang-go': ensure => present }
            package { 'perl': ensure => absent }
        "#;
        let r = tool()
            .with_dependency_closures(true)
            .check_determinism(src)
            .unwrap();
        match r {
            DeterminismReport::NonDeterministic(cex, _) => {
                // Both orders *succeed* but reach different states — the
                // "silent failure".
                assert!(cex.outcome_a.is_ok());
                assert!(cex.outcome_b.is_ok());
                assert_ne!(cex.outcome_a, cex.outcome_b);
            }
            DeterminismReport::Deterministic(_) => panic!("fig 3c is nondeterministic"),
        }
    }

    #[test]
    fn fig3d_not_idempotent() {
        let src = r#"
            file { '/dst': source => '/src' }
            file { '/src': ensure => absent }
            File['/dst'] -> File['/src']
        "#;
        let r = tool().verify(src).unwrap();
        assert!(r.determinism.is_deterministic());
        assert!(!r.idempotence.unwrap().is_idempotent());
    }

    #[test]
    fn exec_resources_are_rejected() {
        let err = tool()
            .check_determinism("exec { 'apt-get update': }")
            .unwrap_err();
        assert_eq!(err.kind(), RehearsalErrorKind::Compile);
        assert_eq!(err.code(), "R1002");
        assert!(
            err.diagnostics()[0].has_resolvable_span(),
            "compile errors point at the declaration"
        );
    }

    #[test]
    fn verify_source_reports_race_with_both_declarations() {
        let src = "package { 'vim': ensure => present }\n\
                   file { '/home/carol/.vimrc': content => 'syntax on' }\n\
                   user { 'carol': ensure => present, managehome => true }\n";
        let a = tool().verify_source("intro.pp", src);
        assert!(!a.is_correct());
        let race = a
            .diagnostics
            .iter()
            .find(|d| d.code == "R3001")
            .expect("race diagnostic");
        assert!(race.primary.is_some());
        assert_eq!(race.secondary.len(), 1);
        assert!(race.has_resolvable_span());
        let rendered = a.source_map.render(race);
        assert!(rendered.contains("--> intro.pp:"), "{rendered}");
        // Both racing declarations are shown as snippets.
        assert!(rendered.matches("--> intro.pp:").count() >= 2, "{rendered}");
    }

    #[test]
    fn verify_source_turns_errors_into_diagnostics() {
        let a = tool().verify_source("bad.pp", "package { 'x' oops }");
        assert!(a.report.is_none());
        assert_eq!(a.diagnostics[0].code, "R0001");
        assert!(a.errors().count() >= 1);
        let rendered = a.source_map.render(&a.diagnostics[0]);
        assert!(rendered.contains("bad.pp:1:"), "{rendered}");
    }

    #[test]
    fn warnings_survive_a_later_compile_error() {
        // The `latest` warning is emitted for the package before the exec
        // resource fails compilation; the error must carry both.
        let src = "package { 'vim': ensure => latest }\nexec { 'x': }";
        let err = tool().lower_source(src).unwrap_err();
        assert_eq!(err.kind(), RehearsalErrorKind::Compile);
        let codes: Vec<&str> = err.diagnostics().iter().map(|d| d.code.as_str()).collect();
        assert!(codes.contains(&"R1002"), "{codes:?}");
        assert!(codes.contains(&"R1101"), "warning kept: {codes:?}");
        // And verify_source surfaces the same full stream.
        let a = tool().verify_source("mix.pp", src);
        assert!(a.diagnostics.iter().any(|d| d.code == "R1101"));
    }

    #[test]
    fn verify_source_collects_modeling_warnings() {
        let a = tool().verify_source("latest.pp", "package { 'vim': ensure => latest }");
        assert!(a.is_correct(), "aliased latest still verifies");
        let warn = a
            .diagnostics
            .iter()
            .find(|d| d.code == "R1101")
            .expect("latest warning");
        assert!(warn.has_resolvable_span());
    }

    #[test]
    fn invariant_checking_through_pipeline() {
        let src = "file { '/etc/motd': content => 'welcome' }";
        let inv = Invariant::FileWithContent(
            rehearsal_fs::FsPath::parse("/etc/motd").unwrap(),
            rehearsal_fs::Content::intern("welcome"),
        );
        let r = tool().check_invariant(src, &inv).unwrap();
        assert!(r.holds());
    }

    #[test]
    fn ssh_key_requires_user() {
        // One of the paper's found bug classes: ssh key without its user.
        let src = r#"
            user { 'carol': ensure => present, managehome => true }
            ssh_authorized_key { 'carol@laptop': user => 'carol', key => 'AAAA' }
        "#;
        let r = tool().check_determinism(src).unwrap();
        assert!(!r.is_deterministic(), "missing User -> Ssh_authorized_key");

        let fixed = r#"
            user { 'carol': ensure => present, managehome => true }
            ssh_authorized_key { 'carol@laptop':
              user => 'carol', key => 'AAAA', require => User['carol'],
            }
        "#;
        let r = tool().check_determinism(fixed).unwrap();
        assert!(r.is_deterministic());
    }

    #[test]
    fn package_service_file_stack() {
        let src = r#"
            package { 'nginx': ensure => present }
            file { '/etc/nginx/nginx.conf':
              content => 'worker_processes 4;',
              require => Package['nginx'],
            }
            service { 'nginx':
              ensure  => running,
              require => [Package['nginx'], File['/etc/nginx/nginx.conf']],
            }
        "#;
        let r = tool().verify(src).unwrap();
        assert!(r.is_correct(), "the canonical package/file/service stack");
    }
}
