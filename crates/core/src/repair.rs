//! Manifest repair (an extension; the paper's conclusion names repair as
//! a tool its semantics enables): when a manifest is non-deterministic,
//! propose missing dependency edges that make it deterministic.
//!
//! The repair loop is counterexample-guided: each counterexample exhibits
//! two orders that disagree; some unordered, non-commuting pair of
//! resources appears in opposite relative order in them. Ordering that
//! pair (in the direction of the succeeding/first order) removes this
//! counterexample; iterate until deterministic or out of candidates.

use crate::commutativity::{accesses, commutes, AccessSummary};
use crate::determinism::{
    check_determinism, AnalysisAborted, AnalysisOptions, DeterminismReport, FsGraph,
};

/// The outcome of a repair attempt.
#[derive(Debug, Clone)]
pub enum RepairReport {
    /// The manifest was already deterministic.
    AlreadyDeterministic,
    /// Adding these edges (in order) makes the manifest deterministic.
    Repaired {
        /// `(before, after)` pairs, as indices into the graph's resources.
        added_edges: Vec<(usize, usize)>,
    },
    /// No set of ordering edges fixes it (e.g. the divergence is a
    /// fundamental conflict such as fig. 3c) within the iteration budget.
    NotRepairable {
        /// Edges that were tried before giving up.
        attempted: Vec<(usize, usize)>,
    },
}

impl RepairReport {
    /// Whether the repair (or the original) is deterministic.
    pub fn is_success(&self) -> bool {
        !matches!(self, RepairReport::NotRepairable { .. })
    }
}

/// Proposes dependency edges that make `graph` deterministic.
///
/// # Errors
///
/// Returns [`AnalysisAborted`] if an underlying determinism check aborts.
pub fn suggest_repair(
    graph: &FsGraph,
    options: &AnalysisOptions,
) -> Result<RepairReport, AnalysisAborted> {
    let summaries: Vec<std::sync::Arc<AccessSummary>> =
        graph.exprs.iter().map(|&e| accesses(e)).collect();
    let mut work = graph.clone();
    let mut added: Vec<(usize, usize)> = Vec::new();
    // Each round adds one edge; n² bounds the rounds.
    let budget = graph.exprs.len() * graph.exprs.len() + 1;
    for _ in 0..budget {
        match check_determinism(&work, options)? {
            DeterminismReport::Deterministic(_) => {
                return Ok(if added.is_empty() {
                    RepairReport::AlreadyDeterministic
                } else {
                    RepairReport::Repaired { added_edges: added }
                });
            }
            DeterminismReport::NonDeterministic(cex, _) => {
                let Some((a, b)) = pick_edge(&work, &summaries, &cex.order_a, &cex.order_b) else {
                    return Ok(RepairReport::NotRepairable { attempted: added });
                };
                work.edges.insert((a, b));
                added.push((a, b));
            }
        }
    }
    Ok(RepairReport::NotRepairable { attempted: added })
}

/// Finds an unordered, non-commuting pair that appears in opposite orders
/// in the two counterexample sequences; proposes ordering it as in
/// `order_a` (the representative order), provided that keeps the graph
/// acyclic.
fn pick_edge(
    graph: &FsGraph,
    summaries: &[std::sync::Arc<AccessSummary>],
    order_a: &[usize],
    order_b: &[usize],
) -> Option<(usize, usize)> {
    let pos = |order: &[usize], x: usize| order.iter().position(|&i| i == x);
    let reachable = |from: usize, to: usize| -> bool {
        // DFS over existing edges.
        let mut stack = vec![from];
        let mut seen = vec![false; graph.exprs.len()];
        while let Some(i) = stack.pop() {
            if i == to {
                return true;
            }
            if seen[i] {
                continue;
            }
            seen[i] = true;
            for &(x, y) in &graph.edges {
                if x == i {
                    stack.push(y);
                }
            }
        }
        false
    };
    for (ia, &x) in order_a.iter().enumerate() {
        for &y in order_a.iter().skip(ia + 1) {
            // x before y in A; is it y before x in B?
            let (Some(px), Some(py)) = (pos(order_b, x), pos(order_b, y)) else {
                continue;
            };
            if px < py {
                continue; // same relative order in both
            }
            if commutes(&summaries[x], &summaries[y]) {
                continue; // ordering them cannot matter
            }
            if reachable(y, x) {
                continue; // adding x→y would close a cycle
            }
            return Some((x, y));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::{Content, Expr, FsPath, Pred};
    use std::collections::BTreeSet;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn graph(exprs: Vec<Expr>, edges: &[(usize, usize)]) -> FsGraph {
        let names = (0..exprs.len()).map(|i| format!("r{i}")).collect();
        FsGraph::new(exprs, edges.iter().copied().collect(), names)
    }

    #[test]
    fn deterministic_graph_needs_no_repair() {
        let g = graph(vec![Expr::SKIP, Expr::SKIP], &[]);
        let r = suggest_repair(&g, &AnalysisOptions::default()).unwrap();
        assert!(matches!(r, RepairReport::AlreadyDeterministic));
    }

    #[test]
    fn missing_dependency_is_repaired() {
        // mkdir /d unordered with creat /d/f: the classic missing edge.
        let a = Expr::if_then(Pred::is_dir(p("/d")).not(), Expr::mkdir(p("/d")));
        let b = Expr::if_(
            Pred::does_not_exist(p("/d/f")),
            Expr::create_file(p("/d/f"), Content::intern("x")),
            Expr::if_(Pred::is_file(p("/d/f")), Expr::SKIP, Expr::ERROR),
        );
        let g = graph(vec![a, b], &[]);
        let r = suggest_repair(&g, &AnalysisOptions::default()).unwrap();
        match r {
            RepairReport::Repaired { added_edges } => {
                assert_eq!(added_edges.len(), 1);
            }
            other => panic!("expected a repair, got {other:?}"),
        }
    }

    #[test]
    fn repaired_graph_verifies() {
        let a = Expr::if_then(Pred::is_dir(p("/d")).not(), Expr::mkdir(p("/d")));
        let b = Expr::if_(
            Pred::does_not_exist(p("/d/f")),
            Expr::create_file(p("/d/f"), Content::intern("x")),
            Expr::if_(Pred::is_file(p("/d/f")), Expr::SKIP, Expr::ERROR),
        );
        let mut g = graph(vec![a, b], &[]);
        if let RepairReport::Repaired { added_edges } =
            suggest_repair(&g, &AnalysisOptions::default()).unwrap()
        {
            let edges: BTreeSet<(usize, usize)> = added_edges.into_iter().collect();
            g.edges.extend(edges);
            let verdict = check_determinism(&g, &AnalysisOptions::default()).unwrap();
            assert!(verdict.is_deterministic(), "repair must verify");
        } else {
            panic!("expected repair");
        }
    }

    #[test]
    fn multiple_conflicts_need_multiple_edges() {
        let w = |path: &str, c: &str| {
            Expr::if_(
                Pred::does_not_exist(p(path)),
                Expr::create_file(p(path), Content::intern(c)),
                Expr::if_(
                    Pred::is_file(p(path)),
                    Expr::rm(p(path)).seq(Expr::create_file(p(path), Content::intern(c))),
                    Expr::ERROR,
                ),
            )
        };
        // Two independent conflicting pairs.
        let g = graph(
            vec![w("/x", "a"), w("/x", "b"), w("/y", "c"), w("/y", "d")],
            &[],
        );
        let r = suggest_repair(&g, &AnalysisOptions::default()).unwrap();
        match r {
            RepairReport::Repaired { added_edges } => {
                assert_eq!(added_edges.len(), 2, "one edge per conflicting pair");
            }
            other => panic!("expected repair, got {other:?}"),
        }
    }
}
