//! Shrinking resources (paper §4.4, fig. 10): eliminate writes to paths
//! that only one resource definitively writes and nothing else observes.
//!
//! Two pieces:
//!
//! * [`definitive_writes`] — the abstract interpretation of fig. 10b. We
//!   implement the figure literally: a conditional joins its branches
//!   pointwise, with `⊥ ⊔ v = v`. The untouched branch of an idempotent
//!   check-then-act resource therefore does not destroy definitiveness,
//!   which matches the paper's reading of its own resource models ("a
//!   resource that writes to p typically ensures that p is either placed in
//!   a definite state or signals an error").
//! * [`prune_path`] — the partial evaluator `P⟦·⟧` of fig. 10a: replaces
//!   writes to the pruned path with their (residual) preconditions and
//!   resolves subsequent reads against the tracked state.
//!
//! [`prune_graph`] combines them with the §4.4 side conditions: a path is
//! pruned only when exactly one resource definitively writes it, no other
//! resource touches it, and no resource observes it through the emptiness
//! of its parent directory. Pruned paths become *read-only*, which the
//! encoder exploits with a single variable per path.
//!
//! Like the access summaries, definitive-write maps depend only on
//! structure and are memoized process-wide by hash-consed id; the
//! candidate scan consults the memoized per-node path sets instead of
//! re-walking expressions.

use crate::commutativity::accesses;
use crate::determinism::FsGraph;
use crate::memo::ExprMemo;
use rehearsal_fs::{Content, Expr, ExprNode, FsPath, Pred, PredNode};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Abstract values of fig. 10b: `⊥ ⊏ dir, file(c), dne ⊏ ⊤`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefValue {
    /// Untouched.
    Bot,
    /// Definitively a directory.
    Dir,
    /// Definitively a file with this content.
    File(Content),
    /// Definitively absent.
    Dne,
    /// Indeterminate.
    Top,
}

impl DefValue {
    fn join(self, other: DefValue) -> DefValue {
        use DefValue::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (a, b) if a == b => a,
            _ => Top,
        }
    }

    /// Whether the value is a definite write (`⊏ ⊤` and not `⊥`).
    pub fn is_definitive(self) -> bool {
        matches!(self, DefValue::Dir | DefValue::File(_) | DefValue::Dne)
    }
}

fn dw(e: Expr, state: &mut BTreeMap<FsPath, DefValue>) {
    match e.node() {
        ExprNode::Skip | ExprNode::Error => {}
        ExprNode::Mkdir(p) => {
            state.insert(p, DefValue::Dir);
        }
        ExprNode::CreateFile(p, c) => {
            state.insert(p, DefValue::File(c));
        }
        ExprNode::Rm(p) => {
            state.insert(p, DefValue::Dne);
        }
        ExprNode::Cp(_, dst) => {
            state.insert(dst, DefValue::Top);
        }
        ExprNode::ChMeta(p, _, _) => {
            // The path's existence/content is untouched but its metadata
            // changed: the final state is not one of the fig. 10b points,
            // so it is indeterminate — which also keeps metadata-managed
            // paths out of the pruning candidate set.
            state.insert(p, DefValue::Top);
        }
        ExprNode::Seq(a, b) => {
            dw(a, state);
            dw(b, state);
        }
        ExprNode::If(_, a, b) => {
            let mut sa = state.clone();
            let mut sb = state.clone();
            dw(a, &mut sa);
            dw(b, &mut sb);
            let keys: BTreeSet<FsPath> = sa.keys().chain(sb.keys()).copied().collect();
            for p in keys {
                let va = sa.get(&p).copied().unwrap_or(DefValue::Bot);
                let vb = sb.get(&p).copied().unwrap_or(DefValue::Bot);
                state.insert(p, va.join(vb));
            }
        }
    }
}

type DefMap = BTreeMap<FsPath, DefValue>;

/// The definitive-write map of an expression (fig. 10b), memoized
/// process-wide by hash-consed id.
pub fn definitive_writes(e: Expr) -> Arc<DefMap> {
    static MEMO: ExprMemo<DefMap> = ExprMemo::new(
        "memo.definitive_writes.hits",
        "memo.definitive_writes.misses",
    );
    MEMO.get_or_compute(e, || {
        let mut state = BTreeMap::new();
        dw(e, &mut state);
        state
    })
}

/// What we know about the pruned path's current state during partial
/// evaluation: either still the (unknown) initial value, possibly narrowed
/// by guards, or exactly the value of an eliminated write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Track {
    /// Initial value; the set records which of {dne, file, dir} remain
    /// possible.
    Initial { dne: bool, file: bool, dir: bool },
    /// A pruned write placed the path in this exact state.
    Written(WrittenState),
    /// Control-flow merged a written and an unwritten branch; any later
    /// operation that consults the path aborts pruning.
    Ambiguous,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WrittenState {
    Dir,
    File,
    Dne,
}

/// Truth of a simple predicate about the pruned path under the tracked
/// state: `Some(b)` if decided, `None` if it must residualize.
fn decide(track: Track, wants: WrittenState) -> Option<bool> {
    match track {
        Track::Ambiguous => None,
        Track::Written(w) => Some(w == wants),
        Track::Initial { dne, file, dir } => {
            let (this, others) = match wants {
                WrittenState::Dne => (dne, file || dir),
                WrittenState::File => (file, dne || dir),
                WrittenState::Dir => (dir, dne || file),
            };
            if !this {
                Some(false)
            } else if !others {
                Some(true)
            } else {
                None
            }
        }
    }
}

/// Residual precondition for a write assuming the path check passed:
/// the non-`p` part of the precondition (e.g. `dir?(parent)`).
fn parent_dir_pred(p: FsPath) -> Pred {
    match p.parent() {
        Some(parent) if parent != FsPath::root() => Pred::is_dir(parent),
        _ => Pred::TRUE, // the root always exists as a directory
    }
}

/// Partially evaluates predicates with respect to the pruned path.
/// Returns `Err(())` when the predicate observes `p` in a way we cannot
/// residualize (`emptydir?` of `p` itself after a write).
fn prune_pred(pred: Pred, p: FsPath, track: Track) -> Result<Pred, ()> {
    match pred.node() {
        PredNode::True | PredNode::False => Ok(pred),
        PredNode::DoesNotExist(q) if q == p => {
            if track == Track::Ambiguous {
                return Err(());
            }
            match decide(track, WrittenState::Dne) {
                Some(true) => Ok(Pred::TRUE),
                Some(false) => Ok(Pred::FALSE),
                None => Ok(pred), // reads the initial value
            }
        }
        PredNode::IsFile(q) if q == p => {
            if track == Track::Ambiguous {
                return Err(());
            }
            match decide(track, WrittenState::File) {
                Some(true) => Ok(Pred::TRUE),
                Some(false) => Ok(Pred::FALSE),
                None => Ok(pred),
            }
        }
        PredNode::IsDir(q) if q == p => {
            if track == Track::Ambiguous {
                return Err(());
            }
            match decide(track, WrittenState::Dir) {
                Some(true) => Ok(Pred::TRUE),
                Some(false) => Ok(Pred::FALSE),
                None => Ok(pred),
            }
        }
        PredNode::IsEmptyDir(q) if q == p => {
            if track == Track::Ambiguous {
                return Err(());
            }
            // Emptiness depends on children we are not tracking; only safe
            // when we can decide p is not a directory at all.
            match decide(track, WrittenState::Dir) {
                Some(false) => Ok(Pred::FALSE),
                _ => match track {
                    Track::Initial { .. } => Ok(pred),
                    Track::Written(_) | Track::Ambiguous => Err(()),
                },
            }
        }
        PredNode::MetaIs(q, _, _) if q == p => {
            // Metadata of the pruned path cannot be residualized.
            Err(())
        }
        PredNode::DoesNotExist(_)
        | PredNode::IsFile(_)
        | PredNode::IsDir(_)
        | PredNode::IsEmptyDir(_)
        | PredNode::MetaIs(_, _, _) => Ok(pred),
        PredNode::And(a, b) => Ok(prune_pred(a, p, track)?.and(prune_pred(b, p, track)?)),
        PredNode::Or(a, b) => Ok(prune_pred(a, p, track)?.or(prune_pred(b, p, track)?)),
        PredNode::Not(a) => Ok(prune_pred(a, p, track)?.not()),
    }
}

/// Refines the tracked initial-value set by a guard known to be true
/// (`polarity = true`) or false.
fn refine(track: Track, pred: Pred, p: FsPath, polarity: bool) -> Track {
    let Track::Initial { dne, file, dir } = track else {
        return track;
    };
    match pred.node() {
        PredNode::DoesNotExist(q) if q == p => {
            if polarity {
                Track::Initial {
                    dne,
                    file: false,
                    dir: false,
                }
            } else {
                Track::Initial {
                    dne: false,
                    file,
                    dir,
                }
            }
        }
        PredNode::IsFile(q) if q == p => {
            if polarity {
                Track::Initial {
                    dne: false,
                    file,
                    dir: false,
                }
            } else {
                Track::Initial {
                    dne,
                    file: false,
                    dir,
                }
            }
        }
        PredNode::IsDir(q) if q == p => {
            if polarity {
                Track::Initial {
                    dne: false,
                    file: false,
                    dir,
                }
            } else {
                Track::Initial {
                    dne,
                    file,
                    dir: false,
                }
            }
        }
        PredNode::Not(inner) => refine(track, inner, p, !polarity),
        _ => track,
    }
}

fn prune_rec(e: Expr, p: FsPath, track: Track) -> Result<(Expr, Track), ()> {
    match e.node() {
        ExprNode::Skip | ExprNode::Error => Ok((e, track)),
        ExprNode::Mkdir(q) if q == p => {
            if track == Track::Ambiguous {
                return Err(());
            }
            let pre_self = match decide(track, WrittenState::Dne) {
                Some(true) => Pred::TRUE,
                Some(false) => Pred::FALSE,
                None => Pred::does_not_exist(p),
            };
            let pre = pre_self.and(parent_dir_pred(p));
            Ok((
                Expr::if_(pre, Expr::SKIP, Expr::ERROR),
                Track::Written(WrittenState::Dir),
            ))
        }
        ExprNode::CreateFile(q, _) if q == p => {
            if track == Track::Ambiguous {
                return Err(());
            }
            let pre_self = match decide(track, WrittenState::Dne) {
                Some(true) => Pred::TRUE,
                Some(false) => Pred::FALSE,
                None => Pred::does_not_exist(p),
            };
            let pre = pre_self.and(parent_dir_pred(p));
            Ok((
                Expr::if_(pre, Expr::SKIP, Expr::ERROR),
                Track::Written(WrittenState::File),
            ))
        }
        ExprNode::Rm(q) if q == p => {
            if track == Track::Ambiguous {
                return Err(());
            }
            // Only safe when the path is certainly a file here (emptiness
            // of a directory depends on untracked children).
            let pre = match decide(track, WrittenState::File) {
                Some(true) => Pred::TRUE,
                _ => match track {
                    Track::Initial { dir: false, .. } => {
                        // file or dne: rm succeeds iff it is a file.
                        match decide(track, WrittenState::Dne) {
                            Some(false) => Pred::TRUE,
                            _ => Pred::is_file(p),
                        }
                    }
                    _ => return Err(()),
                },
            };
            Ok((
                Expr::if_(pre, Expr::SKIP, Expr::ERROR),
                Track::Written(WrittenState::Dne),
            ))
        }
        ExprNode::Mkdir(q) | ExprNode::CreateFile(q, _) if q.parent() == Some(p) => {
            // The operation implicitly reads `dir?(p)`. Before any pruned
            // write this is the initial value (consistent with the
            // read-only encoding); after a pruned write it would read a
            // stale value, so pruning must be abandoned.
            match track {
                Track::Initial { .. } => Ok((e, track)),
                _ => Err(()),
            }
        }
        ExprNode::Mkdir(_) | ExprNode::CreateFile(_, _) | ExprNode::Rm(_) => Ok((e, track)),
        ExprNode::ChMeta(q, _, _) => {
            if q == p {
                // A metadata write to the pruned path cannot be replaced
                // by a precondition (the metadata itself is the effect).
                return Err(());
            }
            Ok((e, track))
        }
        ExprNode::Cp(src, dst) => {
            if src == p || dst == p {
                // Copying content to or from the pruned path cannot be
                // residualized.
                return Err(());
            }
            if dst.parent() == Some(p) && !matches!(track, Track::Initial { .. }) {
                return Err(());
            }
            Ok((e, track))
        }
        ExprNode::Seq(a, b) => {
            let (ea, ta) = prune_rec(a, p, track)?;
            let (eb, tb) = prune_rec(b, p, ta)?;
            Ok((ea.seq(eb), tb))
        }
        ExprNode::If(pred, then_, else_) => {
            let residual_pred = prune_pred(pred, p, track)?;
            match residual_pred {
                Pred::TRUE => prune_rec(then_, p, refine(track, pred, p, true)),
                Pred::FALSE => prune_rec(else_, p, refine(track, pred, p, false)),
                rp => {
                    let (et, tt) = prune_rec(then_, p, refine(track, pred, p, true))?;
                    let (ee, te) = prune_rec(else_, p, refine(track, pred, p, false))?;
                    // A branch that halts with err contributes no state.
                    let track_out = if et == Expr::ERROR {
                        te
                    } else if ee == Expr::ERROR || tt == te {
                        tt
                    } else {
                        // Branches disagree about p's state: safe to carry
                        // on, but any later operation that consults p will
                        // abort pruning.
                        Track::Ambiguous
                    };
                    Ok((Expr::if_(rp, et, ee), track_out))
                }
            }
        }
    }
}

/// `prune(p, e)` (fig. 10a): eliminates writes to `p`, preserving `e`'s
/// error behavior and its effect on all other paths. Returns `None` when
/// the expression uses `p` in a shape the partial evaluator cannot handle
/// (e.g. `cp` through `p`); callers simply skip pruning that path.
pub fn prune_path(e: Expr, p: FsPath) -> Option<Expr> {
    let initial = Track::Initial {
        dne: true,
        file: true,
        dir: true,
    };
    let (out, _) = prune_rec(e, p, initial).ok()?;
    // Defensive: no write to p may survive.
    if writes_path(out, p) {
        return None;
    }
    Some(out)
}

fn writes_path(e: Expr, p: FsPath) -> bool {
    // Cheap pre-filter via the memoized per-node path set: if `p` is not
    // mentioned at all, it is certainly not written.
    if !e.paths().contains(&p) {
        return false;
    }
    match e.node() {
        ExprNode::Skip | ExprNode::Error => false,
        ExprNode::Mkdir(q) | ExprNode::CreateFile(q, _) | ExprNode::Rm(q) => q == p,
        ExprNode::ChMeta(q, _, _) => q == p,
        ExprNode::Cp(_, dst) => dst == p,
        ExprNode::Seq(a, b) => writes_path(a, p) || writes_path(b, p),
        ExprNode::If(_, a, b) => writes_path(a, p) || writes_path(b, p),
    }
}

/// Applies pruning across a graph (paper §4.4): for every path definitively
/// written by exactly one resource, untouched by all others, and not
/// observed through its parent's emptiness, rewrite the owner and mark the
/// path read-only.
///
/// Returns the pruned graph and the set of read-only paths.
pub fn prune_graph(graph: &FsGraph) -> (FsGraph, BTreeSet<FsPath>) {
    let defs: Vec<Arc<DefMap>> = graph.exprs.iter().map(|&e| definitive_writes(e)).collect();
    let summaries: Vec<_> = graph.exprs.iter().map(|&e| accesses(e)).collect();

    // Candidate paths → owning resource.
    let mut candidates: BTreeMap<FsPath, usize> = BTreeMap::new();
    for (i, d) in defs.iter().enumerate() {
        for (&p, &v) in d.iter() {
            if v.is_definitive() {
                candidates.entry(p).or_insert(i);
            }
        }
    }
    let mut out = graph.clone();
    let mut read_only = BTreeSet::new();
    'paths: for (&p, &owner) in &candidates {
        if p == FsPath::root() {
            continue;
        }
        // Definitively written by exactly one resource; untouched by all
        // others; parent emptiness unobserved by anyone (including the
        // owner, conservatively).
        for (j, d) in defs.iter().enumerate() {
            if j != owner && d.get(&p).copied().unwrap_or(DefValue::Bot) != DefValue::Bot {
                continue 'paths;
            }
        }
        for (j, s) in summaries.iter().enumerate() {
            if j != owner && s.access(p) != crate::commutativity::Access::Bot {
                continue 'paths;
            }
            if let Some(parent) = p.parent() {
                if s.observed_dirs().contains(&parent) {
                    continue 'paths;
                }
            }
            if s.observed_dirs().contains(&p) && j != owner {
                continue 'paths;
            }
        }
        match prune_path(out.exprs[owner], p) {
            Some(rewritten) => {
                out.exprs[owner] = rewritten;
                read_only.insert(p);
            }
            None => continue,
        }
    }
    (out, read_only)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_fs::{check_equiv_brute_force, eval, FileState, FileSystem};

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn overwrite(path: FsPath, c: Content) -> Expr {
        Expr::if_(
            Pred::does_not_exist(path),
            Expr::create_file(path, c),
            Expr::if_(
                Pred::is_file(path),
                Expr::rm(path).seq(Expr::create_file(path, c)),
                Expr::ERROR,
            ),
        )
    }

    fn ensure_dir(path: FsPath) -> Expr {
        Expr::if_then(Pred::is_dir(path).not(), Expr::mkdir(path))
    }

    #[test]
    fn definitive_writes_basic() {
        let c = Content::intern("x");
        let e = Expr::create_file(p("/f"), c);
        assert_eq!(definitive_writes(e)[&p("/f")], DefValue::File(c));
        let e2 = Expr::mkdir(p("/d"));
        assert_eq!(definitive_writes(e2)[&p("/d")], DefValue::Dir);
        let e3 = Expr::rm(p("/f"));
        assert_eq!(definitive_writes(e3)[&p("/f")], DefValue::Dne);
    }

    #[test]
    fn definitive_writes_are_memoized() {
        let e = overwrite(p("/dwmemo"), Content::intern("v"));
        assert!(Arc::ptr_eq(&definitive_writes(e), &definitive_writes(e)));
    }

    #[test]
    fn branches_that_agree_stay_definitive() {
        let c = Content::intern("x");
        let e = Expr::if_(
            Pred::is_file(p("/q")),
            Expr::create_file(p("/f"), c),
            Expr::create_file(p("/f"), c),
        );
        assert_eq!(definitive_writes(e)[&p("/f")], DefValue::File(c));
    }

    #[test]
    fn branches_that_disagree_are_top() {
        let e = Expr::if_(
            Pred::is_file(p("/q")),
            Expr::create_file(p("/f"), Content::intern("a")),
            Expr::create_file(p("/f"), Content::intern("b")),
        );
        assert_eq!(definitive_writes(e)[&p("/f")], DefValue::Top);
    }

    #[test]
    fn idempotent_guard_is_definitive_per_fig10b() {
        // The literal fig. 10b join: untouched else-branch does not destroy
        // definitiveness.
        let e = ensure_dir(p("/d"));
        assert_eq!(definitive_writes(e)[&p("/d")], DefValue::Dir);
        let c = Content::intern("v");
        let o = overwrite(p("/f"), c);
        assert_eq!(definitive_writes(o)[&p("/f")], DefValue::File(c));
    }

    #[test]
    fn sequencing_takes_last_write() {
        let c = Content::intern("x");
        let e = Expr::create_file(p("/f"), c).seq(Expr::rm(p("/f")));
        assert_eq!(definitive_writes(e)[&p("/f")], DefValue::Dne);
    }

    #[test]
    fn cp_destination_is_top() {
        let e = Expr::cp(p("/a"), p("/b"));
        assert_eq!(definitive_writes(e)[&p("/b")], DefValue::Top);
    }

    /// The paper's central pruning equivalence (shown in §4.4):
    /// `mkdir(p); if (dir?(p)) id else err  ≡  mkdir(p)` must survive
    /// pruning as `≡`, while naive write deletion would break it.
    #[test]
    fn prune_preserves_guarded_reads() {
        let d = p("/d");
        let e1 = Expr::mkdir(d).seq(Expr::if_(Pred::is_dir(d), Expr::SKIP, Expr::ERROR));
        let e2 = Expr::mkdir(d);
        let p1 = prune_path(e1, d).expect("prunable");
        let p2 = prune_path(e2, d).expect("prunable");
        // Both residuals behave identically on every state (they only check
        // the precondition).
        check_equiv_brute_force(p1, p2, &[d], &[]).expect("pruned forms equivalent");
        assert!(!writes_path(p1, d));
    }

    #[test]
    fn prune_overwrite_residual_matches_error_behavior() {
        let f = p("/x/f");
        let c = Content::intern("v");
        let e = overwrite(f, c);
        let pruned = prune_path(e, f).expect("prunable");
        // The residual errs exactly when the original errs.
        let c2 = Content::intern("other");
        let states = [
            FileSystem::with_root().set(p("/x"), FileState::DIR),
            FileSystem::with_root()
                .set(p("/x"), FileState::DIR)
                .set(f, FileState::file(c2)),
            FileSystem::with_root()
                .set(p("/x"), FileState::DIR)
                .set(f, FileState::DIR),
            FileSystem::with_root(), // /x missing
        ];
        for fs in &states {
            assert_eq!(
                eval(e, fs).is_ok(),
                eval(pruned, fs).is_ok(),
                "error behavior must be preserved on {fs}"
            );
        }
    }

    #[test]
    fn prune_rejects_cp() {
        let e = Expr::cp(p("/src"), p("/dst"));
        assert!(prune_path(e, p("/dst")).is_none());
        assert!(prune_path(e, p("/src")).is_none());
    }

    #[test]
    fn prune_package_install_block() {
        // if (none?(m)) { ensure_dir(/usr); creat(/usr/f); creat(m) }
        // else if (file?(m)) id else err — pruning /usr/f keeps the rest.
        let m = p("/packages/pkg");
        let f = p("/usr/f");
        let c = Content::intern("pkg:f");
        let body = ensure_dir(p("/usr"))
            .seq(Expr::create_file(f, c))
            .seq(Expr::create_file(m, Content::intern("marker")));
        let e = Expr::if_(
            Pred::does_not_exist(m),
            body,
            Expr::if_(Pred::is_file(m), Expr::SKIP, Expr::ERROR),
        );
        let pruned = prune_path(e, f).expect("prunable");
        assert!(!writes_path(pruned, f));
        // The marker and /usr writes are untouched.
        assert!(writes_path(pruned, m));
        assert!(writes_path(pruned, p("/usr")));
    }

    #[test]
    fn prune_graph_respects_ownership() {
        let c = Content::intern("mine");
        let f = p("/only/f");
        let shared = p("/shared");
        let e1 = ensure_dir(p("/only"))
            .seq(Expr::create_file(f, c))
            .seq(overwrite(shared, Content::intern("a")));
        let e2 = overwrite(shared, Content::intern("b"));
        let g = FsGraph::new(
            vec![e1, e2],
            BTreeSet::new(),
            vec!["r0".into(), "r1".into()],
        );
        let (pruned, ro) = prune_graph(&g);
        assert!(ro.contains(&f), "/only/f has one owner and no observers");
        assert!(!ro.contains(&shared), "shared path written by both");
        assert!(!writes_path(pruned.exprs[0], f));
        assert!(writes_path(pruned.exprs[0], shared));
    }

    #[test]
    fn prune_graph_blocks_parent_observers() {
        // r0 creates /d/f; r1 removes /d (observes /d's children).
        let f = p("/d/f");
        let e1 = Expr::create_file(f, Content::intern("x"));
        let e2 = Expr::rm(p("/d"));
        let g = FsGraph::new(
            vec![e1, e2],
            BTreeSet::new(),
            vec!["r0".into(), "r1".into()],
        );
        let (_, ro) = prune_graph(&g);
        assert!(!ro.contains(&f), "emptiness of /d is observed by r1");
    }
}
