//! Domain bounding (paper fig. 8) and the finite value encoding.
//!
//! FS programs manipulate a statically-known set of paths, but the result
//! of `rm(p)` and `emptydir?(p)` depends on *children* of `p` that may not
//! appear in the program text. Following fig. 8, the analysis domain adds a
//! fresh child below every such path so that the symbolic encoding can find
//! every counterexample (completeness, Lemma 2).
//!
//! Path states are encoded as codes in a [`ValueTable`]:
//! `DNE`, `Dir`, `File(c)` for each program-written content `c`, and
//! `File(init_p)` — the *provenance tag* for "whatever file content path
//! `p` held initially". Because FS has no content-reading operations,
//! provenance tags are an exact representation for Rehearsal's
//! difference-seeking queries (see `DESIGN.md` §4.1).

use rehearsal_fs::{Content, Expr, ExprNode, FsPath, MetaValue, Pred, PredNode};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The reserved path component used for fresh children (cannot appear in
/// parsed manifests because `FsPath::parse` would need a `/`-free name and
/// manifests never contain control characters).
const FRESH_COMPONENT: &str = "\u{1}fresh";

/// Whether `p` is a fresh child introduced by domain bounding.
pub fn is_fresh_path(p: FsPath) -> bool {
    p.basename().as_deref() == Some(FRESH_COMPONENT)
}

/// The semantic meaning of a value code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathValue {
    /// The path does not exist.
    Dne,
    /// The path is a directory.
    Dir,
    /// The path is a file with a program-written content.
    File(Content),
    /// The path is a file with whatever content the named path held in the
    /// initial state (a provenance tag).
    FileInit(FsPath),
}

/// Bidirectional map between [`PathValue`]s and the `u32` codes used by the
/// finite-domain solver.
#[derive(Debug, Default)]
pub struct ValueTable {
    values: Vec<PathValue>,
    lookup: HashMap<PathValue, u32>,
}

/// Code for [`PathValue::Dne`] (always 0).
pub const CODE_DNE: u32 = 0;
/// Code for [`PathValue::Dir`] (always 1).
pub const CODE_DIR: u32 = 1;

impl ValueTable {
    /// Creates a table pre-seeded with `Dne` and `Dir`.
    pub fn new() -> ValueTable {
        let mut t = ValueTable::default();
        assert_eq!(t.code(PathValue::Dne), CODE_DNE);
        assert_eq!(t.code(PathValue::Dir), CODE_DIR);
        t
    }

    /// The code for a value, allocating if needed.
    pub fn code(&mut self, v: PathValue) -> u32 {
        if let Some(&c) = self.lookup.get(&v) {
            return c;
        }
        let c = self.values.len() as u32;
        self.values.push(v);
        self.lookup.insert(v, c);
        c
    }

    /// The value for a code.
    ///
    /// # Panics
    ///
    /// Panics if the code was never allocated.
    pub fn value(&self, code: u32) -> PathValue {
        self.values[code as usize]
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether only the seed values exist.
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 2
    }
}

/// Code for [`MetaValue::Unmanaged`] in the per-field metadata encoding
/// (always 0; the [`MetaTable`] seeds it first).
pub const CODE_META_UNMANAGED: u32 = 0;

/// Bidirectional map between [`MetaValue`]s and the `u32` codes used for
/// the per-field metadata terms. `Unmanaged` is always code 0; managed
/// values are allocated on demand. All three fields share one table (a
/// sound over-approximation: a mode value is never *written* to an owner
/// term, so the extra codes are simply unreachable).
#[derive(Debug)]
pub struct MetaTable {
    values: Vec<MetaValue>,
    lookup: HashMap<MetaValue, u32>,
}

impl MetaTable {
    /// Creates a table pre-seeded with `Unmanaged`.
    pub fn new() -> MetaTable {
        let mut t = MetaTable {
            values: Vec::new(),
            lookup: HashMap::new(),
        };
        assert_eq!(t.code(MetaValue::Unmanaged), CODE_META_UNMANAGED);
        t
    }

    /// The code for a value, allocating if needed.
    pub fn code(&mut self, v: MetaValue) -> u32 {
        if let Some(&c) = self.lookup.get(&v) {
            return c;
        }
        let c = self.values.len() as u32;
        self.values.push(v);
        self.lookup.insert(v, c);
        c
    }

    /// The value for a code.
    ///
    /// # Panics
    ///
    /// Panics if the code was never allocated.
    pub fn value(&self, code: u32) -> MetaValue {
        self.values[code as usize]
    }

    /// Number of distinct values (including `Unmanaged`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether only `Unmanaged` exists.
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 1
    }
}

impl Default for MetaTable {
    fn default() -> MetaTable {
        MetaTable::new()
    }
}

/// The bounded analysis domain for a set of FS programs.
#[derive(Debug, Clone, Default)]
pub struct Domain {
    /// Every path the encoding models, including parents and fresh
    /// children.
    pub paths: BTreeSet<FsPath>,
    /// `children[p]` = modeled paths whose parent is `p`.
    pub children: BTreeMap<FsPath, Vec<FsPath>>,
    /// Paths whose metadata the programs observe or manage (via
    /// `chown`/`chgrp`/`chmod` or `meta_is`). Only these get per-field
    /// metadata terms in the symbolic state, so metadata-free programs pay
    /// nothing.
    pub meta_paths: BTreeSet<FsPath>,
    /// Every managed metadata value the programs mention; the initial
    /// per-field variables range over these plus `Unmanaged`.
    pub meta_values: BTreeSet<Content>,
}

impl Domain {
    /// Computes `dom` over a collection of expressions (paper fig. 8):
    /// program paths, parents of created/copied paths, and a fresh child
    /// for every `rm`'d or `emptydir?`-tested path.
    pub fn of_exprs(exprs: impl IntoIterator<Item = Expr>) -> Domain {
        let mut paths: BTreeSet<FsPath> = BTreeSet::new();
        let mut meta = MetaCollector::default();
        paths.insert(FsPath::root());
        for e in exprs {
            collect_expr(e, &mut paths, &mut meta);
        }
        // Close under parents so every modeled path's parent is modeled
        // (mkdir/creat/cp read the parent's state).
        let snapshot: Vec<FsPath> = paths.iter().copied().collect();
        for p in snapshot {
            for a in p.ancestors() {
                paths.insert(a);
            }
        }
        let mut children: BTreeMap<FsPath, Vec<FsPath>> = BTreeMap::new();
        for &p in &paths {
            if let Some(parent) = p.parent() {
                children.entry(parent).or_default().push(p);
            }
        }
        Domain {
            paths,
            children,
            meta_paths: meta.paths,
            meta_values: meta.values,
        }
    }

    /// The modeled children of `p`.
    pub fn children_of(&self, p: FsPath) -> &[FsPath] {
        self.children.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of modeled paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

fn fresh_child(p: FsPath) -> FsPath {
    p.join(FRESH_COMPONENT)
}

/// Accumulates the metadata-tracked paths and mentioned values.
#[derive(Debug, Default)]
struct MetaCollector {
    paths: BTreeSet<FsPath>,
    values: BTreeSet<Content>,
}

fn collect_pred(pred: Pred, out: &mut BTreeSet<FsPath>, meta: &mut MetaCollector) {
    match pred.node() {
        PredNode::True | PredNode::False => {}
        PredNode::DoesNotExist(p) | PredNode::IsFile(p) | PredNode::IsDir(p) => {
            out.insert(p);
        }
        PredNode::IsEmptyDir(p) => {
            out.insert(p);
            out.insert(fresh_child(p));
        }
        PredNode::MetaIs(p, _, v) => {
            out.insert(p);
            meta.paths.insert(p);
            meta.values.insert(v);
        }
        PredNode::And(a, b) | PredNode::Or(a, b) => {
            collect_pred(a, out, meta);
            collect_pred(b, out, meta);
        }
        PredNode::Not(a) => collect_pred(a, out, meta),
    }
}

fn collect_expr(e: Expr, out: &mut BTreeSet<FsPath>, meta: &mut MetaCollector) {
    match e.node() {
        ExprNode::Skip | ExprNode::Error => {}
        ExprNode::Mkdir(p) | ExprNode::CreateFile(p, _) => {
            out.insert(p);
            if let Some(parent) = p.parent() {
                out.insert(parent);
            }
        }
        ExprNode::Rm(p) => {
            out.insert(p);
            out.insert(fresh_child(p));
        }
        ExprNode::Cp(p1, p2) => {
            out.insert(p1);
            out.insert(p2);
            if let Some(parent) = p2.parent() {
                out.insert(parent);
            }
        }
        ExprNode::ChMeta(p, _, v) => {
            out.insert(p);
            meta.paths.insert(p);
            meta.values.insert(v);
        }
        ExprNode::Seq(a, b) => {
            collect_expr(a, out, meta);
            collect_expr(b, out, meta);
        }
        ExprNode::If(pred, a, b) => {
            collect_pred(pred, out, meta);
            collect_expr(a, out, meta);
            collect_expr(b, out, meta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn domain_includes_parents() {
        let e = Expr::create_file(p("/a/b/c"), Content::intern("x"));
        let d = Domain::of_exprs([e]);
        assert!(d.paths.contains(&p("/a/b/c")));
        assert!(d.paths.contains(&p("/a/b")));
        assert!(d.paths.contains(&p("/a")));
        assert!(d.paths.contains(&FsPath::root()));
    }

    #[test]
    fn rm_gets_fresh_child() {
        let e = Expr::rm(p("/d"));
        let d = Domain::of_exprs([e]);
        let kids = d.children_of(p("/d"));
        assert_eq!(kids.len(), 1);
        assert!(is_fresh_path(kids[0]));
    }

    #[test]
    fn emptydir_gets_fresh_child() {
        // The paper's §4.1 example: emptydir?(/a) vs dir?(/a) differ only on
        // states with something inside /a — the fresh child makes that state
        // expressible.
        let e = Expr::if_(Pred::is_empty_dir(p("/a")), Expr::SKIP, Expr::ERROR);
        let d = Domain::of_exprs([e]);
        assert!(d.children_of(p("/a")).iter().any(|&c| is_fresh_path(c)));
    }

    #[test]
    fn children_index_is_complete() {
        let e1 = Expr::mkdir(p("/x/y"));
        let e2 = Expr::create_file(p("/x/z"), Content::intern("c"));
        let d = Domain::of_exprs([e1, e2]);
        let kids = d.children_of(p("/x"));
        assert!(kids.contains(&p("/x/y")));
        assert!(kids.contains(&p("/x/z")));
    }

    #[test]
    fn meta_ops_register_paths_and_values() {
        use rehearsal_fs::MetaField;
        let root_c = Content::intern("root");
        let mode_c = Content::intern("0644");
        let e = Expr::chown(p("/m/f"), root_c).seq(Expr::if_(
            Pred::meta_is(p("/m/g"), MetaField::Mode, mode_c),
            Expr::SKIP,
            Expr::ERROR,
        ));
        let d = Domain::of_exprs([e]);
        assert!(d.paths.contains(&p("/m/f")) && d.paths.contains(&p("/m/g")));
        assert_eq!(
            d.meta_paths,
            [p("/m/f"), p("/m/g")].into_iter().collect::<BTreeSet<_>>()
        );
        assert_eq!(
            d.meta_values,
            [root_c, mode_c].into_iter().collect::<BTreeSet<_>>()
        );
        // Metadata-free programs track no meta paths at all.
        let plain = Domain::of_exprs([Expr::mkdir(p("/m"))]);
        assert!(plain.meta_paths.is_empty() && plain.meta_values.is_empty());
    }

    #[test]
    fn meta_table_codes_are_stable() {
        use rehearsal_fs::MetaValue;
        let mut t = MetaTable::new();
        assert!(t.is_empty());
        let root = MetaValue::Set(Content::intern("root"));
        let c1 = t.code(root);
        let c2 = t.code(root);
        assert_eq!(c1, c2);
        assert_ne!(c1, CODE_META_UNMANAGED);
        assert_eq!(t.value(c1), root);
        assert_eq!(t.value(CODE_META_UNMANAGED), MetaValue::Unmanaged);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn value_table_codes_are_stable() {
        let mut t = ValueTable::new();
        let c = Content::intern("hello");
        let f1 = t.code(PathValue::File(c));
        let f2 = t.code(PathValue::File(c));
        assert_eq!(f1, f2);
        assert_ne!(f1, CODE_DNE);
        assert_ne!(f1, CODE_DIR);
        assert_eq!(t.value(f1), PathValue::File(c));
        let i = t.code(PathValue::FileInit(p("/q")));
        assert_ne!(i, f1);
        assert_eq!(t.len(), 4);
    }
}
