//! Seeded property tests for the differential-verification layer.
//!
//! Two claims carry the whole incremental design, so both are tested
//! against the concrete semantics with seeded random programs:
//!
//! 1. **Disjoint footprints commute** — when two programs' footprint
//!    summaries are disjoint, running `a; b` and `b; a` is equivalent on
//!    every input (the summaries soundly overapproximate the programs'
//!    effects).
//! 2. **Oracle reuse never changes verdicts** — seeding a
//!    [`CommuteOracle`] with pair verdicts exported from a previous run
//!    (of the *unedited* graph) and re-analyzing an edited graph yields a
//!    result bit-identical to a cold run of the same edited graph: same
//!    verdict, same exploration statistics.

use rehearsal_core::{
    check_determinism, check_determinism_with_oracle, check_expr_equivalence, footprint,
    AnalysisOptions, CommuteOracle, FsGraph,
};
use rehearsal_fs::{Content, Expr, FsPath, MetaField, Pred};
use std::collections::BTreeSet;

/// A tiny splitmix-style generator: deterministic, seed-printable, no
/// dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let z = self.0 ^ (self.0 >> 31);
        z.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const PATHS: &[&str] = &[
    "/a",
    "/a/x",
    "/a/y",
    "/b",
    "/b/x",
    "/etc",
    "/etc/app.conf",
    "/etc/motd",
    "/srv",
    "/srv/data",
];

const CONTENTS: &[&str] = &["alpha", "beta", "gamma"];

fn path(rng: &mut Rng) -> FsPath {
    FsPath::parse(PATHS[rng.pick(PATHS.len())]).unwrap()
}

fn content(rng: &mut Rng) -> Content {
    Content::intern(CONTENTS[rng.pick(CONTENTS.len())])
}

/// One random primitive operation.
fn op(rng: &mut Rng) -> Expr {
    match rng.pick(6) {
        0 => Expr::mkdir(path(rng)),
        1 => Expr::create_file(path(rng), content(rng)),
        2 => Expr::rm(path(rng)),
        3 => Expr::chmeta(path(rng), MetaField::Mode, content(rng)),
        4 => {
            let p = path(rng);
            Expr::if_(
                Pred::is_dir(p),
                Expr::create_file(path(rng), content(rng)),
                Expr::SKIP,
            )
        }
        _ => {
            let p = path(rng);
            Expr::if_(Pred::is_file(p), Expr::rm(p), Expr::mkdir(path(rng)))
        }
    }
}

/// A random resource program: one to three primitive ops in sequence.
fn program(rng: &mut Rng) -> Expr {
    let mut e = op(rng);
    for _ in 0..rng.pick(3) {
        e = e.seq(op(rng));
    }
    e
}

/// A random resource graph: `n` programs plus random forward edges.
fn graph(rng: &mut Rng, n: usize) -> FsGraph {
    let exprs: Vec<Expr> = (0..n).map(|_| program(rng)).collect();
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.pick(4) == 0 {
                edges.insert((i, j));
            }
        }
    }
    let names = (0..n).map(|i| format!("r{i}")).collect();
    FsGraph::new(exprs, edges, names)
}

#[test]
fn disjoint_footprints_commute_concretely() {
    let mut rng = Rng(0x5eed_0001);
    let options = AnalysisOptions::default();
    let mut checked = 0;
    for _ in 0..300 {
        let a = program(&mut rng);
        let b = program(&mut rng);
        if !footprint(a).disjoint(&footprint(b)) {
            continue;
        }
        checked += 1;
        let report = check_expr_equivalence(a.seq(b), b.seq(a), &options)
            .expect("equivalence check must not abort");
        assert!(
            report.is_equivalent(),
            "disjoint footprints must commute on every input:\n  a = {a:?}\n  b = {b:?}"
        );
    }
    assert!(
        checked >= 20,
        "generator produced too few disjoint pairs ({checked})"
    );
}

#[test]
fn oracle_reuse_is_bit_identical_to_cold_runs() {
    let mut rng = Rng(0x5eed_0002);
    let options = AnalysisOptions::default();
    for round in 0..30 {
        let n = 3 + rng.pick(2);
        let base = graph(&mut rng, n);

        // Analyze the base graph with a recording oracle; its exported
        // pairs play the role of a baseline file.
        let recorder = CommuteOracle::new();
        let with_recorder = check_determinism_with_oracle(&base, &options, Some(&recorder))
            .expect("analysis must not abort");
        let cold_base = check_determinism(&base, &options).expect("analysis must not abort");
        assert_eq!(
            with_recorder.is_deterministic(),
            cold_base.is_deterministic(),
            "round {round}: an empty oracle changed the base verdict"
        );
        assert_eq!(
            with_recorder.stats(),
            cold_base.stats(),
            "round {round}: an empty oracle changed base exploration stats"
        );

        // Random edit: replace one resource's program.
        let mut exprs = base.exprs.clone();
        let victim = rng.pick(exprs.len());
        exprs[victim] = program(&mut rng);
        let names = (0..exprs.len()).map(|i| format!("r{i}")).collect();
        let edited = FsGraph::new(exprs, base.edges.clone(), names);

        // Re-analyze the edited graph cold and with the seeded oracle.
        let cold = check_determinism(&edited, &options).expect("analysis must not abort");
        let seeded = CommuteOracle::new();
        for (a, b, bit) in recorder.export() {
            seeded.seed(a, b, bit);
        }
        let warm = check_determinism_with_oracle(&edited, &options, Some(&seeded))
            .expect("analysis must not abort");
        assert_eq!(
            warm.is_deterministic(),
            cold.is_deterministic(),
            "round {round}: oracle reuse flipped the verdict"
        );
        assert_eq!(
            warm.stats(),
            cold.stats(),
            "round {round}: oracle reuse changed exploration stats"
        );
    }
}
