//! Property tests for the metadata-aware FS model: commutativity of
//! metadata writes, honesty of metadata-race counterexamples, and
//! agreement between the symbolic encoding and the concrete semantics on
//! randomly generated metadata-bearing programs.
//!
//! Cases are sampled with a small in-file deterministic PRNG instead of an
//! external property-testing crate (the build environment is offline), so
//! every run covers the same seeded case set.

use rehearsal_core::commutativity::{accesses, commutes};
use rehearsal_core::determinism::{check_determinism, AnalysisOptions, DeterminismReport, FsGraph};
use rehearsal_fs::{eval, Content, Expr, FileSystem, FsPath, MetaField, Pred};
use std::collections::BTreeSet;

/// Deterministic splitmix64 generator for test-case sampling.
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn field(rng: &mut Prng) -> MetaField {
    MetaField::ALL[rng.usize(3)]
}

fn value(rng: &mut Prng) -> Content {
    let pool = ["root", "carol", "adm", "0644", "0755", "0600"];
    Content::intern(pool[rng.usize(pool.len())])
}

fn ensure_dir(path: FsPath) -> Expr {
    Expr::if_then(Pred::is_dir(path).not(), Expr::mkdir(path))
}

fn overwrite(path: FsPath, c: Content) -> Expr {
    Expr::if_(
        Pred::does_not_exist(path),
        Expr::create_file(path, c),
        Expr::if_(
            Pred::is_file(path),
            Expr::rm(path).seq(Expr::create_file(path, c)),
            Expr::ERROR,
        ),
    )
}

/// A resource-shaped program: ensure the parent, definitively write the
/// file, then manage one random metadata field.
fn meta_resource(rng: &mut Prng, dir: FsPath, file: FsPath, content: &str) -> Expr {
    ensure_dir(dir)
        .seq(overwrite(file, Content::intern(content)))
        .seq(Expr::chmeta(file, field(rng), value(rng)))
}

/// (b) Metadata writes on *distinct* paths commute — claimed by the
/// analysis and confirmed by concrete replay — while two managements of
/// the *same* path's metadata never commute.
#[test]
fn meta_writes_commute_iff_paths_distinct() {
    let mut rng = Prng::new(40);
    let dir = p("/mp");
    let files = [p("/mp/a"), p("/mp/b"), p("/mp/c")];
    for case in 0..128 {
        let fa = files[rng.usize(3)];
        let fb = files[rng.usize(3)];
        let a = Expr::chmeta(fa, field(&mut rng), value(&mut rng));
        let b = Expr::chmeta(fb, field(&mut rng), value(&mut rng));
        let claim = commutes(&accesses(a), &accesses(b));
        assert_eq!(
            claim,
            fa != fb,
            "case {case}: chmeta commutativity must be exactly path-disjointness ({a} vs {b})"
        );
        // Replay on a state where all files exist: claimed commutation
        // must hold concretely.
        let mut fs = FileSystem::with_root();
        fs.insert(dir, rehearsal_fs::FileState::DIR);
        for &f in &files {
            fs.insert(f, rehearsal_fs::FileState::file(Content::intern("x")));
        }
        let ab = eval(a.seq(b), &fs);
        let ba = eval(b.seq(a), &fs);
        if claim {
            assert_eq!(ab, ba, "case {case}: claimed commutation must replay");
        }
    }
}

fn graph(exprs: Vec<Expr>, edges: &[(usize, usize)]) -> FsGraph {
    let names = (0..exprs.len()).map(|i| format!("r{i}")).collect();
    FsGraph::new(exprs, edges.iter().copied().collect(), names)
}

/// (c) Counterexample replay stays honest for metadata races: every
/// NONDET verdict on a random metadata-bearing graph comes with a
/// concrete initial state and two orders whose replayed outcomes differ.
#[test]
fn metadata_counterexamples_replay_honestly() {
    let mut rng = Prng::new(41);
    let mut nondet_seen = 0;
    for case in 0..48 {
        let n = 2 + rng.usize(2);
        let dir = p("/cr");
        let files = [p("/cr/f"), p("/cr/g")];
        let exprs: Vec<Expr> = (0..n)
            .map(|_| {
                let f = files[rng.usize(2)];
                // Same content everywhere: divergences can only be
                // metadata-level (or error-level via racing creations).
                meta_resource(&mut rng, dir, f, "same").seq(if rng.usize(4) == 0 {
                    Expr::chmeta(files[rng.usize(2)], field(&mut rng), value(&mut rng))
                } else {
                    Expr::SKIP
                })
            })
            .collect();
        let g = graph(exprs, &[]);
        match check_determinism(&g, &AnalysisOptions::default()).unwrap() {
            DeterminismReport::Deterministic(_) => {}
            DeterminismReport::NonDeterministic(cex, stats) => {
                nondet_seen += 1;
                assert!(stats.meta_ops > 0, "case {case}");
                assert_ne!(
                    cex.outcome_a, cex.outcome_b,
                    "case {case}: counterexample must replay to a real divergence"
                );
                // The two orders are permutations of the same resources.
                let sa: BTreeSet<usize> = cex.order_a.iter().copied().collect();
                let sb: BTreeSet<usize> = cex.order_b.iter().copied().collect();
                assert_eq!(sa, sb, "case {case}");
            }
        }
    }
    assert!(
        nondet_seen >= 10,
        "the generator must actually exercise metadata races (saw {nondet_seen})"
    );
}

/// Metadata-bearing graphs respect the analysis ablations: naive mode
/// (no reductions) and the default configuration agree on every verdict.
#[test]
fn metadata_verdicts_are_ablation_invariant() {
    let mut rng = Prng::new(42);
    for case in 0..24 {
        let dir = p("/ab");
        let files = [p("/ab/f"), p("/ab/g")];
        let exprs: Vec<Expr> = (0..2)
            .map(|_| {
                let f = files[rng.usize(2)];
                meta_resource(&mut rng, dir, f, "same")
            })
            .collect();
        let g = graph(exprs, &[]);
        let full = check_determinism(&g, &AnalysisOptions::default()).unwrap();
        let naive = check_determinism(&g, &AnalysisOptions::naive()).unwrap();
        assert_eq!(
            full.is_deterministic(),
            naive.is_deterministic(),
            "case {case}: reductions must not change metadata verdicts"
        );
        let no_cache = AnalysisOptions {
            state_cache: false,
            early_exit: false,
            ..AnalysisOptions::default()
        };
        let slow = check_determinism(&g, &no_cache).unwrap();
        assert_eq!(
            full.is_deterministic(),
            slow.is_deterministic(),
            "case {case}"
        );
    }
}
