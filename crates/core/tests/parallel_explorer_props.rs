//! Property tests for the parallel POR explorer: on seeded-PRNG random
//! graphs, thread count must be invisible to the verdict. Every thread
//! configuration agrees with the sequential explorer, the canonical
//! output-set cardinality (with early exit off, so exploration always
//! runs to completion) is bit-identical, and every NONDET counterexample
//! replays to genuinely divergent outcomes through the concrete
//! evaluator. A final test hammers the sharded interning arena from
//! eight raw threads and checks ids stay canonical.

use rehearsal_core::{check_determinism, AnalysisOptions, DeterminismReport, FsGraph};
use rehearsal_fs::{eval as concrete_eval, Content, Expr, FsPath, Pred};
use std::collections::BTreeSet;

/// The classic 64-bit splitmix PRNG (dependency-free, stable across
/// platforms, same as the fast-explorer property suite uses).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn ensure_dir(d: FsPath) -> Expr {
    Expr::if_then(Pred::is_dir(d).not(), Expr::mkdir(d))
}

/// One random resource: a small FS program over a shared path pool,
/// shaped so programs are well-formed but conflict often enough to
/// exercise the NONDET paths in every thread configuration.
fn random_resource(rng: &mut SplitMix64) -> Expr {
    let dir = p("/d");
    let pool = ["/d/f0", "/d/f1", "/d/f2", "/d/f3", "/g"];
    let path = p(pool[rng.below(pool.len() as u64) as usize]);
    let content = Content::intern(&format!("c{}", rng.below(3)));
    let base = match rng.below(5) {
        // Guarded create: first writer wins.
        0 => Expr::if_(
            Pred::does_not_exist(path),
            Expr::create_file(path, content),
            Expr::SKIP,
        ),
        // Overwrite: last writer wins (errs on a directory).
        1 => Expr::if_(
            Pred::is_file(path),
            Expr::rm(path).seq(Expr::create_file(path, content)),
            Expr::if_(
                Pred::does_not_exist(path),
                Expr::create_file(path, content),
                Expr::ERROR,
            ),
        ),
        // Remove if present as a file.
        2 => Expr::if_(Pred::is_file(path), Expr::rm(path), Expr::SKIP),
        // Reader: errs unless the path exists.
        3 => Expr::if_(Pred::does_not_exist(path), Expr::ERROR, Expr::SKIP),
        // Pure directory management.
        _ => Expr::SKIP,
    };
    ensure_dir(dir).seq(base)
}

/// A random graph of 3–7 resources with sparse acyclic `i < j` edges —
/// wide enough that the parallel frontier actually splits into multiple
/// independent subtrees.
fn random_graph(rng: &mut SplitMix64) -> FsGraph {
    let n = 3 + rng.below(5) as usize; // 3..=7 resources
    let exprs: Vec<Expr> = (0..n).map(|_| random_resource(rng)).collect();
    let mut edges = BTreeSet::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(15) {
                edges.insert((i, j)); // i < j keeps the graph acyclic
            }
        }
    }
    let names = (0..n).map(|i| format!("r{i}")).collect();
    FsGraph::new(exprs, edges, names)
}

/// Replays `order` through the concrete evaluator from `initial`.
fn replay(
    graph: &FsGraph,
    initial: &rehearsal_fs::FileSystem,
    order: &[usize],
) -> Result<rehearsal_fs::FileSystem, rehearsal_fs::ExecError> {
    let mut fs = initial.clone();
    for &i in order {
        fs = concrete_eval(graph.exprs[i], &fs)?;
    }
    Ok(fs)
}

/// A NONDET report must carry an honest counterexample: both orders
/// replay concretely to the reported outcomes, and the outcomes differ.
fn assert_honest(graph: &FsGraph, report: &DeterminismReport, tag: &str) {
    if let DeterminismReport::NonDeterministic(cex, _) = report {
        assert_eq!(
            replay(graph, &cex.initial, &cex.order_a),
            cex.outcome_a,
            "{tag}: outcome_a is honest"
        );
        assert_eq!(
            replay(graph, &cex.initial, &cex.order_b),
            cex.outcome_b,
            "{tag}: outcome_b is honest"
        );
        assert_ne!(
            cex.outcome_a, cex.outcome_b,
            "{tag}: divergence must be real"
        );
    }
}

#[test]
fn parallel_verdicts_match_sequential_on_random_programs() {
    // ~300 random programs × {2, 4, 8} threads, all compared against the
    // sequential explorer under the default (fast-path) options.
    let mut rng = SplitMix64(0x5eed_9a4a_0001);
    let mut nondet_seen = 0;
    for case in 0..300 {
        let graph = random_graph(&mut rng);
        let sequential = check_determinism(&graph, &AnalysisOptions::default())
            .unwrap_or_else(|e| panic!("case {case}: sequential aborted: {e}"));
        assert_honest(&graph, &sequential, &format!("case {case} seq"));
        if !sequential.is_deterministic() {
            nondet_seen += 1;
        }
        for threads in [2, 4, 8] {
            let options = AnalysisOptions::default().with_threads(threads);
            let parallel = check_determinism(&graph, &options)
                .unwrap_or_else(|e| panic!("case {case}: {threads}-thread aborted: {e}"));
            assert_eq!(
                parallel.is_deterministic(),
                sequential.is_deterministic(),
                "case {case}: {threads}-thread verdict diverges from sequential"
            );
            assert_honest(&graph, &parallel, &format!("case {case} t{threads}"));
        }
    }
    assert!(
        nondet_seen >= 20,
        "the generator must exercise the NONDET path (saw {nondet_seen})"
    );
}

#[test]
fn parallel_output_sets_match_sequential() {
    // With early exit off the explorer always runs to completion, so the
    // canonical output-set cardinality and the logical sequence count are
    // exact across thread counts — not merely the boolean verdict.
    let mut rng = SplitMix64(0x5eed_9a4a_0002);
    for case in 0..100 {
        let graph = random_graph(&mut rng);
        let base_options = AnalysisOptions {
            early_exit: false,
            ..AnalysisOptions::default()
        };
        let sequential = check_determinism(&graph, &base_options)
            .unwrap_or_else(|e| panic!("case {case}: sequential aborted: {e}"));
        let seq_stats = sequential.stats();
        for threads in [2, 4, 8] {
            let options = AnalysisOptions {
                early_exit: false,
                ..AnalysisOptions::default()
            }
            .with_threads(threads);
            let parallel = check_determinism(&graph, &options)
                .unwrap_or_else(|e| panic!("case {case}: {threads}-thread aborted: {e}"));
            let par_stats = parallel.stats();
            assert_eq!(
                parallel.is_deterministic(),
                sequential.is_deterministic(),
                "case {case}: {threads}-thread verdict diverges"
            );
            assert_eq!(
                par_stats.sequences_explored, seq_stats.sequences_explored,
                "case {case}: {threads}-thread logical sequence count diverges"
            );
            assert_eq!(
                par_stats.distinct_outputs, seq_stats.distinct_outputs,
                "case {case}: {threads}-thread canonical output set diverges"
            );
            assert_eq!(
                par_stats.resources, seq_stats.resources,
                "case {case}: resource count must not depend on threads"
            );
            assert_eq!(
                par_stats.paths, seq_stats.paths,
                "case {case}: tracked path count must not depend on threads"
            );
        }
    }
}

#[test]
fn sharded_arena_survives_concurrent_interning() {
    // Eight raw threads intern overlapping paths, contents, and composite
    // expressions into the global sharded arena. Interning is canonical:
    // equal data must yield the same Copy id on every thread, and ids
    // handed out during the race must still resolve to structurally equal
    // programs afterwards.
    const THREADS: usize = 8;
    const ROUNDS: usize = 200;
    let results: Vec<Vec<Expr>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let mut exprs = Vec::with_capacity(ROUNDS);
                    for r in 0..ROUNDS {
                        // Every thread builds the same program for round
                        // `r`; only the interning order races.
                        let path = p(&format!("/stress/d{}/f{}", r % 7, r % 13));
                        let content = Content::intern(&format!("payload-{}", r % 11));
                        let e = Expr::if_(
                            Pred::does_not_exist(path),
                            Expr::create_file(path, content),
                            Expr::rm(path).seq(Expr::SKIP),
                        );
                        // Touch thread-distinct data too, so shards see
                        // genuinely concurrent inserts, not just lookups.
                        let _ = Content::intern(&format!("thread-{t}-round-{r}"));
                        exprs.push(e);
                    }
                    exprs
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Canonical interning: the same program from every thread is the same
    // Copy id, so plain `==` agreement across all eight is exact.
    for r in 0..ROUNDS {
        let first = results[0][r];
        for (t, per_thread) in results.iter().enumerate() {
            assert_eq!(
                per_thread[r], first,
                "round {r}: thread {t} interned a different id for equal data"
            );
        }
    }
    // Distinct programs still get distinct ids.
    let unique: BTreeSet<_> = (0..ROUNDS)
        .map(|r| format!("{:?}", results[0][r]))
        .collect();
    assert!(unique.len() > 1, "stress programs must not all collapse");
}
