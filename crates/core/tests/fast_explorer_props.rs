//! Property tests for the fast explorer paths: on seeded-PRNG random
//! graphs, the state cache and the incremental early-exit SAT check must
//! be invisible to the verdict — every configuration agrees, and every
//! NONDET counterexample replays to genuinely divergent outcomes. A
//! second family checks the bitset fringe computation against a
//! `BTreeSet` reference implementation.

use rehearsal_core::bitset::Bits;
use rehearsal_core::{check_determinism, AnalysisOptions, DeterminismReport, FsGraph};
use rehearsal_fs::{eval as concrete_eval, Content, Expr, FsPath, Pred};
use std::collections::BTreeSet;

/// The classic 64-bit splitmix PRNG (dependency-free, stable across
/// platforms, same as the pkgdb generator uses).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn ensure_dir(d: FsPath) -> Expr {
    Expr::if_then(Pred::is_dir(d).not(), Expr::mkdir(d))
}

/// One random resource: a small FS program over a shared path pool, shaped
/// so programs are well-formed but conflict often enough to exercise the
/// NONDET paths.
fn random_resource(rng: &mut SplitMix64) -> Expr {
    let dir = p("/d");
    let pool = ["/d/f0", "/d/f1", "/d/f2", "/g"];
    let path = p(pool[rng.below(pool.len() as u64) as usize]);
    let content = Content::intern(&format!("c{}", rng.below(3)));
    let base = match rng.below(5) {
        // Guarded create: first writer wins.
        0 => Expr::if_(
            Pred::does_not_exist(path),
            Expr::create_file(path, content),
            Expr::SKIP,
        ),
        // Overwrite: last writer wins (errs on a directory).
        1 => Expr::if_(
            Pred::is_file(path),
            Expr::rm(path).seq(Expr::create_file(path, content)),
            Expr::if_(
                Pred::does_not_exist(path),
                Expr::create_file(path, content),
                Expr::ERROR,
            ),
        ),
        // Remove if present as a file.
        2 => Expr::if_(Pred::is_file(path), Expr::rm(path), Expr::SKIP),
        // Reader: errs unless the path exists.
        3 => Expr::if_(Pred::does_not_exist(path), Expr::ERROR, Expr::SKIP),
        // Pure directory management.
        _ => Expr::SKIP,
    };
    ensure_dir(dir).seq(base)
}

fn random_graph(rng: &mut SplitMix64) -> FsGraph {
    let n = 2 + rng.below(3) as usize; // 2..=4 resources
    let exprs: Vec<Expr> = (0..n).map(|_| random_resource(rng)).collect();
    let mut edges = BTreeSet::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(20) {
                edges.insert((i, j)); // i < j keeps the graph acyclic
            }
        }
    }
    let names = (0..n).map(|i| format!("r{i}")).collect();
    FsGraph::new(exprs, edges, names)
}

/// A NONDET report must carry a counterexample whose two replayed orders
/// genuinely diverge (the stronger from-scratch replay check lives in
/// `counterexamples_replay_concretely_in_every_configuration`).
fn assert_replay_diverges(report: &DeterminismReport, tag: &str) {
    if let DeterminismReport::NonDeterministic(cex, _) = report {
        assert_ne!(
            cex.outcome_a, cex.outcome_b,
            "{tag}: counterexample must replay divergently"
        );
    }
}

#[test]
fn verdicts_agree_across_fast_path_configurations() {
    let mut rng = SplitMix64(0x5eed_cafe_0001);
    for case in 0..96 {
        let graph = random_graph(&mut rng);
        let configs = [(true, true), (true, false), (false, true), (false, false)];
        let mut verdicts = Vec::new();
        for (state_cache, early_exit) in configs {
            let options = AnalysisOptions {
                state_cache,
                early_exit,
                ..AnalysisOptions::default()
            };
            let report = check_determinism(&graph, &options)
                .unwrap_or_else(|e| panic!("case {case}: aborted: {e}"));
            assert_replay_diverges(
                &report,
                &format!("case {case} ({state_cache},{early_exit})"),
            );
            verdicts.push(report.is_deterministic());
        }
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "case {case}: configurations disagree: {verdicts:?}"
        );
    }
}

#[test]
fn naive_ablation_agrees_with_fast_paths() {
    // The fig. 11 naive mode (all paper reductions off) must also be
    // unaffected by the state cache and early exit.
    let mut rng = SplitMix64(0x5eed_cafe_0002);
    for case in 0..48 {
        let graph = random_graph(&mut rng);
        let fast = check_determinism(&graph, &AnalysisOptions::naive()).unwrap();
        let slow = check_determinism(
            &graph,
            &AnalysisOptions {
                state_cache: false,
                early_exit: false,
                ..AnalysisOptions::naive()
            },
        )
        .unwrap();
        assert_eq!(
            fast.is_deterministic(),
            slow.is_deterministic(),
            "case {case}: naive fast/slow disagree"
        );
        assert_replay_diverges(&fast, &format!("case {case} naive fast"));
        assert_replay_diverges(&slow, &format!("case {case} naive slow"));
    }
}

#[test]
fn state_cache_preserves_the_logical_sequence_count() {
    // With early exit off in both runs, the cache must account for every
    // skipped sequence: the logical total is identical to a cache-free
    // exploration, and the skips are consistent.
    let mut rng = SplitMix64(0x5eed_cafe_0003);
    for case in 0..48 {
        let graph = random_graph(&mut rng);
        let with_cache = check_determinism(
            &graph,
            &AnalysisOptions {
                early_exit: false,
                ..AnalysisOptions::naive()
            },
        )
        .unwrap();
        let without_cache = check_determinism(
            &graph,
            &AnalysisOptions {
                early_exit: false,
                state_cache: false,
                ..AnalysisOptions::naive()
            },
        )
        .unwrap();
        let a = with_cache.stats();
        let b = without_cache.stats();
        assert_eq!(
            a.sequences_explored, b.sequences_explored,
            "case {case}: cache changes the logical sequence count"
        );
        assert_eq!(b.sequences_skipped, 0, "case {case}: no cache, no skips");
        assert!(
            a.sequences_skipped <= a.sequences_explored,
            "case {case}: skips are a subset of the covered space"
        );
        assert_eq!(
            a.distinct_outputs, b.distinct_outputs,
            "case {case}: dedup must agree"
        );
    }
}

#[test]
fn counterexamples_replay_concretely_in_every_configuration() {
    // Stronger replay check: re-run both orders of a NONDET counterexample
    // through the concrete evaluator from the reported initial state.
    let mut rng = SplitMix64(0x5eed_cafe_0004);
    let mut nondet_seen = 0;
    for _ in 0..96 {
        let graph = random_graph(&mut rng);
        for early_exit in [true, false] {
            let options = AnalysisOptions {
                early_exit,
                ..AnalysisOptions::default()
            };
            if let DeterminismReport::NonDeterministic(cex, _) =
                check_determinism(&graph, &options).unwrap()
            {
                nondet_seen += 1;
                let replay = |order: &[usize]| {
                    let mut fs = cex.initial.clone();
                    for &i in order {
                        fs = match concrete_eval(graph.exprs[i], &fs) {
                            Ok(next) => next,
                            Err(e) => return Err(e),
                        };
                    }
                    Ok(fs)
                };
                assert_eq!(replay(&cex.order_a), cex.outcome_a, "outcome_a is honest");
                assert_eq!(replay(&cex.order_b), cex.outcome_b, "outcome_b is honest");
                assert_ne!(cex.outcome_a, cex.outcome_b, "divergence is real");
            }
        }
    }
    assert!(
        nondet_seen >= 10,
        "the generator must exercise the NONDET path (saw {nondet_seen})"
    );
}

/// Reference fringe computation on `BTreeSet`s, mirroring the pre-bitset
/// explorer: a node is on the fringe iff it remains and none of its
/// predecessors remain.
fn fringe_reference(
    n: usize,
    edges: &BTreeSet<(usize, usize)>,
    remaining: &BTreeSet<usize>,
) -> Vec<usize> {
    let mut preds = vec![BTreeSet::new(); n];
    for &(a, b) in edges {
        preds[b].insert(a);
    }
    remaining
        .iter()
        .copied()
        .filter(|&i| preds[i].iter().all(|q| !remaining.contains(q)))
        .collect()
}

#[test]
fn bitset_fringe_matches_btreeset_fringe() {
    let mut rng = SplitMix64(0x5eed_cafe_0005);
    for _ in 0..256 {
        let n = 1 + rng.below(130) as usize; // cross the one-word boundary
        let mut edges = BTreeSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.chance(5) {
                    edges.insert((i, j));
                }
            }
        }
        let mut remaining_set = BTreeSet::new();
        let mut remaining_bits = Bits::new(n);
        for i in 0..n {
            if rng.chance(60) {
                remaining_set.insert(i);
                remaining_bits.insert(i);
            }
        }
        // Bitset fringe: remaining nodes whose predecessor mask misses
        // `remaining` — exactly what the explorer computes.
        let mut pred_bits = vec![Bits::new(n); n];
        for &(a, b) in &edges {
            pred_bits[b].insert(a);
        }
        let fringe_bits: Vec<usize> = remaining_bits
            .iter()
            .filter(|&i| !pred_bits[i].intersects(&remaining_bits))
            .collect();
        let reference = fringe_reference(n, &edges, &remaining_set);
        assert_eq!(fringe_bits, reference);
    }
}
