//! Abstract syntax for the supported Puppet fragment (paper fig. 1, plus
//! the conveniences real manifests use: classes, conditionals, selectors,
//! collectors, stages, and resource defaults).
//!
//! Statements, resource declarations, and attributes carry [`Span`]s into
//! the source (the µPuppet discipline), which is what lets every later
//! stage — evaluation errors, cycle reports, determinism counterexamples —
//! point back at the declaration that caused a finding. Spans are
//! *metadata*: they do not participate in AST equality (see
//! [`Span`]'s documentation), so `parse ∘ print = id` keeps holding.

use crate::lexer::StrPart;
use rehearsal_diag::Span;

/// An expression (attribute values, titles, conditions).
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    /// Double-quoted string with interpolation parts.
    Interp(Vec<StrPart>),
    /// Single-quoted (literal) string or bareword.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// `undef`.
    Undef,
    /// `default` (in case/selector arms).
    Default,
    /// Variable reference.
    Var(String),
    /// Array literal.
    Array(Vec<Expression>),
    /// Hash literal.
    Hash(Vec<(Expression, Expression)>),
    /// Resource reference `Type[title1, title2]`.
    ResourceRef(String, Vec<Expression>),
    /// Function call (e.g. `defined(File['/x'])`).
    Call(String, Vec<Expression>),
    /// `!e`.
    Not(Box<Expression>),
    /// `e and e`.
    And(Box<Expression>, Box<Expression>),
    /// `e or e`.
    Or(Box<Expression>, Box<Expression>),
    /// Comparison.
    Cmp(CmpOp, Box<Expression>, Box<Expression>),
    /// `e in e`.
    In(Box<Expression>, Box<Expression>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expression>, Box<Expression>),
    /// Selector `e ? { match => value, ... }`.
    Selector(Box<Expression>, Vec<(Expression, Expression)>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// One attribute `name => value`, with the span of `name => value` in the
/// source.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute value.
    pub value: Expression,
    /// Source span of the attribute (name through value).
    pub span: Span,
}

/// One body of a resource declaration: `title: attrs`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceBody {
    /// The title expression (may be an array for multi-title declarations).
    pub title: Expression,
    /// The attributes.
    pub attrs: Vec<Attribute>,
    /// Source span of the whole body (title through last attribute).
    pub span: Span,
    /// Source span of just the title expression.
    pub title_span: Span,
}

/// A resource declaration `type { title: attrs; title2: attrs2 }`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceDecl {
    /// Lower-cased resource type name (`file`, `package`, a defined type,
    /// or `class` for resource-style class declarations).
    pub type_name: String,
    /// The bodies.
    pub bodies: Vec<ResourceBody>,
    /// Whether the resource is virtual (`@type { ... }`). Virtual resources
    /// are only realized by collectors. (Parsed for completeness.)
    pub virtual_: bool,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// A parameter of a defined type or class, with optional default.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (without `$`).
    pub name: String,
    /// Default value, if any.
    pub default: Option<Expression>,
}

/// `define name(params) { body }`.
#[derive(Debug, Clone, PartialEq)]
pub struct DefineDecl {
    /// The new type's name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Statement>,
}

/// `class name(params) { body }`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Parent class (`inherits`), if any.
    pub inherits: Option<String>,
    /// Body statements.
    pub body: Vec<Statement>,
}

/// The kind of a chaining arrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrowKind {
    /// `->` ordering edge.
    Before,
    /// `~>` ordering edge with refresh (treated as ordering by Rehearsal).
    Notify,
}

/// An operand of a chain statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainOperand {
    /// One or more resource references.
    Refs(Vec<Expression>),
    /// An inline resource declaration.
    Resource(ResourceDecl),
    /// An inline collector (e.g. `File <| tag == web |>`).
    Collector(Collector),
}

/// `operand -> operand -> ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStatement {
    /// The operands, in source order.
    pub operands: Vec<ChainOperand>,
    /// The arrows between consecutive operands (`operands.len() - 1`).
    pub arrows: Vec<ArrowKind>,
    /// The source span of each arrow token (parallel to `arrows`); these
    /// become the *origin* of the dependency edges the chain creates.
    pub arrow_spans: Vec<Span>,
}

/// A collector query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Matches every resource of the collector's type.
    All,
    /// `attr == value`.
    Eq(String, Expression),
    /// `attr != value`.
    Ne(String, Expression),
    /// Conjunction.
    And(Box<Query>, Box<Query>),
    /// Disjunction.
    Or(Box<Query>, Box<Query>),
}

/// `Type <| query |> { overrides }` — realizes virtual resources and/or
/// overrides attributes of matching resources (a *global*, non-modular
/// operation; see paper §3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Collector {
    /// Lower-cased resource type name.
    pub type_name: String,
    /// The query.
    pub query: Query,
    /// Attribute overrides applied to matches.
    pub overrides: Vec<Attribute>,
}

/// `Type { attrs }` — resource defaults for a type in the current scope.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceDefault {
    /// Lower-cased resource type name.
    pub type_name: String,
    /// Default attributes.
    pub attrs: Vec<Attribute>,
}

/// A case statement arm.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Match values (`default` uses [`Expression::Default`]).
    pub values: Vec<Expression>,
    /// Arm body.
    pub body: Vec<Statement>,
}

/// A top-level or nested statement: what it is plus where it is.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The statement itself.
    pub kind: StatementKind,
    /// Its source span (first token through last).
    pub span: Span,
}

impl Statement {
    /// Creates a statement.
    pub fn new(kind: StatementKind, span: Span) -> Statement {
        Statement { kind, span }
    }
}

impl From<StatementKind> for Statement {
    /// Wraps a synthesized statement with a dummy span.
    fn from(kind: StatementKind) -> Statement {
        Statement {
            kind,
            span: Span::DUMMY,
        }
    }
}

/// The kinds of statements.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementKind {
    /// Resource declaration.
    Resource(ResourceDecl),
    /// Defined type declaration.
    Define(DefineDecl),
    /// Class declaration.
    Class(ClassDecl),
    /// `include a, b`.
    Include(Vec<String>),
    /// `$x = expr`.
    Assign(String, Expression),
    /// Dependency chain.
    Chain(ChainStatement),
    /// Collector statement.
    Collector(Collector),
    /// Resource defaults.
    ResourceDefault(ResourceDefault),
    /// `if` / `elsif` / `else`. Arms are `(condition, body)`; the final
    /// `else` is a `true` arm.
    If(Vec<(Expression, Vec<Statement>)>),
    /// `case expr { arms }`.
    Case(Expression, Vec<CaseArm>),
    /// `node 'name' { body }`.
    Node(Vec<String>, Vec<Statement>),
    /// A bare function call statement (e.g. `fail("message")`).
    Call(String, Vec<Expression>),
}

/// A parsed manifest: a sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// Top-level statements in source order.
    pub statements: Vec<Statement>,
}
