//! Error types for the Puppet frontend.

use std::fmt;

/// A position in manifest source (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexing or parsing error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pos: Pos,
    message: String,
}

impl ParseError {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> ParseError {
        ParseError {
            pos,
            message: message.into(),
        }
    }

    /// The position at which parsing failed.
    pub fn pos(&self) -> Pos {
        self.pos
    }

    /// The error message (without position).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// An error during manifest evaluation (catalog compilation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was referenced before assignment.
    UndefinedVariable(String),
    /// `include`/class reference to an unknown class.
    UnknownClass(String),
    /// A resource declaration used a type that is neither primitive nor
    /// user-defined.
    UnknownResourceType(String),
    /// The same resource (type + title) was declared twice.
    DuplicateResource(String, String),
    /// A dependency referenced a resource that is not in the catalog.
    UnknownReference(String, String),
    /// A referenced stage does not exist.
    UnknownStage(String),
    /// A required parameter of a defined type or class was not supplied.
    MissingParameter(String, String),
    /// An unexpected parameter was supplied to a defined type or class.
    UnexpectedParameter(String, String),
    /// A class was both `include`d and declared resource-style (or declared
    /// resource-style twice).
    DuplicateClassDeclaration(String),
    /// Arbitrary semantic error (e.g. `fail()` was called).
    Message(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UndefinedVariable(v) => write!(f, "undefined variable ${v}"),
            EvalError::UnknownClass(c) => write!(f, "unknown class {c:?}"),
            EvalError::UnknownResourceType(t) => write!(f, "unknown resource type {t:?}"),
            EvalError::DuplicateResource(t, title) => {
                write!(f, "duplicate declaration of {t}[{title}]")
            }
            EvalError::UnknownReference(t, title) => {
                write!(f, "dependency references undeclared resource {t}[{title}]")
            }
            EvalError::UnknownStage(s) => write!(f, "unknown stage {s:?}"),
            EvalError::MissingParameter(ty, p) => {
                write!(f, "missing required parameter {p:?} for {ty}")
            }
            EvalError::UnexpectedParameter(ty, p) => {
                write!(f, "unexpected parameter {p:?} for {ty}")
            }
            EvalError::DuplicateClassDeclaration(c) => {
                write!(f, "class {c:?} declared more than once")
            }
            EvalError::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The resource graph contains a dependency cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Human-readable names of resources on a cycle.
    pub members: Vec<String>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependency cycle involving: {}",
            self.members.join(" -> ")
        )
    }
}

impl std::error::Error for CycleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ParseError::new(Pos { line: 3, col: 7 }, "unexpected token");
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token");
        assert_eq!(
            EvalError::DuplicateResource("file".into(), "/a".into()).to_string(),
            "duplicate declaration of file[/a]"
        );
        let c = CycleError {
            members: vec!["Package[m4]".into(), "Package[make]".into()],
        };
        assert!(c.to_string().contains("Package[m4] -> Package[make]"));
    }
}
