//! Error types for the Puppet frontend.
//!
//! Every error carries a [`Span`] into the manifest source and converts to
//! a [`Diagnostic`] with a stable code, so the CLI and the fleet engine
//! can render source-anchored findings (snippet + carets) for any failure
//! anywhere in the frontend.

use rehearsal_diag::{codes, Diagnostic};
use std::fmt;

pub use rehearsal_diag::{Pos, Span};

/// A lexing or parsing error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    span: Span,
    message: String,
}

impl ParseError {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> ParseError {
        ParseError {
            span: Span::at(pos),
            message: message.into(),
        }
    }

    pub(crate) fn with_span(span: Span, message: impl Into<String>) -> ParseError {
        ParseError {
            span,
            message: message.into(),
        }
    }

    /// The position at which parsing failed.
    pub fn pos(&self) -> Pos {
        self.span.lo
    }

    /// The span of the offending token.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The error message (without position).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// This error as a [`Diagnostic`] (code `R0001`).
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::error(
            codes::SYNTAX_ERROR,
            format!("parse error: {}", self.message),
        )
        .with_primary(self.span, "here")
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span.lo, self.message)
    }
}

impl std::error::Error for ParseError {}

/// What went wrong during manifest evaluation (see [`EvalError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalErrorKind {
    /// A variable was referenced before assignment.
    UndefinedVariable(String),
    /// `include`/class reference to an unknown class.
    UnknownClass(String),
    /// A resource declaration used a type that is neither primitive nor
    /// user-defined.
    UnknownResourceType(String),
    /// The same resource (type + title) was declared twice.
    DuplicateResource(String, String),
    /// A dependency referenced a resource that is not in the catalog.
    UnknownReference(String, String),
    /// A referenced stage does not exist.
    UnknownStage(String),
    /// A required parameter of a defined type or class was not supplied.
    MissingParameter(String, String),
    /// An unexpected parameter was supplied to a defined type or class.
    UnexpectedParameter(String, String),
    /// A class was both `include`d and declared resource-style (or declared
    /// resource-style twice).
    DuplicateClassDeclaration(String),
    /// Arbitrary semantic error (e.g. `fail()` was called).
    Message(String),
}

impl EvalErrorKind {
    /// The stable diagnostic code for this kind.
    pub fn code(&self) -> &'static str {
        match self {
            EvalErrorKind::UndefinedVariable(_) => codes::UNDEFINED_VARIABLE,
            EvalErrorKind::UnknownClass(_) => codes::UNKNOWN_CLASS,
            EvalErrorKind::UnknownResourceType(_) => codes::UNKNOWN_RESOURCE_TYPE,
            EvalErrorKind::DuplicateResource(_, _) => codes::DUPLICATE_RESOURCE,
            EvalErrorKind::UnknownReference(_, _) => codes::UNKNOWN_REFERENCE,
            EvalErrorKind::UnknownStage(_) => codes::UNKNOWN_STAGE,
            EvalErrorKind::MissingParameter(_, _) => codes::MISSING_PARAMETER,
            EvalErrorKind::UnexpectedParameter(_, _) => codes::UNEXPECTED_PARAMETER,
            EvalErrorKind::DuplicateClassDeclaration(_) => codes::DUPLICATE_CLASS,
            EvalErrorKind::Message(_) => codes::EVAL_ERROR,
        }
    }
}

impl fmt::Display for EvalErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalErrorKind::UndefinedVariable(v) => write!(f, "undefined variable ${v}"),
            EvalErrorKind::UnknownClass(c) => write!(f, "unknown class {c:?}"),
            EvalErrorKind::UnknownResourceType(t) => write!(f, "unknown resource type {t:?}"),
            EvalErrorKind::DuplicateResource(t, title) => {
                write!(f, "duplicate declaration of {t}[{title}]")
            }
            EvalErrorKind::UnknownReference(t, title) => {
                write!(f, "dependency references undeclared resource {t}[{title}]")
            }
            EvalErrorKind::UnknownStage(s) => write!(f, "unknown stage {s:?}"),
            EvalErrorKind::MissingParameter(ty, p) => {
                write!(f, "missing required parameter {p:?} for {ty}")
            }
            EvalErrorKind::UnexpectedParameter(ty, p) => {
                write!(f, "unexpected parameter {p:?} for {ty}")
            }
            EvalErrorKind::DuplicateClassDeclaration(c) => {
                write!(f, "class {c:?} declared more than once")
            }
            EvalErrorKind::Message(m) => write!(f, "{m}"),
        }
    }
}

/// An error during manifest evaluation (catalog compilation): a kind plus
/// the span of the statement/declaration it arose from, and optionally
/// related source locations (e.g. the *first* declaration of a duplicate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    kind: EvalErrorKind,
    span: Span,
    related: Vec<(String, Span)>,
}

impl EvalError {
    /// Creates an error with no location yet (the evaluator attaches the
    /// enclosing statement's span as it propagates).
    pub fn new(kind: EvalErrorKind) -> EvalError {
        EvalError {
            kind,
            span: Span::DUMMY,
            related: Vec::new(),
        }
    }

    /// Sets the span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> EvalError {
        self.span = span;
        self
    }

    /// Sets the span only when none was attached yet.
    #[must_use]
    pub fn with_span_if_missing(mut self, span: Span) -> EvalError {
        if self.span.is_dummy() {
            self.span = span;
        }
        self
    }

    /// Adds a related source location (rendered as a secondary label).
    #[must_use]
    pub fn with_related(mut self, message: impl Into<String>, span: Span) -> EvalError {
        self.related.push((message.into(), span));
        self
    }

    /// What went wrong.
    pub fn kind(&self) -> &EvalErrorKind {
        &self.kind
    }

    /// Where it went wrong (dummy when unlocated).
    pub fn span(&self) -> Span {
        self.span
    }

    /// The stable diagnostic code.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }

    /// This error as a [`Diagnostic`].
    pub fn to_diagnostic(&self) -> Diagnostic {
        let mut d =
            Diagnostic::error(self.code(), self.kind.to_string()).with_primary(self.span, "");
        for (msg, span) in &self.related {
            d = d.with_secondary(*span, msg.clone());
        }
        d
    }
}

impl From<EvalErrorKind> for EvalError {
    fn from(kind: EvalErrorKind) -> EvalError {
        EvalError::new(kind)
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

impl std::error::Error for EvalError {}

/// One edge of a dependency cycle, with the source location where the
/// edge was declared (a chain arrow, a metaparameter, or a stage rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleEdge {
    /// The edge's source resource (display name).
    pub from: String,
    /// The edge's target resource (display name).
    pub to: String,
    /// Where the edge was declared.
    pub origin: Span,
}

/// The resource graph contains a dependency cycle.
///
/// `members` lists the resources of one *actual* cycle in edge order
/// (deterministically rotated so the smallest graph index comes first),
/// and `edges` pairs each consecutive hop with the declaration site of
/// that dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Human-readable names of the resources on the cycle, in cycle order.
    pub members: Vec<String>,
    /// The cycle's edges (`members[i] → members[i+1]`, wrapping) with the
    /// source location where each dependency was declared.
    pub edges: Vec<CycleEdge>,
}

impl CycleError {
    /// This error as a [`Diagnostic`] (code `R0201`): the first edge's
    /// declaration site is the primary label, the remaining edges are
    /// secondary labels.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let mut d = Diagnostic::error(codes::DEPENDENCY_CYCLE, self.to_string());
        for (i, e) in self.edges.iter().enumerate() {
            let msg = format!("{} -> {} declared here", e.from, e.to);
            if i == 0 {
                d = d.with_primary(e.origin, msg);
            } else {
                d = d.with_secondary(e.origin, msg);
            }
        }
        d
    }
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependency cycle involving: {}",
            self.members.join(" -> ")
        )?;
        if let Some(first) = self.members.first() {
            if self.members.len() > 1 {
                write!(f, " -> {first}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for CycleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ParseError::new(Pos { line: 3, col: 7 }, "unexpected token");
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token");
        assert_eq!(
            EvalError::new(EvalErrorKind::DuplicateResource("file".into(), "/a".into()))
                .to_string(),
            "duplicate declaration of file[/a]"
        );
        let c = CycleError {
            members: vec!["Package[m4]".into(), "Package[make]".into()],
            edges: Vec::new(),
        };
        assert!(c.to_string().contains("Package[m4] -> Package[make]"));
        assert!(
            c.to_string().ends_with("-> Package[m4]"),
            "the cycle closes: {c}"
        );
    }

    #[test]
    fn diagnostics_carry_codes_and_spans() {
        let span = Span::new(Pos::new(2, 1), Pos::new(2, 8));
        let d = ParseError::with_span(span, "oops").to_diagnostic();
        assert_eq!(d.code, "R0001");
        assert!(d.span().same(&span));

        let d = EvalError::new(EvalErrorKind::UndefinedVariable("x".into()))
            .with_span(span)
            .with_related("first declared here", Span::at(Pos::new(1, 1)))
            .to_diagnostic();
        assert_eq!(d.code, "R0101");
        assert_eq!(d.secondary.len(), 1);

        let c = CycleError {
            members: vec!["A[a]".into(), "B[b]".into()],
            edges: vec![
                CycleEdge {
                    from: "A[a]".into(),
                    to: "B[b]".into(),
                    origin: span,
                },
                CycleEdge {
                    from: "B[b]".into(),
                    to: "A[a]".into(),
                    origin: Span::at(Pos::new(4, 1)),
                },
            ],
        };
        let d = c.to_diagnostic();
        assert_eq!(d.code, "R0201");
        assert!(d.primary.is_some());
        assert_eq!(d.secondary.len(), 1);
    }

    #[test]
    fn span_attachment_rules() {
        let span = Span::at(Pos::new(5, 1));
        let e = EvalError::new(EvalErrorKind::Message("m".into()));
        assert!(e.span().is_dummy());
        let e = e.with_span_if_missing(span);
        assert!(e.span().same(&span));
        let e = e.with_span_if_missing(Span::at(Pos::new(9, 9)));
        assert!(e.span().same(&span), "first attachment wins");
    }
}
