//! Recursive-descent parser for the supported Puppet fragment.
//!
//! Every statement, resource declaration, and attribute is annotated with
//! its source [`Span`] (start of its first token through end of its last),
//! so downstream diagnostics can render snippets.

use crate::ast::*;
use crate::error::{ParseError, Pos, Span};
use crate::lexer::{lex, Spanned, StrPart, Token};

/// Parses a manifest from source text.
///
/// # Errors
///
/// Returns [`ParseError`] with a source position on malformed input.
///
/// # Examples
///
/// ```
/// use rehearsal_puppet::parse;
/// let m = parse("package { 'vim': ensure => present }")?;
/// assert_eq!(m.statements.len(), 1);
/// assert_eq!(m.statements[0].span.lo.line, 1);
/// # Ok::<(), rehearsal_puppet::ParseError>(())
/// ```
pub fn parse(text: &str) -> Result<Manifest, ParseError> {
    let _span = rehearsal_trace::span_cat("parse", "puppet");
    let tokens = lex(text)?;
    let mut p = Parser { tokens, i: 0 };
    let statements = p.parse_statements_until_eof()?;
    rehearsal_trace::counter_add("parse.statements", statements.len() as u64);
    Ok(Manifest { statements })
}

struct Parser {
    tokens: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.i.min(self.tokens.len() - 1)].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.i + 1).min(self.tokens.len() - 1)].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i.min(self.tokens.len() - 1)].pos
    }

    /// The end position of the most recently consumed token (falls back to
    /// the current position at the start of input).
    fn prev_end(&self) -> Pos {
        if self.i == 0 {
            self.pos()
        } else {
            self.tokens[(self.i - 1).min(self.tokens.len() - 1)].end
        }
    }

    /// The span of the token about to be consumed.
    fn cur_span(&self) -> Span {
        self.tokens[self.i.min(self.tokens.len() - 1)].span()
    }

    /// A span from `lo` through the end of the last consumed token.
    fn span_from(&self, lo: Pos) -> Span {
        Span::new(lo, self.prev_end())
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.i.min(self.tokens.len() - 1)].token.clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        // Anchor on the offending token's full span so carets underline
        // exactly it.
        ParseError::with_span(self.cur_span(), message.into())
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        if self.peek() == want {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!("expected '{want}', found '{}'", self.peek())))
        }
    }

    fn eat(&mut self, want: &Token) -> bool {
        if self.peek() == want {
            self.next();
            true
        } else {
            false
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found '{other}'"))),
        }
    }

    fn parse_statements_until_eof(&mut self) -> Result<Vec<Statement>, ParseError> {
        let mut out = Vec::new();
        while *self.peek() != Token::Eof {
            out.push(self.parse_statement()?);
        }
        Ok(out)
    }

    fn parse_block(&mut self) -> Result<Vec<Statement>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut out = Vec::new();
        while *self.peek() != Token::RBrace {
            if *self.peek() == Token::Eof {
                return Err(self.err("unexpected end of input in block"));
            }
            out.push(self.parse_statement()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(out)
    }

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        let lo = self.pos();
        let kind = self.parse_statement_kind()?;
        Ok(Statement::new(kind, self.span_from(lo)))
    }

    fn parse_statement_kind(&mut self) -> Result<StatementKind, ParseError> {
        match self.peek().clone() {
            Token::Ident(kw) if kw == "define" => self.parse_define(),
            Token::Ident(kw) if kw == "class" && matches!(self.peek2(), Token::Ident(_)) => {
                self.parse_class_decl()
            }
            Token::Ident(kw) if kw == "if" => self.parse_if(),
            Token::Ident(kw) if kw == "unless" => self.parse_unless(),
            Token::Ident(kw) if kw == "case" => self.parse_case(),
            Token::Ident(kw) if kw == "node" => self.parse_node(),
            Token::Ident(kw) if kw == "include" => self.parse_include(),
            Token::Var(name) => {
                self.next();
                self.expect(&Token::Assign)?;
                let value = self.parse_expr()?;
                Ok(StatementKind::Assign(name, value))
            }
            Token::Ident(name) if matches!(self.peek2(), Token::LParen) => {
                self.next();
                let args = self.parse_call_args()?;
                Ok(StatementKind::Call(name, args))
            }
            Token::At => {
                let lo = self.pos();
                self.next();
                let decl = self.parse_resource_decl(true, lo)?;
                Ok(StatementKind::Resource(decl))
            }
            Token::TypeName(_) if *self.peek2() == Token::LBrace => {
                let d = self.parse_resource_default()?;
                Ok(StatementKind::ResourceDefault(d))
            }
            Token::Ident(_) | Token::TypeName(_) | Token::LBracket => self.parse_chain(),
            other => Err(self.err(format!("unexpected token '{other}'"))),
        }
    }

    fn parse_define(&mut self) -> Result<StatementKind, ParseError> {
        self.next(); // define
        let name = self.expect_ident()?;
        let params = if *self.peek() == Token::LParen {
            self.parse_params()?
        } else {
            Vec::new()
        };
        let body = self.parse_block()?;
        Ok(StatementKind::Define(DefineDecl { name, params, body }))
    }

    fn parse_class_decl(&mut self) -> Result<StatementKind, ParseError> {
        self.next(); // class
        let name = self.expect_ident()?;
        let params = if *self.peek() == Token::LParen {
            self.parse_params()?
        } else {
            Vec::new()
        };
        let inherits = if self.is_kw("inherits") {
            self.next();
            Some(self.expect_ident()?)
        } else {
            None
        };
        let body = self.parse_block()?;
        Ok(StatementKind::Class(ClassDecl {
            name,
            params,
            inherits,
            body,
        }))
    }

    fn parse_params(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        while *self.peek() != Token::RParen {
            let name = match self.next() {
                Token::Var(v) => v,
                other => return Err(self.err(format!("expected parameter, found '{other}'"))),
            };
            let default = if self.eat(&Token::Assign) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            params.push(Param { name, default });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(params)
    }

    fn parse_if(&mut self) -> Result<StatementKind, ParseError> {
        self.next(); // if
        let mut arms = Vec::new();
        let cond = self.parse_expr()?;
        let body = self.parse_block()?;
        arms.push((cond, body));
        loop {
            if self.is_kw("elsif") {
                self.next();
                let cond = self.parse_expr()?;
                let body = self.parse_block()?;
                arms.push((cond, body));
            } else if self.is_kw("else") {
                self.next();
                let body = self.parse_block()?;
                arms.push((Expression::Bool(true), body));
                break;
            } else {
                break;
            }
        }
        Ok(StatementKind::If(arms))
    }

    fn parse_unless(&mut self) -> Result<StatementKind, ParseError> {
        self.next(); // unless
        let cond = self.parse_expr()?;
        let body = self.parse_block()?;
        let mut arms = vec![(Expression::Not(Box::new(cond)), body)];
        if self.is_kw("else") {
            self.next();
            let body = self.parse_block()?;
            arms.push((Expression::Bool(true), body));
        }
        Ok(StatementKind::If(arms))
    }

    fn parse_case(&mut self) -> Result<StatementKind, ParseError> {
        self.next(); // case
        let scrutinee = self.parse_expr()?;
        self.expect(&Token::LBrace)?;
        let mut arms = Vec::new();
        while *self.peek() != Token::RBrace {
            let mut values = vec![self.parse_case_value()?];
            while self.eat(&Token::Comma) {
                values.push(self.parse_case_value()?);
            }
            self.expect(&Token::Colon)?;
            let body = self.parse_block()?;
            arms.push(CaseArm { values, body });
        }
        self.expect(&Token::RBrace)?;
        Ok(StatementKind::Case(scrutinee, arms))
    }

    fn parse_case_value(&mut self) -> Result<Expression, ParseError> {
        if self.is_kw("default") {
            self.next();
            Ok(Expression::Default)
        } else {
            self.parse_expr()
        }
    }

    fn parse_node(&mut self) -> Result<StatementKind, ParseError> {
        self.next(); // node
        let mut names = vec![self.parse_node_name()?];
        while self.eat(&Token::Comma) {
            names.push(self.parse_node_name()?);
        }
        let body = self.parse_block()?;
        Ok(StatementKind::Node(names, body))
    }

    fn parse_node_name(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            Token::RawStr(s) => Ok(s),
            Token::Str(parts) => {
                let mut s = String::new();
                for p in parts {
                    match p {
                        StrPart::Lit(l) => s.push_str(&l),
                        StrPart::Var(_) => {
                            return Err(self.err("node names cannot interpolate variables"))
                        }
                    }
                }
                Ok(s)
            }
            other => Err(self.err(format!("expected node name, found '{other}'"))),
        }
    }

    fn parse_include(&mut self) -> Result<StatementKind, ParseError> {
        self.next(); // include
        let mut names = vec![self.parse_class_name()?];
        while self.eat(&Token::Comma) {
            names.push(self.parse_class_name()?);
        }
        Ok(StatementKind::Include(names))
    }

    fn parse_class_name(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            Token::RawStr(s) => Ok(s),
            other => Err(self.err(format!("expected class name, found '{other}'"))),
        }
    }

    /// Parses a chain statement; single operands degrade to their natural
    /// statement form.
    fn parse_chain(&mut self) -> Result<StatementKind, ParseError> {
        let first = self.parse_chain_operand()?;
        let mut operands = vec![first];
        let mut arrows = Vec::new();
        let mut arrow_spans = Vec::new();
        loop {
            let kind = match self.peek() {
                Token::Arrow => ArrowKind::Before,
                Token::TildeArrow => ArrowKind::Notify,
                _ => break,
            };
            arrow_spans.push(self.cur_span());
            self.next();
            arrows.push(kind);
            operands.push(self.parse_chain_operand()?);
        }
        if operands.len() == 1 {
            // Not actually a chain.
            return Ok(match operands.pop().expect("one operand") {
                ChainOperand::Resource(r) => StatementKind::Resource(r),
                ChainOperand::Collector(c) => StatementKind::Collector(c),
                ChainOperand::Refs(_) => {
                    return Err(self.err("dangling resource reference is not a statement"))
                }
            });
        }
        Ok(StatementKind::Chain(ChainStatement {
            operands,
            arrows,
            arrow_spans,
        }))
    }

    fn parse_chain_operand(&mut self) -> Result<ChainOperand, ParseError> {
        match self.peek().clone() {
            Token::Ident(_) => {
                let lo = self.pos();
                let decl = self.parse_resource_decl(false, lo)?;
                Ok(ChainOperand::Resource(decl))
            }
            Token::LBracket => {
                // Array of references.
                self.next();
                let mut refs = Vec::new();
                while *self.peek() != Token::RBracket {
                    refs.push(self.parse_resource_ref()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(ChainOperand::Refs(refs))
            }
            Token::TypeName(_) => match self.peek2() {
                Token::LBracket => {
                    let r = self.parse_resource_ref()?;
                    Ok(ChainOperand::Refs(vec![r]))
                }
                Token::CollectStart => {
                    let c = self.parse_collector()?;
                    Ok(ChainOperand::Collector(c))
                }
                other => Err(self.err(format!(
                    "expected '[' or '<|' after type name, found '{other}'"
                ))),
            },
            other => Err(self.err(format!("unexpected token '{other}'"))),
        }
    }

    fn parse_resource_ref(&mut self) -> Result<Expression, ParseError> {
        let type_name = match self.next() {
            Token::TypeName(t) => t,
            other => return Err(self.err(format!("expected type name, found '{other}'"))),
        };
        self.expect(&Token::LBracket)?;
        let mut titles = vec![self.parse_expr()?];
        while self.eat(&Token::Comma) {
            if *self.peek() == Token::RBracket {
                break;
            }
            titles.push(self.parse_expr()?);
        }
        self.expect(&Token::RBracket)?;
        Ok(Expression::ResourceRef(type_name, titles))
    }

    fn parse_collector(&mut self) -> Result<Collector, ParseError> {
        let type_name = match self.next() {
            Token::TypeName(t) => t.to_lowercase(),
            other => return Err(self.err(format!("expected type name, found '{other}'"))),
        };
        self.expect(&Token::CollectStart)?;
        let query = if *self.peek() == Token::CollectEnd {
            Query::All
        } else {
            self.parse_query()?
        };
        self.expect(&Token::CollectEnd)?;
        let overrides = if *self.peek() == Token::LBrace {
            self.next();
            let attrs = self.parse_attributes()?;
            self.expect(&Token::RBrace)?;
            attrs
        } else {
            Vec::new()
        };
        Ok(Collector {
            type_name,
            query,
            overrides,
        })
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        let mut q = self.parse_query_atom()?;
        loop {
            if self.is_kw("and") {
                self.next();
                let r = self.parse_query_atom()?;
                q = Query::And(Box::new(q), Box::new(r));
            } else if self.is_kw("or") {
                self.next();
                let r = self.parse_query_atom()?;
                q = Query::Or(Box::new(q), Box::new(r));
            } else {
                break;
            }
        }
        Ok(q)
    }

    fn parse_query_atom(&mut self) -> Result<Query, ParseError> {
        if self.eat(&Token::LParen) {
            let q = self.parse_query()?;
            self.expect(&Token::RParen)?;
            return Ok(q);
        }
        let attr = self.expect_ident()?;
        match self.next() {
            Token::EqEq => Ok(Query::Eq(attr, self.parse_primary()?)),
            Token::NotEq => Ok(Query::Ne(attr, self.parse_primary()?)),
            other => Err(self.err(format!("expected '==' or '!=', found '{other}'"))),
        }
    }

    fn parse_resource_default(&mut self) -> Result<ResourceDefault, ParseError> {
        let type_name = match self.next() {
            Token::TypeName(t) => t.to_lowercase(),
            other => return Err(self.err(format!("expected type name, found '{other}'"))),
        };
        self.expect(&Token::LBrace)?;
        let attrs = self.parse_attributes()?;
        self.expect(&Token::RBrace)?;
        Ok(ResourceDefault { type_name, attrs })
    }

    fn parse_resource_decl(&mut self, virtual_: bool, lo: Pos) -> Result<ResourceDecl, ParseError> {
        let type_name = self.expect_ident()?;
        self.expect(&Token::LBrace)?;
        let mut bodies = Vec::new();
        loop {
            let title_lo = self.pos();
            let title = self.parse_expr()?;
            let title_span = self.span_from(title_lo);
            self.expect(&Token::Colon)?;
            let attrs = self.parse_attributes()?;
            bodies.push(ResourceBody {
                title,
                attrs,
                span: self.span_from(title_lo),
                title_span,
            });
            if self.eat(&Token::Semi) {
                if *self.peek() == Token::RBrace {
                    break;
                }
                continue;
            }
            break;
        }
        self.expect(&Token::RBrace)?;
        Ok(ResourceDecl {
            type_name,
            bodies,
            virtual_,
            span: self.span_from(lo),
        })
    }

    fn parse_attributes(&mut self) -> Result<Vec<Attribute>, ParseError> {
        let mut attrs = Vec::new();
        while let Token::Ident(name) = self.peek() {
            let name = name.clone();
            if *self.peek2() != Token::FatArrow {
                break;
            }
            let lo = self.pos();
            self.next();
            self.next();
            let value = self.parse_expr()?;
            attrs.push(Attribute {
                name,
                value,
                span: self.span_from(lo),
            });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(attrs)
    }

    fn parse_call_args(&mut self) -> Result<Vec<Expression>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        while *self.peek() != Token::RParen {
            args.push(self.parse_expr()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(args)
    }

    // ---- expressions (precedence climbing) ----

    fn parse_expr(&mut self) -> Result<Expression, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expression, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.is_kw("or") {
            self.next();
            let rhs = self.parse_and()?;
            lhs = Expression::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expression, ParseError> {
        let mut lhs = self.parse_comparison()?;
        while self.is_kw("and") {
            self.next();
            let rhs = self.parse_comparison()?;
            lhs = Expression::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expression, ParseError> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Token::EqEq => Some(CmpOp::Eq),
            Token::NotEq => Some(CmpOp::Ne),
            Token::Lt => Some(CmpOp::Lt),
            Token::Le => Some(CmpOp::Le),
            Token::Gt => Some(CmpOp::Gt),
            Token::Ge => Some(CmpOp::Ge),
            Token::Ident(s) if s == "in" => {
                self.next();
                let rhs = self.parse_additive()?;
                return Ok(Expression::In(Box::new(lhs), Box::new(rhs)));
            }
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let rhs = self.parse_additive()?;
            Ok(Expression::Cmp(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_additive(&mut self) -> Result<Expression, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => ArithOp::Add,
                Token::Minus => ArithOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_multiplicative()?;
            lhs = Expression::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expression, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => ArithOp::Mul,
                Token::Slash => ArithOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expression::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expression, ParseError> {
        if self.eat(&Token::Bang) {
            let e = self.parse_unary()?;
            return Ok(Expression::Not(Box::new(e)));
        }
        if self.eat(&Token::Minus) {
            let e = self.parse_unary()?;
            // A negated literal is a negative literal: the printer emits
            // `Int(-5)` as `-5`, so folding here is what makes
            // `parse ∘ print = id` hold for negative numbers (it used to
            // reparse as `0 - 5`).
            if let Expression::Int(n) = e {
                return Ok(Expression::Int(-n));
            }
            return Ok(Expression::Arith(
                ArithOp::Sub,
                Box::new(Expression::Int(0)),
                Box::new(e),
            ));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expression, ParseError> {
        let mut e = self.parse_primary()?;
        // Selector: expr ? { match => value, ... }
        while *self.peek() == Token::Question {
            self.next();
            self.expect(&Token::LBrace)?;
            let mut arms = Vec::new();
            while *self.peek() != Token::RBrace {
                let m = self.parse_case_value()?;
                self.expect(&Token::FatArrow)?;
                let v = self.parse_expr()?;
                arms.push((m, v));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RBrace)?;
            e = Expression::Selector(Box::new(e), arms);
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expression, ParseError> {
        match self.peek().clone() {
            Token::RawStr(s) => {
                self.next();
                Ok(Expression::Str(s))
            }
            Token::Str(parts) => {
                self.next();
                Ok(Expression::Interp(parts))
            }
            Token::Int(n) => {
                self.next();
                Ok(Expression::Int(n))
            }
            Token::Var(v) => {
                self.next();
                Ok(Expression::Var(v))
            }
            Token::LBracket => {
                self.next();
                let mut items = Vec::new();
                while *self.peek() != Token::RBracket {
                    items.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(Expression::Array(items))
            }
            Token::LBrace => {
                self.next();
                let mut items = Vec::new();
                while *self.peek() != Token::RBrace {
                    let k = self.parse_expr()?;
                    self.expect(&Token::FatArrow)?;
                    let v = self.parse_expr()?;
                    items.push((k, v));
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RBrace)?;
                Ok(Expression::Hash(items))
            }
            Token::LParen => {
                self.next();
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::TypeName(_) => self.parse_resource_ref(),
            Token::Ident(word) => {
                self.next();
                match word.as_str() {
                    "true" => Ok(Expression::Bool(true)),
                    "false" => Ok(Expression::Bool(false)),
                    "undef" => Ok(Expression::Undef),
                    "default" => Ok(Expression::Default),
                    _ => {
                        if *self.peek() == Token::LParen {
                            let args = self.parse_call_args()?;
                            Ok(Expression::Call(word, args))
                        } else {
                            // Bareword: treated as a string (Puppet style).
                            Ok(Expression::Str(word))
                        }
                    }
                }
            }
            other => Err(self.err(format!("expected expression, found '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_resource() {
        let m = parse("package { 'vim': ensure => present }").unwrap();
        match &m.statements[0].kind {
            StatementKind::Resource(r) => {
                assert_eq!(r.type_name, "package");
                assert_eq!(r.bodies.len(), 1);
                assert_eq!(r.bodies[0].title, Expression::Str("vim".into()));
                assert_eq!(r.bodies[0].attrs[0].name, "ensure");
                assert_eq!(
                    r.bodies[0].attrs[0].value,
                    Expression::Str("present".into())
                );
            }
            other => panic!("expected resource, got {other:?}"),
        }
    }

    #[test]
    fn spans_cover_declarations() {
        let src = "package { 'vim': ensure => present }\nfile { '/x': content => 'c' }";
        let m = parse(src).unwrap();
        let s0 = m.statements[0].span;
        assert_eq!((s0.lo.line, s0.lo.col), (1, 1));
        assert_eq!(s0.hi.line, 1);
        assert_eq!(s0.hi.col as usize, src.lines().next().unwrap().len() + 1);
        let s1 = m.statements[1].span;
        assert_eq!((s1.lo.line, s1.lo.col), (2, 1));
        match &m.statements[0].kind {
            StatementKind::Resource(r) => {
                assert!(r.span.same(&s0));
                let a = &r.bodies[0].attrs[0];
                assert_eq!((a.span.lo.line, a.span.lo.col), (1, 18));
                assert_eq!(a.span.hi.col, 35); // end of `present`
                let t = r.bodies[0].title_span;
                assert_eq!((t.lo.line, t.lo.col), (1, 11));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_body_resource() {
        let m = parse("file { '/a': ensure => file; '/b': ensure => directory }").unwrap();
        match &m.statements[0].kind {
            StatementKind::Resource(r) => {
                assert_eq!(r.bodies.len(), 2);
                assert_eq!(r.bodies[1].span.lo.col, 30);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_title() {
        let m = parse("package { ['m4', 'make']: ensure => present }").unwrap();
        match &m.statements[0].kind {
            StatementKind::Resource(r) => {
                assert!(matches!(r.bodies[0].title, Expression::Array(_)))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dependency_chain() {
        let m = parse("User['carol'] -> File['/home/carol/.vimrc']").unwrap();
        match &m.statements[0].kind {
            StatementKind::Chain(c) => {
                assert_eq!(c.operands.len(), 2);
                assert_eq!(c.arrows, vec![ArrowKind::Before]);
                assert_eq!(c.arrow_spans.len(), 1);
                assert_eq!((c.arrow_spans[0].lo.line, c.arrow_spans[0].lo.col), (1, 15));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chain_of_declarations() {
        let m = parse("package { 'a': } -> file { '/b': }").unwrap();
        match &m.statements[0].kind {
            StatementKind::Chain(c) => {
                assert!(matches!(c.operands[0], ChainOperand::Resource(_)));
                assert!(matches!(c.operands[1], ChainOperand::Resource(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn notify_chain() {
        let m = parse("Package['nginx'] ~> Service['nginx']").unwrap();
        match &m.statements[0].kind {
            StatementKind::Chain(c) => assert_eq!(c.arrows, vec![ArrowKind::Notify]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn define_with_params() {
        let src = r#"
            define myuser($title, $shell = '/bin/bash') {
              user { "$title": ensure => present }
            }
            myuser { 'alice': }
        "#;
        let m = parse(src).unwrap();
        match &m.statements[0].kind {
            StatementKind::Define(d) => {
                assert_eq!(d.name, "myuser");
                assert_eq!(d.params.len(), 2);
                assert!(d.params[1].default.is_some());
                assert_eq!(d.body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(&m.statements[1].kind, StatementKind::Resource(_)));
    }

    #[test]
    fn class_and_include() {
        let src = "class web { package { 'nginx': } }\ninclude web";
        let m = parse(src).unwrap();
        assert!(matches!(&m.statements[0].kind, StatementKind::Class(_)));
        assert_eq!(
            m.statements[1].kind,
            StatementKind::Include(vec!["web".to_string()])
        );
    }

    #[test]
    fn resource_style_class_decl() {
        let m = parse("class { 'web': port => 80 }").unwrap();
        match &m.statements[0].kind {
            StatementKind::Resource(r) => assert_eq!(r.type_name, "class"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_elsif_else() {
        let src = r#"
            if $osfamily == 'Debian' {
              package { 'apache2': }
            } elsif $osfamily == 'RedHat' {
              package { 'httpd': }
            } else {
              package { 'other': }
            }
        "#;
        let m = parse(src).unwrap();
        match &m.statements[0].kind {
            StatementKind::If(arms) => {
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[2].0, Expression::Bool(true));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn case_statement() {
        let src = r#"
            case $osfamily {
              'Debian', 'Ubuntu': { package { 'apache2': } }
              default: { package { 'httpd': } }
            }
        "#;
        let m = parse(src).unwrap();
        match &m.statements[0].kind {
            StatementKind::Case(_, arms) => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].values.len(), 2);
                assert_eq!(arms[1].values[0], Expression::Default);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn selector_expression() {
        let src = "$pkg = $osfamily ? { 'Debian' => 'apache2', default => 'httpd' }";
        let m = parse(src).unwrap();
        match &m.statements[0].kind {
            StatementKind::Assign(name, Expression::Selector(_, arms)) => {
                assert_eq!(name, "pkg");
                assert_eq!(arms.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn collector_with_override() {
        let m = parse("File <| owner == 'carol' |> { mode => 'go-rwx' }").unwrap();
        match &m.statements[0].kind {
            StatementKind::Collector(c) => {
                assert_eq!(c.type_name, "file");
                assert_eq!(
                    c.query,
                    Query::Eq("owner".into(), Expression::Str("carol".into()))
                );
                assert_eq!(c.overrides.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_collector() {
        let m = parse("User <| |>").unwrap();
        match &m.statements[0].kind {
            StatementKind::Collector(c) => assert_eq!(c.query, Query::All),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn virtual_resource() {
        let m = parse("@user { 'carol': ensure => present }").unwrap();
        match &m.statements[0].kind {
            StatementKind::Resource(r) => {
                assert!(r.virtual_);
                assert_eq!(r.span.lo.col, 1, "span starts at the '@'");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metaparameters_parse_as_attributes() {
        let src =
            "file { '/x': require => Package['apache2'], before => [File['/y'], File['/z']] }";
        let m = parse(src).unwrap();
        match &m.statements[0].kind {
            StatementKind::Resource(r) => {
                assert_eq!(r.bodies[0].attrs.len(), 2);
                assert!(matches!(
                    r.bodies[0].attrs[0].value,
                    Expression::ResourceRef(_, _)
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_call_statement_and_expression() {
        let m = parse("if defined(Package['m4']) { } else { package { 'm4': } }").unwrap();
        assert!(matches!(&m.statements[0].kind, StatementKind::If(_)));
        let m2 = parse("fail('bad')").unwrap();
        assert!(matches!(&m2.statements[0].kind, StatementKind::Call(_, _)));
    }

    #[test]
    fn chain_with_ref_arrays() {
        let m = parse("[Package['a'], Package['b']] -> File['/c']").unwrap();
        match &m.statements[0].kind {
            StatementKind::Chain(c) => match &c.operands[0] {
                ChainOperand::Refs(refs) => assert_eq!(refs.len(), 2),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn node_blocks() {
        let m = parse("node default { package { 'ntp': } }").unwrap();
        match &m.statements[0].kind {
            StatementKind::Node(names, body) => {
                assert_eq!(names, &vec!["default".to_string()]);
                assert_eq!(body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_have_positions() {
        let err = parse("package { 'x' ensure => present }").unwrap_err();
        assert!(err.pos().line >= 1);
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn empty_attribute_list_ok() {
        let m = parse("package { 'vim': }").unwrap();
        match &m.statements[0].kind {
            StatementKind::Resource(r) => assert!(r.bodies[0].attrs.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_comma_in_attrs() {
        parse("file { '/x': content => 'c', }").unwrap();
    }

    #[test]
    fn resource_default_statement() {
        let m = parse("File { owner => 'root' }").unwrap();
        match &m.statements[0].kind {
            StatementKind::ResourceDefault(d) => {
                assert_eq!(d.type_name, "file");
                assert_eq!(d.attrs.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }
}
