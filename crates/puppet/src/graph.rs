//! Resource graphs (paper §3.1, fig. 4): DAGs of primitive resources.

use crate::catalog::{Catalog, CatalogResource};
use crate::error::{CycleEdge, CycleError, Span};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A directed acyclic graph of primitive resources. An edge `a → b` means
/// `b` depends on `a` (`a` is applied first).
///
/// Construction validates acyclicity, so holders of a `ResourceGraph` can
/// rely on topological sorts existing. Each edge remembers the span of the
/// declaration that created it (see [`ResourceGraph::edge_origin`]), which
/// is how cycle errors cite each hop's declaration site.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceGraph {
    resources: Vec<CatalogResource>,
    edges: BTreeSet<(usize, usize)>,
    origins: HashMap<(usize, usize), Span>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl ResourceGraph {
    /// Builds a graph from a catalog, rejecting dependency cycles.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] naming the resources of one actual cycle in
    /// deterministic order, with each edge's declaration site.
    pub fn from_catalog(catalog: &Catalog) -> Result<ResourceGraph, CycleError> {
        let _span = rehearsal_trace::span_cat("graph", "puppet");
        let resources = catalog.resources().to_vec();
        let edges: BTreeSet<(usize, usize)> = catalog
            .edges()
            .iter()
            .copied()
            .filter(|(a, b)| a != b)
            .collect();
        let origins: HashMap<(usize, usize), Span> = catalog
            .edges_with_origins()
            .filter(|&(a, b, _)| a != b)
            .map(|(a, b, s)| ((a, b), s))
            .collect();
        let n = resources.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for &(a, b) in &edges {
            succs[a].push(b);
            preds[b].push(a);
        }
        let g = ResourceGraph {
            resources,
            edges,
            origins,
            succs,
            preds,
        };
        g.topological_sort()?;
        Ok(g)
    }

    /// The resources (graph vertices).
    pub fn resources(&self) -> &[CatalogResource] {
        &self.resources
    }

    /// One resource by index.
    pub fn resource(&self, i: usize) -> &CatalogResource {
        &self.resources[i]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// All edges `(before, after)`.
    pub fn edges(&self) -> &BTreeSet<(usize, usize)> {
        &self.edges
    }

    /// Where edge `(a, b)` was declared (dummy when unknown).
    pub fn edge_origin(&self, a: usize, b: usize) -> Span {
        self.origins.get(&(a, b)).copied().unwrap_or(Span::DUMMY)
    }

    /// Direct successors (dependents) of `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Direct predecessors (dependencies) of `i`.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// One topological order (Kahn's algorithm, smallest index first for
    /// determinism).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the edges contain a cycle.
    pub fn topological_sort(&self) -> Result<Vec<usize>, CycleError> {
        let n = self.resources.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(&i) = ready.iter().next() {
            ready.remove(&i);
            out.push(i);
            for &j in &self.succs[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.insert(j);
                }
            }
        }
        if out.len() == n {
            Ok(out)
        } else {
            Err(self.cycle_error())
        }
    }

    /// Extracts one actual cycle deterministically (DFS in ascending index
    /// order; the reported cycle is rotated so its smallest index comes
    /// first) and pairs each hop with the declaration site of that edge.
    fn cycle_error(&self) -> CycleError {
        let cycle = self.find_cycle().expect("called only when cyclic");
        let members: Vec<String> = cycle
            .iter()
            .map(|&i| self.resources[i].display_name())
            .collect();
        let edges = cycle
            .iter()
            .enumerate()
            .map(|(k, &from)| {
                let to = cycle[(k + 1) % cycle.len()];
                CycleEdge {
                    from: self.resources[from].display_name(),
                    to: self.resources[to].display_name(),
                    origin: self.edge_origin(from, to),
                }
            })
            .collect();
        CycleError { members, edges }
    }

    /// Finds one cycle via iterative colored DFS (deterministic: nodes and
    /// successors visited in ascending order). Returns the cycle's node
    /// indices in edge order, rotated so the smallest index leads.
    fn find_cycle(&self) -> Option<Vec<usize>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.resources.len();
        let mut color = vec![WHITE; n];
        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            // Stack of (node, next-successor-index); succs are sorted
            // because edges iterate in BTreeSet order at construction.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = GRAY;
            while let Some(frame) = stack.last_mut() {
                let node = frame.0;
                if frame.1 < self.succs[node].len() {
                    let succ = self.succs[node][frame.1];
                    frame.1 += 1;
                    match color[succ] {
                        WHITE => {
                            color[succ] = GRAY;
                            stack.push((succ, 0));
                        }
                        GRAY => {
                            // Back edge: the stack suffix from `succ` is a
                            // cycle.
                            let pos = stack
                                .iter()
                                .position(|&(v, _)| v == succ)
                                .expect("gray node is on the stack");
                            let mut cycle: Vec<usize> =
                                stack[pos..].iter().map(|&(v, _)| v).collect();
                            let min_pos = cycle
                                .iter()
                                .enumerate()
                                .min_by_key(|&(_, &v)| v)
                                .map(|(k, _)| k)
                                .expect("non-empty cycle");
                            cycle.rotate_left(min_pos);
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color[node] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }

    /// All strict ancestors of `i` (everything that must run before it).
    pub fn ancestors(&self, i: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<usize> = self.preds[i].clone();
        while let Some(j) = stack.pop() {
            if out.insert(j) {
                stack.extend(self.preds[j].iter().copied());
            }
        }
        out
    }

    /// All strict descendants of `i` (everything that must run after it).
    pub fn descendants(&self, i: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<usize> = self.succs[i].clone();
        while let Some(j) = stack.pop() {
            if out.insert(j) {
                stack.extend(self.succs[j].iter().copied());
            }
        }
        out
    }

    /// Counts the number of distinct topological orders (valid permutations
    /// of the resource graph). Exponential; only for small graphs and
    /// benchmark reporting.
    pub fn count_linear_extensions(&self) -> u128 {
        fn rec(g: &ResourceGraph, placed: &mut Vec<bool>, remaining: usize) -> u128 {
            if remaining == 0 {
                return 1;
            }
            let mut total = 0u128;
            for i in 0..g.len() {
                if !placed[i] && g.preds[i].iter().all(|&p| placed[p]) {
                    placed[i] = true;
                    total += rec(g, placed, remaining - 1);
                    placed[i] = false;
                }
            }
            total
        }
        rec(self, &mut vec![false; self.len()], self.len())
    }
}

impl fmt::Display for ResourceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "resource graph ({} nodes):", self.len())?;
        for (i, r) in self.resources.iter().enumerate() {
            write!(f, "  [{i}] {}", r.display_name())?;
            if !self.succs[i].is_empty() {
                let names: Vec<String> = self.succs[i]
                    .iter()
                    .map(|&j| self.resources[j].display_name())
                    .collect();
                write!(f, " -> {}", names.join(", "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_diag::Pos;
    use std::collections::BTreeMap;

    fn res(t: &str, title: &str) -> CatalogResource {
        CatalogResource::new(t, title, BTreeMap::new())
    }

    fn diamond() -> ResourceGraph {
        // a -> b, a -> c, b -> d, c -> d
        let c = Catalog::new(
            vec![res("x", "a"), res("x", "b"), res("x", "c"), res("x", "d")],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        );
        ResourceGraph::from_catalog(&c).unwrap()
    }

    #[test]
    fn topo_sort_respects_edges() {
        let g = diamond();
        let order = g.topological_sort().unwrap();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn cycle_detection() {
        let c = Catalog::new(
            vec![res("package", "m4"), res("package", "make")],
            vec![(0, 1), (1, 0)],
        );
        let err = ResourceGraph::from_catalog(&c).unwrap_err();
        assert_eq!(err.members.len(), 2);
        assert_eq!(err.members[0], "Package[m4]", "smallest index first");
        assert_eq!(err.edges.len(), 2, "each hop reported");
        assert_eq!(err.edges[0].from, "Package[m4]");
        assert_eq!(err.edges[0].to, "Package[make]");
        assert_eq!(err.edges[1].to, "Package[m4]", "the cycle closes");
    }

    #[test]
    fn cycle_edges_carry_declaration_sites() {
        let s01 = Span::at(Pos::new(3, 1));
        let s10 = Span::at(Pos::new(7, 1));
        let c = Catalog::new_with_origins(
            vec![res("a", "x"), res("b", "y")],
            vec![(0, 1, s01), (1, 0, s10)],
        );
        let err = ResourceGraph::from_catalog(&c).unwrap_err();
        assert!(err.edges[0].origin.same(&s01));
        assert!(err.edges[1].origin.same(&s10));
        let d = err.to_diagnostic();
        assert_eq!(d.code, "R0201");
        assert_eq!(d.labels().count(), 2);
    }

    #[test]
    fn cycle_is_minimal_not_everything_residual() {
        // 0 -> 1 -> 0 is the cycle; 2 hangs off it (1 -> 2) and must not
        // be reported as a member.
        let c = Catalog::new(
            vec![res("x", "a"), res("x", "b"), res("x", "c")],
            vec![(0, 1), (1, 0), (1, 2)],
        );
        let err = ResourceGraph::from_catalog(&c).unwrap_err();
        assert_eq!(err.members, vec!["X[a]".to_string(), "X[b]".to_string()]);
    }

    #[test]
    fn cycle_order_is_deterministic() {
        // 3 -> 1 -> 2 -> 3: reported rotated so index 1 leads.
        let c = Catalog::new(
            vec![res("x", "z"), res("x", "p"), res("x", "q"), res("x", "r")],
            vec![(3, 1), (1, 2), (2, 3)],
        );
        let err = ResourceGraph::from_catalog(&c).unwrap_err();
        assert_eq!(
            err.members,
            vec!["X[p]".to_string(), "X[q]".to_string(), "X[r]".to_string()]
        );
    }

    #[test]
    fn ancestors_and_descendants() {
        let g = diamond();
        assert_eq!(g.ancestors(3), [0, 1, 2].into_iter().collect());
        assert_eq!(g.descendants(0), [1, 2, 3].into_iter().collect());
        assert!(g.ancestors(0).is_empty());
        assert!(g.descendants(3).is_empty());
    }

    #[test]
    fn linear_extension_counts() {
        let g = diamond();
        assert_eq!(g.count_linear_extensions(), 2); // abc d / acb d
        let free = Catalog::new(vec![res("x", "a"), res("x", "b"), res("x", "c")], vec![]);
        let g2 = ResourceGraph::from_catalog(&free).unwrap();
        assert_eq!(g2.count_linear_extensions(), 6);
    }

    #[test]
    fn self_edges_are_dropped() {
        let c = Catalog::new(vec![res("x", "a")], vec![(0, 0)]);
        let g = ResourceGraph::from_catalog(&c).unwrap();
        assert!(g.edges().is_empty());
    }
}
