//! Resource graphs (paper §3.1, fig. 4): DAGs of primitive resources.

use crate::catalog::{Catalog, CatalogResource};
use crate::error::CycleError;
use std::collections::BTreeSet;
use std::fmt;

/// A directed acyclic graph of primitive resources. An edge `a → b` means
/// `b` depends on `a` (`a` is applied first).
///
/// Construction validates acyclicity, so holders of a `ResourceGraph` can
/// rely on topological sorts existing.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceGraph {
    resources: Vec<CatalogResource>,
    edges: BTreeSet<(usize, usize)>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl ResourceGraph {
    /// Builds a graph from a catalog, rejecting dependency cycles.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] naming resources on a cycle.
    pub fn from_catalog(catalog: &Catalog) -> Result<ResourceGraph, CycleError> {
        let resources = catalog.resources().to_vec();
        let edges: BTreeSet<(usize, usize)> = catalog
            .edges()
            .iter()
            .copied()
            .filter(|(a, b)| a != b)
            .collect();
        let n = resources.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for &(a, b) in &edges {
            succs[a].push(b);
            preds[b].push(a);
        }
        let g = ResourceGraph {
            resources,
            edges,
            succs,
            preds,
        };
        g.topological_sort()?;
        Ok(g)
    }

    /// The resources (graph vertices).
    pub fn resources(&self) -> &[CatalogResource] {
        &self.resources
    }

    /// One resource by index.
    pub fn resource(&self, i: usize) -> &CatalogResource {
        &self.resources[i]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// All edges `(before, after)`.
    pub fn edges(&self) -> &BTreeSet<(usize, usize)> {
        &self.edges
    }

    /// Direct successors (dependents) of `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Direct predecessors (dependencies) of `i`.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// One topological order (Kahn's algorithm, smallest index first for
    /// determinism).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the edges contain a cycle.
    pub fn topological_sort(&self) -> Result<Vec<usize>, CycleError> {
        let n = self.resources.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(&i) = ready.iter().next() {
            ready.remove(&i);
            out.push(i);
            for &j in &self.succs[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.insert(j);
                }
            }
        }
        if out.len() == n {
            Ok(out)
        } else {
            let members = (0..n)
                .filter(|&i| indeg[i] > 0)
                .map(|i| self.resources[i].display_name())
                .collect();
            Err(CycleError { members })
        }
    }

    /// All strict ancestors of `i` (everything that must run before it).
    pub fn ancestors(&self, i: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<usize> = self.preds[i].clone();
        while let Some(j) = stack.pop() {
            if out.insert(j) {
                stack.extend(self.preds[j].iter().copied());
            }
        }
        out
    }

    /// All strict descendants of `i` (everything that must run after it).
    pub fn descendants(&self, i: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<usize> = self.succs[i].clone();
        while let Some(j) = stack.pop() {
            if out.insert(j) {
                stack.extend(self.succs[j].iter().copied());
            }
        }
        out
    }

    /// Counts the number of distinct topological orders (valid permutations
    /// of the resource graph). Exponential; only for small graphs and
    /// benchmark reporting.
    pub fn count_linear_extensions(&self) -> u128 {
        fn rec(g: &ResourceGraph, placed: &mut Vec<bool>, remaining: usize) -> u128 {
            if remaining == 0 {
                return 1;
            }
            let mut total = 0u128;
            for i in 0..g.len() {
                if !placed[i] && g.preds[i].iter().all(|&p| placed[p]) {
                    placed[i] = true;
                    total += rec(g, placed, remaining - 1);
                    placed[i] = false;
                }
            }
            total
        }
        rec(self, &mut vec![false; self.len()], self.len())
    }
}

impl fmt::Display for ResourceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "resource graph ({} nodes):", self.len())?;
        for (i, r) in self.resources.iter().enumerate() {
            write!(f, "  [{i}] {}", r.display_name())?;
            if !self.succs[i].is_empty() {
                let names: Vec<String> = self.succs[i]
                    .iter()
                    .map(|&j| self.resources[j].display_name())
                    .collect();
                write!(f, " -> {}", names.join(", "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn res(t: &str, title: &str) -> CatalogResource {
        CatalogResource::new(t, title, BTreeMap::new())
    }

    fn diamond() -> ResourceGraph {
        // a -> b, a -> c, b -> d, c -> d
        let c = Catalog::new(
            vec![res("x", "a"), res("x", "b"), res("x", "c"), res("x", "d")],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        );
        ResourceGraph::from_catalog(&c).unwrap()
    }

    #[test]
    fn topo_sort_respects_edges() {
        let g = diamond();
        let order = g.topological_sort().unwrap();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn cycle_detection() {
        let c = Catalog::new(
            vec![res("package", "m4"), res("package", "make")],
            vec![(0, 1), (1, 0)],
        );
        let err = ResourceGraph::from_catalog(&c).unwrap_err();
        assert_eq!(err.members.len(), 2);
    }

    #[test]
    fn ancestors_and_descendants() {
        let g = diamond();
        assert_eq!(g.ancestors(3), [0, 1, 2].into_iter().collect());
        assert_eq!(g.descendants(0), [1, 2, 3].into_iter().collect());
        assert!(g.ancestors(0).is_empty());
        assert!(g.descendants(3).is_empty());
    }

    #[test]
    fn linear_extension_counts() {
        let g = diamond();
        assert_eq!(g.count_linear_extensions(), 2); // abc d / acb d
        let free = Catalog::new(vec![res("x", "a"), res("x", "b"), res("x", "c")], vec![]);
        let g2 = ResourceGraph::from_catalog(&free).unwrap();
        assert_eq!(g2.count_linear_extensions(), 6);
    }

    #[test]
    fn self_edges_are_dropped() {
        let c = Catalog::new(vec![res("x", "a")], vec![(0, 0)]);
        let g = ResourceGraph::from_catalog(&c).unwrap();
        assert!(g.edges().is_empty());
    }
}
