//! Catalogs: the output of manifest evaluation.
//!
//! A catalog is the set of *primitive* resources (all abstractions
//! eliminated, paper §3.1) plus explicit dependency edges.

use crate::value::{capitalize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a resource: lower-cased type name and title.
pub type ResourceId = (String, String);

/// One primitive resource with evaluated attributes.
///
/// Metaparameters (`before`, `require`, `notify`, `subscribe`, `stage`) are
/// extracted into edges during evaluation and do not appear here.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogResource {
    type_name: String,
    title: String,
    attrs: BTreeMap<String, Value>,
}

impl CatalogResource {
    /// Creates a resource.
    pub fn new(
        type_name: impl Into<String>,
        title: impl Into<String>,
        attrs: BTreeMap<String, Value>,
    ) -> CatalogResource {
        CatalogResource {
            type_name: type_name.into(),
            title: title.into(),
            attrs,
        }
    }

    /// Lower-cased resource type name (e.g. `file`).
    pub fn type_name(&self) -> &str {
        &self.type_name
    }

    /// The resource title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The evaluated attributes.
    pub fn attrs(&self) -> &BTreeMap<String, Value> {
        &self.attrs
    }

    /// Mutable access to the attributes (used by collector overrides).
    pub fn attrs_mut(&mut self) -> &mut BTreeMap<String, Value> {
        &mut self.attrs
    }

    /// One attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.attrs.get(name)
    }

    /// The attribute as a coerced string, if present.
    pub fn attr_str(&self, name: &str) -> Option<String> {
        self.attrs.get(name).map(Value::coerce_string)
    }

    /// This resource's identifier.
    pub fn id(&self) -> ResourceId {
        (self.type_name.clone(), self.title.clone())
    }

    /// Display name like `File[/etc/hosts]`.
    pub fn display_name(&self) -> String {
        format!("{}[{}]", capitalize(&self.type_name), self.title)
    }
}

impl fmt::Display for CatalogResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

/// The result of evaluating a manifest: primitive resources and dependency
/// edges between them (edge `(a, b)` means `a` must be applied before `b`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    resources: Vec<CatalogResource>,
    edges: Vec<(usize, usize)>,
}

impl Catalog {
    /// Creates a catalog from parts. Edges must index into `resources`.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of bounds.
    pub fn new(resources: Vec<CatalogResource>, mut edges: Vec<(usize, usize)>) -> Catalog {
        for &(a, b) in &edges {
            assert!(
                a < resources.len() && b < resources.len(),
                "edge out of bounds"
            );
        }
        edges.sort_unstable();
        edges.dedup();
        Catalog { resources, edges }
    }

    /// The resources, in declaration order.
    pub fn resources(&self) -> &[CatalogResource] {
        &self.resources
    }

    /// Dependency edges `(before, after)` as indices into
    /// [`resources`](Catalog::resources).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the catalog has no resources.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Finds a resource index by type and title.
    pub fn find(&self, type_name: &str, title: &str) -> Option<usize> {
        self.resources
            .iter()
            .position(|r| r.type_name() == type_name && r.title() == title)
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "catalog with {} resources:", self.resources.len())?;
        for r in &self.resources {
            writeln!(f, "  {r}")?;
        }
        for &(a, b) in &self.edges {
            writeln!(
                f,
                "  {} -> {}",
                self.resources[a].display_name(),
                self.resources[b].display_name()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(t: &str, title: &str) -> CatalogResource {
        CatalogResource::new(t, title, BTreeMap::new())
    }

    #[test]
    fn catalog_basics() {
        let c = Catalog::new(vec![res("package", "vim"), res("file", "/x")], vec![(0, 1)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.find("file", "/x"), Some(1));
        assert_eq!(c.find("file", "/y"), None);
        assert_eq!(c.edges(), &[(0, 1)]);
        assert!(c.to_string().contains("Package[vim] -> "));
    }

    #[test]
    fn duplicate_edges_are_merged() {
        let c = Catalog::new(vec![res("a", "1"), res("b", "2")], vec![(0, 1), (0, 1)]);
        assert_eq!(c.edges().len(), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_edge_panics() {
        Catalog::new(vec![res("a", "1")], vec![(0, 5)]);
    }

    #[test]
    fn resource_accessors() {
        let mut attrs = BTreeMap::new();
        attrs.insert("ensure".to_string(), Value::Str("present".into()));
        let r = CatalogResource::new("package", "vim", attrs);
        assert_eq!(r.attr_str("ensure").as_deref(), Some("present"));
        assert_eq!(r.display_name(), "Package[vim]");
        assert_eq!(r.id(), ("package".to_string(), "vim".to_string()));
    }
}
