//! Catalogs: the output of manifest evaluation.
//!
//! A catalog is the set of *primitive* resources (all abstractions
//! eliminated, paper §3.1) plus explicit dependency edges. Each resource
//! remembers the [`Span`] of its declaration (and of each attribute), and
//! each edge remembers the span of whatever declared it — a chain arrow, a
//! metaparameter, a stage rule — so later stages can render
//! source-anchored findings.

use crate::value::{capitalize, Value};
use rehearsal_diag::Span;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a resource: lower-cased type name and title.
pub type ResourceId = (String, String);

/// One primitive resource with evaluated attributes.
///
/// Metaparameters (`before`, `require`, `notify`, `subscribe`, `stage`) are
/// extracted into edges during evaluation and do not appear here.
#[derive(Debug, Clone)]
pub struct CatalogResource {
    type_name: String,
    title: String,
    attrs: BTreeMap<String, Value>,
    span: Span,
    attr_spans: BTreeMap<String, Span>,
}

impl PartialEq for CatalogResource {
    /// Content equality; spans (and the per-attribute span table, whose
    /// *keys* would otherwise distinguish evaluator-built resources from
    /// hand-built ones) are metadata and do not participate.
    fn eq(&self, other: &CatalogResource) -> bool {
        self.type_name == other.type_name && self.title == other.title && self.attrs == other.attrs
    }
}

impl CatalogResource {
    /// Creates a resource (no source location; see
    /// [`CatalogResource::with_span`]).
    pub fn new(
        type_name: impl Into<String>,
        title: impl Into<String>,
        attrs: BTreeMap<String, Value>,
    ) -> CatalogResource {
        CatalogResource {
            type_name: type_name.into(),
            title: title.into(),
            attrs,
            span: Span::DUMMY,
            attr_spans: BTreeMap::new(),
        }
    }

    /// Attaches the declaration span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> CatalogResource {
        self.span = span;
        self
    }

    /// Attaches per-attribute spans.
    #[must_use]
    pub fn with_attr_spans(mut self, spans: BTreeMap<String, Span>) -> CatalogResource {
        self.attr_spans = spans;
        self
    }

    /// Lower-cased resource type name (e.g. `file`).
    pub fn type_name(&self) -> &str {
        &self.type_name
    }

    /// The resource title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The span of the declaration this resource came from (dummy for
    /// synthesized resources).
    pub fn span(&self) -> Span {
        self.span
    }

    /// The span of one attribute's `name => value` in the source, falling
    /// back to the resource's declaration span.
    pub fn attr_span(&self, name: &str) -> Span {
        self.attr_spans.get(name).copied().unwrap_or(self.span)
    }

    /// The evaluated attributes.
    pub fn attrs(&self) -> &BTreeMap<String, Value> {
        &self.attrs
    }

    /// Mutable access to the attributes (used by collector overrides).
    pub fn attrs_mut(&mut self) -> &mut BTreeMap<String, Value> {
        &mut self.attrs
    }

    /// One attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.attrs.get(name)
    }

    /// The attribute as a coerced string, if present.
    pub fn attr_str(&self, name: &str) -> Option<String> {
        self.attrs.get(name).map(Value::coerce_string)
    }

    /// This resource's identifier.
    pub fn id(&self) -> ResourceId {
        (self.type_name.clone(), self.title.clone())
    }

    /// Display name like `File[/etc/hosts]`.
    pub fn display_name(&self) -> String {
        format!("{}[{}]", capitalize(&self.type_name), self.title)
    }
}

impl fmt::Display for CatalogResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

/// The result of evaluating a manifest: primitive resources and dependency
/// edges between them (edge `(a, b)` means `a` must be applied before `b`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    resources: Vec<CatalogResource>,
    edges: Vec<(usize, usize)>,
    /// Where each edge was declared; parallel to `edges`.
    origins: Vec<Span>,
    /// Whether each edge carries refresh semantics (`notify`, `subscribe`,
    /// or `~>`) in addition to ordering; parallel to `edges`.
    refresh: Vec<bool>,
}

impl Catalog {
    /// Creates a catalog from parts. Edges must index into `resources`.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of bounds.
    pub fn new(resources: Vec<CatalogResource>, edges: Vec<(usize, usize)>) -> Catalog {
        Catalog::new_with_origins(
            resources,
            edges
                .into_iter()
                .map(|(a, b)| (a, b, Span::DUMMY))
                .collect(),
        )
    }

    /// Creates a catalog whose edges carry the span of the declaration
    /// that created them. Duplicate edges keep the first origin (in
    /// `(from, to)` order).
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of bounds.
    pub fn new_with_origins(
        resources: Vec<CatalogResource>,
        edges: Vec<(usize, usize, Span)>,
    ) -> Catalog {
        Catalog::new_with_refresh(
            resources,
            edges
                .into_iter()
                .map(|(a, b, s)| (a, b, s, false))
                .collect(),
        )
    }

    /// Creates a catalog whose edges carry both their declaration span and
    /// a refresh flag (`notify`/`subscribe`/`~>`). Duplicate edges keep
    /// the first origin; a duplicate is a refresh edge if *any* of its
    /// declarations was.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of bounds.
    pub fn new_with_refresh(
        resources: Vec<CatalogResource>,
        mut edges: Vec<(usize, usize, Span, bool)>,
    ) -> Catalog {
        for &(a, b, _, _) in &edges {
            assert!(
                a < resources.len() && b < resources.len(),
                "edge out of bounds"
            );
        }
        edges.sort_by_key(|&(a, b, _, _)| (a, b));
        let mut merged: Vec<(usize, usize, Span, bool)> = Vec::with_capacity(edges.len());
        for (a, b, s, r) in edges {
            match merged.last_mut() {
                Some(last) if last.0 == a && last.1 == b => last.3 |= r,
                _ => merged.push((a, b, s, r)),
            }
        }
        let origins = merged.iter().map(|&(_, _, s, _)| s).collect();
        let refresh = merged.iter().map(|&(_, _, _, r)| r).collect();
        let edges = merged.into_iter().map(|(a, b, _, _)| (a, b)).collect();
        Catalog {
            resources,
            edges,
            origins,
            refresh,
        }
    }

    /// The resources, in declaration order.
    pub fn resources(&self) -> &[CatalogResource] {
        &self.resources
    }

    /// Dependency edges `(before, after)` as indices into
    /// [`resources`](Catalog::resources).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Where edge `(a, b)` was declared (dummy when unknown).
    pub fn edge_origin(&self, a: usize, b: usize) -> Span {
        self.edges
            .iter()
            .position(|&e| e == (a, b))
            .map(|i| self.origins[i])
            .unwrap_or(Span::DUMMY)
    }

    /// Every edge with its declaration span.
    pub fn edges_with_origins(&self) -> impl Iterator<Item = (usize, usize, Span)> + '_ {
        self.edges
            .iter()
            .zip(&self.origins)
            .map(|(&(a, b), &s)| (a, b, s))
    }

    /// Whether edge `(a, b)` carries refresh semantics — it was declared
    /// via `notify`, `subscribe`, or a `~>` arrow (false for missing
    /// edges and plain ordering).
    pub fn edge_is_refresh(&self, a: usize, b: usize) -> bool {
        self.edges
            .iter()
            .position(|&e| e == (a, b))
            .map(|i| self.refresh[i])
            .unwrap_or(false)
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the catalog has no resources.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Finds a resource index by type and title.
    pub fn find(&self, type_name: &str, title: &str) -> Option<usize> {
        self.resources
            .iter()
            .position(|r| r.type_name() == type_name && r.title() == title)
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "catalog with {} resources:", self.resources.len())?;
        for r in &self.resources {
            writeln!(f, "  {r}")?;
        }
        for &(a, b) in &self.edges {
            writeln!(
                f,
                "  {} -> {}",
                self.resources[a].display_name(),
                self.resources[b].display_name()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rehearsal_diag::Pos;

    fn res(t: &str, title: &str) -> CatalogResource {
        CatalogResource::new(t, title, BTreeMap::new())
    }

    #[test]
    fn catalog_basics() {
        let c = Catalog::new(vec![res("package", "vim"), res("file", "/x")], vec![(0, 1)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.find("file", "/x"), Some(1));
        assert_eq!(c.find("file", "/y"), None);
        assert_eq!(c.edges(), &[(0, 1)]);
        assert!(c.to_string().contains("Package[vim] -> "));
    }

    #[test]
    fn duplicate_edges_are_merged_keeping_first_origin() {
        let s1 = Span::at(Pos::new(3, 1));
        let s2 = Span::at(Pos::new(9, 1));
        let c = Catalog::new_with_origins(
            vec![res("a", "1"), res("b", "2")],
            vec![(0, 1, s1), (0, 1, s2)],
        );
        assert_eq!(c.edges().len(), 1);
        assert!(c.edge_origin(0, 1).same(&s1));
        assert!(c.edge_origin(1, 0).is_dummy(), "missing edge");
    }

    #[test]
    fn refresh_flag_merges_by_or_and_defaults_false() {
        let s = Span::at(Pos::new(1, 1));
        let c = Catalog::new_with_refresh(
            vec![res("a", "1"), res("b", "2"), res("c", "3")],
            vec![(0, 1, s, false), (0, 1, s, true), (1, 2, s, false)],
        );
        assert!(c.edge_is_refresh(0, 1), "any refresh declaration wins");
        assert!(!c.edge_is_refresh(1, 2));
        assert!(!c.edge_is_refresh(2, 0), "missing edge is not refresh");
        let plain = Catalog::new(vec![res("a", "1"), res("b", "2")], vec![(0, 1)]);
        assert!(!plain.edge_is_refresh(0, 1));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_edge_panics() {
        Catalog::new(vec![res("a", "1")], vec![(0, 5)]);
    }

    #[test]
    fn resource_accessors() {
        let mut attrs = BTreeMap::new();
        attrs.insert("ensure".to_string(), Value::Str("present".into()));
        let span = Span::at(Pos::new(2, 1));
        let aspan = Span::at(Pos::new(2, 18));
        let r = CatalogResource::new("package", "vim", attrs)
            .with_span(span)
            .with_attr_spans([("ensure".to_string(), aspan)].into_iter().collect());
        assert_eq!(r.attr_str("ensure").as_deref(), Some("present"));
        assert_eq!(r.display_name(), "Package[vim]");
        assert_eq!(r.id(), ("package".to_string(), "vim".to_string()));
        assert!(r.span().same(&span));
        assert!(r.attr_span("ensure").same(&aspan));
        assert!(r.attr_span("missing").same(&span), "falls back to the decl");
    }

    #[test]
    fn equality_ignores_spans() {
        let a = res("package", "vim");
        let b = res("package", "vim").with_span(Span::at(Pos::new(7, 1)));
        assert_eq!(a, b);
    }
}
