//! Pretty-printer for the Puppet AST.
//!
//! Emits parseable manifest source; `parse ∘ print` is the identity on
//! ASTs (enforced by round-trip property tests). Useful for tooling that
//! rewrites manifests — e.g. emitting the repaired manifest after the
//! dependency-repair analysis.

use crate::ast::*;
use crate::lexer::StrPart;
use std::fmt::Write;

/// Renders a manifest as Puppet source.
pub fn print_manifest(m: &Manifest) -> String {
    let mut out = String::new();
    for s in &m.statements {
        print_statement(s, 0, &mut out);
    }
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_statements(body: &[Statement], level: usize, out: &mut String) {
    for s in body {
        print_statement(s, level, out);
    }
}

fn print_statement(s: &Statement, level: usize, out: &mut String) {
    indent(level, out);
    match &s.kind {
        StatementKind::Resource(decl) => {
            print_resource(decl, level, out);
            out.push('\n');
        }
        StatementKind::Define(d) => {
            write!(out, "define {}", d.name).expect("write to string");
            print_params(&d.params, out);
            out.push_str(" {\n");
            print_statements(&d.body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        StatementKind::Class(c) => {
            write!(out, "class {}", c.name).expect("write to string");
            if !c.params.is_empty() {
                print_params(&c.params, out);
            }
            if let Some(parent) = &c.inherits {
                write!(out, " inherits {parent}").expect("write to string");
            }
            out.push_str(" {\n");
            print_statements(&c.body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        StatementKind::Include(names) => {
            writeln!(out, "include {}", names.join(", ")).expect("write to string");
        }
        StatementKind::Assign(name, e) => {
            writeln!(out, "${name} = {}", print_expr(e)).expect("write to string");
        }
        StatementKind::Chain(chain) => {
            for (i, op) in chain.operands.iter().enumerate() {
                if i > 0 {
                    out.push_str(match chain.arrows[i - 1] {
                        ArrowKind::Before => " -> ",
                        ArrowKind::Notify => " ~> ",
                    });
                }
                match op {
                    ChainOperand::Refs(refs) => {
                        if refs.len() == 1 {
                            out.push_str(&print_expr(&refs[0]));
                        } else {
                            out.push('[');
                            let parts: Vec<String> = refs.iter().map(print_expr).collect();
                            out.push_str(&parts.join(", "));
                            out.push(']');
                        }
                    }
                    ChainOperand::Resource(decl) => print_resource(decl, level, out),
                    ChainOperand::Collector(c) => print_collector(c, out),
                }
            }
            out.push('\n');
        }
        StatementKind::Collector(c) => {
            print_collector(c, out);
            out.push('\n');
        }
        StatementKind::ResourceDefault(d) => {
            write!(out, "{} {{ ", capitalize_type(&d.type_name)).expect("write to string");
            print_attrs_inline(&d.attrs, out);
            out.push_str(" }\n");
        }
        StatementKind::If(arms) => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                let is_else = i + 1 == arms.len() && *cond == Expression::Bool(true) && i > 0;
                if i == 0 {
                    writeln!(out, "if {} {{", print_expr(cond)).expect("write to string");
                } else if is_else {
                    indent(level, out);
                    out.push_str("} else {\n");
                } else {
                    indent(level, out);
                    writeln!(out, "}} elsif {} {{", print_expr(cond)).expect("write to string");
                }
                print_statements(body, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        StatementKind::Case(scrutinee, arms) => {
            writeln!(out, "case {} {{", print_expr(scrutinee)).expect("write to string");
            for arm in arms {
                indent(level + 1, out);
                let vals: Vec<String> = arm.values.iter().map(print_expr).collect();
                writeln!(out, "{}: {{", vals.join(", ")).expect("write to string");
                print_statements(&arm.body, level + 2, out);
                indent(level + 1, out);
                out.push_str("}\n");
            }
            indent(level, out);
            out.push_str("}\n");
        }
        StatementKind::Node(names, body) => {
            let rendered: Vec<String> = names
                .iter()
                .map(|n| {
                    if n == "default" {
                        n.clone()
                    } else {
                        format!("'{}'", escape_single(n))
                    }
                })
                .collect();
            writeln!(out, "node {} {{", rendered.join(", ")).expect("write to string");
            print_statements(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        StatementKind::Call(name, args) => {
            let rendered: Vec<String> = args.iter().map(print_expr).collect();
            writeln!(out, "{name}({})", rendered.join(", ")).expect("write to string");
        }
    }
}

fn print_resource(decl: &ResourceDecl, level: usize, out: &mut String) {
    if decl.virtual_ {
        out.push('@');
    }
    write!(out, "{} {{ ", decl.type_name).expect("write to string");
    for (i, body) in decl.bodies.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        write!(out, "{}: ", print_expr(&body.title)).expect("write to string");
        let _ = level;
        print_attrs_inline(&body.attrs, out);
    }
    out.push_str(" }");
}

fn print_collector(c: &Collector, out: &mut String) {
    write!(out, "{} <| ", capitalize_type(&c.type_name)).expect("write to string");
    print_query(&c.query, out);
    out.push_str(" |>");
    if !c.overrides.is_empty() {
        out.push_str(" { ");
        print_attrs_inline(&c.overrides, out);
        out.push_str(" }");
    }
}

fn print_query(q: &Query, out: &mut String) {
    match q {
        Query::All => {}
        Query::Eq(attr, e) => {
            write!(out, "{attr} == {}", print_expr(e)).expect("write to string");
        }
        Query::Ne(attr, e) => {
            write!(out, "{attr} != {}", print_expr(e)).expect("write to string");
        }
        Query::And(a, b) => {
            out.push('(');
            print_query(a, out);
            out.push_str(" and ");
            print_query(b, out);
            out.push(')');
        }
        Query::Or(a, b) => {
            out.push('(');
            print_query(a, out);
            out.push_str(" or ");
            print_query(b, out);
            out.push(')');
        }
    }
}

fn print_attrs_inline(attrs: &[Attribute], out: &mut String) {
    let parts: Vec<String> = attrs
        .iter()
        .map(|a| format!("{} => {}", a.name, print_expr(&a.value)))
        .collect();
    out.push_str(&parts.join(", "));
}

fn print_params(params: &[Param], out: &mut String) {
    out.push('(');
    let parts: Vec<String> = params
        .iter()
        .map(|p| match &p.default {
            Some(d) => format!("${} = {}", p.name, print_expr(d)),
            None => format!("${}", p.name),
        })
        .collect();
    out.push_str(&parts.join(", "));
    out.push(')');
}

fn escape_single(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\'', "\\'")
}

fn escape_double(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('$', "\\$")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
}

fn capitalize_type(t: &str) -> String {
    crate::value::capitalize(t)
}

/// Renders an expression as Puppet source.
pub fn print_expr(e: &Expression) -> String {
    match e {
        Expression::Str(s) => format!("'{}'", escape_single(s)),
        Expression::Interp(parts) => {
            let mut out = String::from("\"");
            for p in parts {
                match p {
                    StrPart::Lit(l) => out.push_str(&escape_double(l)),
                    StrPart::Var(v) => {
                        out.push_str("${");
                        out.push_str(v);
                        out.push('}');
                    }
                }
            }
            out.push('"');
            out
        }
        Expression::Int(n) => n.to_string(),
        Expression::Bool(b) => b.to_string(),
        Expression::Undef => "undef".to_string(),
        Expression::Default => "default".to_string(),
        Expression::Var(v) => format!("${v}"),
        Expression::Array(items) => {
            let parts: Vec<String> = items.iter().map(print_expr).collect();
            format!("[{}]", parts.join(", "))
        }
        Expression::Hash(items) => {
            let parts: Vec<String> = items
                .iter()
                .map(|(k, v)| format!("{} => {}", print_expr(k), print_expr(v)))
                .collect();
            format!("{{{}}}", parts.join(", "))
        }
        Expression::ResourceRef(t, titles) => {
            let parts: Vec<String> = titles.iter().map(print_expr).collect();
            // The parser stores the reference's type name verbatim, so a
            // name that is already a valid type token (leading uppercase)
            // must be reproduced as-is — re-capitalizing `FILE` or
            // `Foo::Bar` used to break `parse ∘ print = id`. Names coming
            // from synthesized ASTs (e.g. lower-cased catalog ids) still
            // get capitalized so they lex as type names at all.
            let name = if t.starts_with(char::is_uppercase) {
                t.clone()
            } else {
                capitalize_type(t)
            };
            format!("{}[{}]", name, parts.join(", "))
        }
        Expression::Call(name, args) => {
            let parts: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", parts.join(", "))
        }
        Expression::Not(a) => format!("!({})", print_expr(a)),
        Expression::And(a, b) => format!("({} and {})", print_expr(a), print_expr(b)),
        Expression::Or(a, b) => format!("({} or {})", print_expr(a), print_expr(b)),
        Expression::Cmp(op, a, b) => {
            let sym = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({} {} {})", print_expr(a), sym, print_expr(b))
        }
        Expression::In(a, b) => format!("({} in {})", print_expr(a), print_expr(b)),
        Expression::Arith(op, a, b) => {
            let sym = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            format!("({} {} {})", print_expr(a), sym, print_expr(b))
        }
        Expression::Selector(scrutinee, arms) => {
            let parts: Vec<String> = arms
                .iter()
                .map(|(m, v)| format!("{} => {}", print_expr(m), print_expr(v)))
                .collect();
            format!("{} ? {{ {} }}", print_expr(scrutinee), parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let m1 = parse(src).unwrap_or_else(|e| panic!("original parse: {e}\n{src}"));
        let printed = print_manifest(&m1);
        let m2 = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(m1, m2, "round-trip changed the AST:\n{printed}");
    }

    #[test]
    fn roundtrip_resources() {
        roundtrip("package { 'vim': ensure => present }");
        roundtrip("file { '/a': content => 'hello', mode => '0644' }");
        roundtrip("file { '/a': ensure => file; '/b': ensure => directory }");
        roundtrip("package { ['m4', 'make']: ensure => present }");
        roundtrip("@user { 'carol': ensure => present }");
    }

    #[test]
    fn roundtrip_interpolation() {
        roundtrip(r#"file { "/home/${user}/.vimrc": content => "set $mode\n" }"#);
    }

    #[test]
    fn roundtrip_defines_and_classes() {
        roundtrip(
            "define myuser($shell = '/bin/bash') {\n\
               user { \"$title\": shell => $shell }\n\
             }\n\
             myuser { 'alice': }",
        );
        roundtrip("class web($port = 80) inherits base { package { 'nginx': } }\ninclude web");
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "if $osfamily == 'Debian' {\n\
               package { 'apache2': }\n\
             } elsif $osfamily == 'RedHat' {\n\
               package { 'httpd': }\n\
             } else {\n\
               notify { 'unsupported': }\n\
             }",
        );
        roundtrip(
            "case $os {\n\
               'a', 'b': { package { 'x': } }\n\
               default: { package { 'y': } }\n\
             }",
        );
        roundtrip("$pkg = $os ? { 'Debian' => 'apache2', default => 'httpd' }");
    }

    #[test]
    fn roundtrip_chains_and_collectors() {
        roundtrip("User['carol'] -> File['/home/carol/.vimrc']");
        roundtrip("Package['a'] ~> Service['b'] -> File['/c']");
        roundtrip("File <| owner == 'carol' |> { mode => 'go-rwx' }");
        roundtrip("User <| |>");
        roundtrip("[Package['a'], Package['b']] -> File['/c']");
    }

    #[test]
    fn roundtrip_misc() {
        roundtrip("node 'web01', default { package { 'ntp': } }");
        roundtrip("File { owner => 'root' }");
        roundtrip("fail('nope')");
        roundtrip("$x = [1, 2, 3]");
        roundtrip("$y = {'k' => 'v'}");
        roundtrip("$z = (1 + 2) * 3");
        roundtrip("if !defined(Package['m4']) { package { 'm4': } }");
        roundtrip("if $a and ($b or !$c) { }");
    }

    #[test]
    fn roundtrip_benchmarks() {
        // Every shipped benchmark must round-trip, including the metadata
        // permission-race suite.
        for dir in [
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks"),
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks-metadata"),
        ] {
            for file in std::fs::read_dir(dir).expect("benchmarks directory") {
                let path = file.expect("dir entry").path();
                if path.extension().map(|e| e == "pp").unwrap_or(false) {
                    let src = std::fs::read_to_string(&path).expect("readable");
                    roundtrip(&src);
                }
            }
        }
    }
}
