//! Manifest evaluation: from AST to a catalog of primitive resources.
//!
//! This implements the compilation passes of paper §3.1: user-defined type
//! and class expansion (substituting definitions until only primitive
//! resources remain), metaparameter and chaining edges, resource collectors
//! (global attribute overrides), stage elimination, resource defaults, and
//! Puppet's file auto-require rule.

use crate::ast::*;
use crate::catalog::{Catalog, CatalogResource, ResourceId};
use crate::error::{EvalError, EvalErrorKind};
use crate::lexer::StrPart;
use crate::value::{capitalize, Value};
use rehearsal_diag::Span;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Node facts visible to manifests as top-scope variables.
///
/// # Examples
///
/// ```
/// use rehearsal_puppet::Facts;
/// let f = Facts::ubuntu();
/// assert_eq!(f.get("osfamily"), Some("Debian"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Facts {
    map: BTreeMap<String, String>,
}

impl Facts {
    /// Facts for an Ubuntu node (the paper's evaluation platform).
    pub fn ubuntu() -> Facts {
        let mut map = BTreeMap::new();
        map.insert("operatingsystem".to_string(), "Ubuntu".to_string());
        map.insert("osfamily".to_string(), "Debian".to_string());
        map.insert("kernel".to_string(), "Linux".to_string());
        map.insert("hostname".to_string(), "testhost".to_string());
        map.insert("fqdn".to_string(), "testhost.example.com".to_string());
        Facts { map }
    }

    /// Facts for a CentOS node.
    pub fn centos() -> Facts {
        let mut map = BTreeMap::new();
        map.insert("operatingsystem".to_string(), "CentOS".to_string());
        map.insert("osfamily".to_string(), "RedHat".to_string());
        map.insert("kernel".to_string(), "Linux".to_string());
        map.insert("hostname".to_string(), "testhost".to_string());
        map.insert("fqdn".to_string(), "testhost.example.com".to_string());
        Facts { map }
    }

    /// Adds or overrides a fact.
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, value: impl Into<String>) -> Facts {
        self.map.insert(name.into(), value.into());
        self
    }

    /// Looks up a fact.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// Iterates over all facts.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// Metaparameters that turn into edges rather than attributes.
const META_EDGE_PARAMS: [&str; 4] = ["before", "require", "notify", "subscribe"];

/// A collector captured during evaluation: type name, query, and evaluated
/// attribute overrides.
type CollectorSpec = (String, Query, Vec<(String, Value)>);

/// Evaluates a manifest into a catalog of primitive resources.
///
/// # Errors
///
/// Returns [`EvalError`] for undefined variables, unknown classes/types,
/// duplicate resources, dangling references, and `fail()` calls.
///
/// # Examples
///
/// ```
/// use rehearsal_puppet::{evaluate, parse, Facts};
/// let m = parse("package { 'vim': ensure => present }")?;
/// let catalog = evaluate(&m, &Facts::ubuntu())?;
/// assert_eq!(catalog.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(manifest: &Manifest, facts: &Facts) -> Result<Catalog, EvalError> {
    let _span = rehearsal_trace::span_cat("eval", "puppet");
    let mut ev = Evaluator::new(facts);
    ev.collect_declarations(&manifest.statements);
    if let Err(e) = ev.exec_top_level(&manifest.statements) {
        let span = ev.current_span;
        return Err(e.with_span_if_missing(span));
    }
    let span = ev.current_span;
    let catalog = ev.finalize().map_err(|e| e.with_span_if_missing(span))?;
    rehearsal_trace::counter_add("eval.resources", catalog.len() as u64);
    Ok(catalog)
}

#[derive(Debug, Clone)]
struct PendingEdge {
    before: ResourceId,
    after: ResourceId,
    /// Where the dependency was declared (a chain arrow, a metaparameter
    /// attribute, or a resource default).
    origin: Span,
    /// Whether the declaration carries refresh semantics (`notify`,
    /// `subscribe`, or a `~>` arrow).
    refresh: bool,
}

#[derive(Debug, Clone)]
struct VirtualResource {
    resource: CatalogResource,
    stage: String,
    group_stack: Vec<ResourceId>,
    realized: bool,
}

struct Evaluator {
    defines: HashMap<String, DefineDecl>,
    classes: HashMap<String, ClassDecl>,
    declared_classes: HashSet<String>,
    resources: Vec<CatalogResource>,
    index: HashMap<ResourceId, usize>,
    stage_of: Vec<String>,
    pending_edges: Vec<PendingEdge>,
    groups: HashMap<ResourceId, Vec<ResourceId>>,
    group_stack: Vec<ResourceId>,
    scopes: Vec<HashMap<String, Value>>,
    defaults: Vec<(String, String, Value, Span)>,
    collectors: Vec<CollectorSpec>,
    virtuals: Vec<VirtualResource>,
    realize_requests: Vec<ResourceId>,
    /// Stage ordering edges `(before, after)` between stage titles.
    stage_edges: BTreeSet<(String, String)>,
    /// Where each stage ordering rule was declared.
    stage_edge_origins: HashMap<(String, String), Span>,
    stage_titles: BTreeSet<String>,
    current_stage: Vec<String>,
    /// `class → stage` assignments from `class { …: stage => … }`,
    /// resolved in `finalize` once every declaration (including realized
    /// virtual resources) is known — resolving at declaration time made
    /// the assignment declaration-order-dependent and silently skipped
    /// members that were not primitive resources yet. The span is that of
    /// the `stage => …` attribute, for diagnostics.
    pending_stage_assignments: Vec<(String, String, Span)>,
    /// The span of the innermost statement currently executing; errors
    /// that bubble out without a more precise location get this one.
    current_span: Span,
}

impl Evaluator {
    fn new(facts: &Facts) -> Evaluator {
        let mut top = HashMap::new();
        for (k, v) in facts.iter() {
            top.insert(k.to_string(), Value::Str(v.to_string()));
        }
        Evaluator {
            defines: HashMap::new(),
            classes: HashMap::new(),
            declared_classes: HashSet::new(),
            resources: Vec::new(),
            index: HashMap::new(),
            stage_of: Vec::new(),
            pending_edges: Vec::new(),
            groups: HashMap::new(),
            group_stack: Vec::new(),
            scopes: vec![top],
            defaults: Vec::new(),
            collectors: Vec::new(),
            virtuals: Vec::new(),
            realize_requests: Vec::new(),
            stage_edges: BTreeSet::new(),
            stage_edge_origins: HashMap::new(),
            stage_titles: ["main".to_string()].into_iter().collect(),
            current_stage: vec!["main".to_string()],
            pending_stage_assignments: Vec::new(),
            current_span: Span::DUMMY,
        }
    }

    /// Hoists all `define` and `class` declarations (Puppet treats them as
    /// global regardless of nesting).
    fn collect_declarations(&mut self, statements: &[Statement]) {
        for s in statements {
            match &s.kind {
                StatementKind::Define(d) => {
                    self.defines.insert(d.name.clone(), d.clone());
                }
                StatementKind::Class(c) => {
                    self.classes.insert(c.name.clone(), c.clone());
                    self.collect_declarations(&c.body);
                }
                StatementKind::If(arms) => {
                    for (_, body) in arms {
                        self.collect_declarations(body);
                    }
                }
                StatementKind::Case(_, arms) => {
                    for arm in arms {
                        self.collect_declarations(&arm.body);
                    }
                }
                StatementKind::Node(_, body) => self.collect_declarations(body),
                _ => {}
            }
        }
        // Also hoist declarations nested in defines.
        let bodies: Vec<Vec<Statement>> = self.defines.values().map(|d| d.body.clone()).collect();
        for b in &bodies {
            for s in b {
                if let StatementKind::Define(d) = &s.kind {
                    self.defines
                        .entry(d.name.clone())
                        .or_insert_with(|| d.clone());
                }
            }
        }
    }

    fn exec_top_level(&mut self, statements: &[Statement]) -> Result<(), EvalError> {
        let hostname = self
            .lookup_var("hostname")
            .map(|v| v.coerce_string())
            .unwrap_or_default();
        // Execute non-node statements, remembering node blocks.
        let mut default_node: Option<&[Statement]> = None;
        let mut matching_node: Option<&[Statement]> = None;
        for s in statements {
            if let StatementKind::Node(names, body) = &s.kind {
                for n in names {
                    if n == "default" && default_node.is_none() {
                        default_node = Some(body);
                    } else if *n == hostname && matching_node.is_none() {
                        matching_node = Some(body);
                    }
                }
            } else {
                self.exec_statement(s)?;
            }
        }
        if let Some(body) = matching_node.or(default_node) {
            let body = body.to_vec();
            for s in &body {
                self.exec_statement(s)?;
            }
        }
        Ok(())
    }

    fn exec_statements(&mut self, statements: &[Statement]) -> Result<(), EvalError> {
        for s in statements {
            self.exec_statement(s)?;
        }
        Ok(())
    }

    fn exec_statement(&mut self, s: &Statement) -> Result<(), EvalError> {
        // Every error that escapes a statement without a more precise
        // location is anchored to the innermost enclosing statement.
        self.current_span = s.span;
        self.exec_statement_kind(&s.kind)
            .map_err(|e| e.with_span_if_missing(s.span))
    }

    fn exec_statement_kind(&mut self, kind: &StatementKind) -> Result<(), EvalError> {
        match kind {
            StatementKind::Define(_) | StatementKind::Class(_) => Ok(()), // hoisted
            StatementKind::Node(_, _) => Ok(()),                          // handled at top level
            StatementKind::Assign(name, expr) => {
                let v = self.eval_expr(expr)?;
                let scope = self.scopes.last_mut().expect("scope stack non-empty");
                if scope.contains_key(name) {
                    return Err(EvalError::new(EvalErrorKind::Message(format!(
                        "variable ${name} is already assigned in this scope"
                    ))));
                }
                scope.insert(name.clone(), v);
                Ok(())
            }
            StatementKind::Include(names) => {
                for n in names {
                    self.declare_class(n, &BTreeMap::new(), false)?;
                }
                Ok(())
            }
            StatementKind::Resource(decl) => {
                self.instantiate_resource_decl(decl)?;
                Ok(())
            }
            StatementKind::Chain(chain) => self.exec_chain(chain),
            StatementKind::Collector(c) => self.exec_collector(c),
            StatementKind::ResourceDefault(d) => {
                for a in &d.attrs {
                    let v = self.eval_expr(&a.value)?;
                    self.defaults
                        .push((d.type_name.clone(), a.name.clone(), v, a.span));
                }
                Ok(())
            }
            StatementKind::If(arms) => {
                for (cond, body) in arms {
                    if self.eval_expr(cond)?.truthy() {
                        return self.exec_statements(body);
                    }
                }
                Ok(())
            }
            StatementKind::Case(scrutinee, arms) => {
                let v = self.eval_expr(scrutinee)?;
                let mut default_arm: Option<&CaseArm> = None;
                for arm in arms {
                    for val in &arm.values {
                        if matches!(val, Expression::Default) {
                            default_arm = Some(arm);
                            continue;
                        }
                        let mv = self.eval_expr(val)?;
                        if v.puppet_eq(&mv) {
                            return self.exec_statements(&arm.body);
                        }
                    }
                }
                if let Some(arm) = default_arm {
                    let body = arm.body.clone();
                    return self.exec_statements(&body);
                }
                Ok(())
            }
            StatementKind::Call(name, args) => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval_expr(a))
                    .collect::<Result<_, _>>()?;
                match name.as_str() {
                    "fail" => Err(EvalError::new(EvalErrorKind::Message(format!(
                        "fail(): {}",
                        vals.iter()
                            .map(Value::coerce_string)
                            .collect::<Vec<_>>()
                            .join(" ")
                    )))),
                    "notice" | "warning" | "info" | "debug" => Ok(()),
                    "realize" => {
                        for v in vals {
                            if let Value::Ref(t, titles) = v {
                                for title in titles {
                                    self.realize_requests.push((t.clone(), title));
                                }
                            }
                        }
                        Ok(())
                    }
                    other => Err(EvalError::new(EvalErrorKind::Message(format!(
                        "unknown function {other:?}"
                    )))),
                }
            }
        }
    }

    // ---- expressions ----

    fn lookup_var(&self, name: &str) -> Option<&Value> {
        if let Some(stripped) = name.strip_prefix("::") {
            return self.scopes.first().and_then(|s| s.get(stripped));
        }
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v);
            }
        }
        None
    }

    fn eval_expr(&mut self, e: &Expression) -> Result<Value, EvalError> {
        match e {
            Expression::Str(s) => Ok(Value::Str(s.clone())),
            Expression::Int(n) => Ok(Value::Int(*n)),
            Expression::Bool(b) => Ok(Value::Bool(*b)),
            Expression::Undef => Ok(Value::Undef),
            Expression::Default => Ok(Value::Str("default".to_string())),
            Expression::Var(name) => self
                .lookup_var(name)
                .cloned()
                .ok_or_else(|| EvalError::new(EvalErrorKind::UndefinedVariable(name.clone()))),
            Expression::Interp(parts) => {
                let mut out = String::new();
                for p in parts {
                    match p {
                        StrPart::Lit(l) => out.push_str(l),
                        StrPart::Var(v) => {
                            let val = self.lookup_var(v).cloned().ok_or_else(|| {
                                EvalError::new(EvalErrorKind::UndefinedVariable(v.clone()))
                            })?;
                            out.push_str(&val.coerce_string());
                        }
                    }
                }
                Ok(Value::Str(out))
            }
            Expression::Array(items) => Ok(Value::Array(
                items
                    .iter()
                    .map(|i| self.eval_expr(i))
                    .collect::<Result<_, _>>()?,
            )),
            Expression::Hash(items) => {
                let mut out = Vec::new();
                for (k, v) in items {
                    out.push((self.eval_expr(k)?, self.eval_expr(v)?));
                }
                Ok(Value::Hash(out))
            }
            Expression::ResourceRef(type_name, titles) => {
                let t = type_name.to_lowercase();
                let ts: Vec<String> = titles
                    .iter()
                    .map(|e| self.eval_expr(e).map(|v| v.coerce_string()))
                    .collect::<Result<_, _>>()?;
                Ok(Value::Ref(t, ts))
            }
            Expression::Call(name, args) => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval_expr(a))
                    .collect::<Result<_, _>>()?;
                match name.as_str() {
                    "defined" => {
                        let mut all = true;
                        for v in &vals {
                            all &= match v {
                                Value::Ref(t, titles) => titles.iter().all(|title| {
                                    self.index.contains_key(&(t.clone(), title.clone()))
                                        || self.groups.contains_key(&(t.clone(), title.clone()))
                                        || self.virtuals.iter().any(|vr| {
                                            vr.resource.type_name() == t
                                                && vr.resource.title() == title
                                        })
                                }),
                                Value::Str(s) => {
                                    self.declared_classes.contains(s)
                                        || self.classes.contains_key(s)
                                        || self.defines.contains_key(s)
                                }
                                _ => false,
                            };
                        }
                        Ok(Value::Bool(all))
                    }
                    other => Err(EvalError::new(EvalErrorKind::Message(format!(
                        "unknown function {other:?}"
                    )))),
                }
            }
            Expression::Not(inner) => Ok(Value::Bool(!self.eval_expr(inner)?.truthy())),
            Expression::And(a, b) => {
                let va = self.eval_expr(a)?;
                if !va.truthy() {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(self.eval_expr(b)?.truthy()))
            }
            Expression::Or(a, b) => {
                let va = self.eval_expr(a)?;
                if va.truthy() {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(self.eval_expr(b)?.truthy()))
            }
            Expression::Cmp(op, a, b) => {
                let va = self.eval_expr(a)?;
                let vb = self.eval_expr(b)?;
                let out = match op {
                    CmpOp::Eq => va.puppet_eq(&vb),
                    CmpOp::Ne => !va.puppet_eq(&vb),
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                        let (x, y) = (coerce_int(&va)?, coerce_int(&vb)?);
                        match op {
                            CmpOp::Lt => x < y,
                            CmpOp::Le => x <= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ge => x >= y,
                            _ => unreachable!(),
                        }
                    }
                };
                Ok(Value::Bool(out))
            }
            Expression::In(a, b) => {
                let va = self.eval_expr(a)?;
                let vb = self.eval_expr(b)?;
                Ok(Value::Bool(va.contained_in(&vb)))
            }
            Expression::Arith(op, a, b) => {
                let x = coerce_int(&self.eval_expr(a)?)?;
                let y = coerce_int(&self.eval_expr(b)?)?;
                let out = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0 {
                            return Err(EvalError::new(EvalErrorKind::Message(
                                "division by zero".to_string(),
                            )));
                        }
                        x / y
                    }
                };
                Ok(Value::Int(out))
            }
            Expression::Selector(scrutinee, arms) => {
                let v = self.eval_expr(scrutinee)?;
                let mut default_value: Option<&Expression> = None;
                for (m, out) in arms {
                    if matches!(m, Expression::Default) {
                        default_value = Some(out);
                        continue;
                    }
                    let mv = self.eval_expr(m)?;
                    if v.puppet_eq(&mv) {
                        return self.eval_expr(out);
                    }
                }
                match default_value {
                    Some(out) => {
                        let out = out.clone();
                        self.eval_expr(&out)
                    }
                    None => Err(EvalError::new(EvalErrorKind::Message(format!(
                        "selector has no match for {v} and no default"
                    )))),
                }
            }
        }
    }

    // ---- resources ----

    fn instantiate_resource_decl(
        &mut self,
        decl: &ResourceDecl,
    ) -> Result<Vec<ResourceId>, EvalError> {
        let mut created = Vec::new();
        for body in &decl.bodies {
            // The span a catalog resource remembers: the whole declaration
            // for the common one-body case, the body for multi-body decls.
            let rspan = if decl.bodies.len() == 1 {
                decl.span
            } else {
                body.span
            };
            let title_value = self.eval_expr(&body.title)?;
            let titles: Vec<String> = match title_value {
                Value::Array(items) => items.iter().map(Value::coerce_string).collect(),
                other => vec![other.coerce_string()],
            };
            let mut attrs: BTreeMap<String, Value> = BTreeMap::new();
            let mut attr_spans: BTreeMap<String, Span> = BTreeMap::new();
            for a in &body.attrs {
                let v = self.eval_expr(&a.value)?;
                attrs.insert(a.name.clone(), v);
                attr_spans.insert(a.name.clone(), a.span);
            }
            for title in titles {
                let id = self.instantiate_one(decl, &title, attrs.clone(), &attr_spans, rspan)?;
                created.push(id);
            }
        }
        Ok(created)
    }

    fn instantiate_one(
        &mut self,
        decl: &ResourceDecl,
        title: &str,
        mut attrs: BTreeMap<String, Value>,
        attr_spans: &BTreeMap<String, Span>,
        rspan: Span,
    ) -> Result<ResourceId, EvalError> {
        let type_name = decl.type_name.to_lowercase();
        let span_of = |name: &str| attr_spans.get(name).copied().unwrap_or(rspan);
        // Extract edge metaparameters.
        let mut edges_out: Vec<(String, Value, Span)> = Vec::new();
        for meta in META_EDGE_PARAMS {
            if let Some(v) = attrs.remove(meta) {
                edges_out.push((meta.to_string(), v, span_of(meta)));
            }
        }
        let stage_param = attrs
            .remove("stage")
            .map(|v| (v.coerce_string(), span_of("stage")));

        let id: ResourceId = (type_name.clone(), title.to_string());

        if type_name == "class" {
            let class_name = title.to_string();
            self.declare_class(&class_name, &attrs, true)?;
            if let Some((stage, sspan)) = &stage_param {
                self.assign_class_stage(&class_name, stage, *sspan);
            }
            let gid = ("class".to_string(), class_name);
            self.record_meta_edges(&gid, &edges_out);
            return Ok(gid);
        }

        if type_name == "stage" {
            self.stage_titles.insert(title.to_string());
            for (meta, v, mspan) in &edges_out {
                for (t, other) in ref_titles(v) {
                    if t != "stage" {
                        return Err(EvalError::new(EvalErrorKind::Message(format!(
                            "stage {title:?} has a non-stage dependency {}",
                            capitalize(&t)
                        )))
                        .with_span(*mspan));
                    }
                    self.stage_titles.insert(other.clone());
                    let edge = match meta.as_str() {
                        "before" | "notify" => (title.to_string(), other),
                        _ => (other, title.to_string()),
                    };
                    self.stage_edge_origins
                        .entry(edge.clone())
                        .or_insert(*mspan);
                    self.stage_edges.insert(edge);
                }
            }
            return Ok(id);
        }

        if self.defines.contains_key(&type_name) {
            self.expand_define(&type_name, title, &attrs)?;
            self.record_meta_edges(&id, &edges_out);
            if let Some(g) = self.group_stack.last().cloned() {
                self.groups.entry(g).or_default().push(id.clone());
            }
            return Ok(id);
        }

        // A primitive resource.
        let first_decl = self
            .index
            .get(&id)
            .map(|&i| self.resources[i].span())
            .or_else(|| {
                self.virtuals
                    .iter()
                    .find(|v| v.resource.id() == id)
                    .map(|v| v.resource.span())
            });
        if let Some(first) = first_decl {
            return Err(EvalError::new(EvalErrorKind::DuplicateResource(
                type_name,
                title.to_string(),
            ))
            .with_span(rspan)
            .with_related("first declared here", first));
        }
        let resource = CatalogResource::new(type_name.clone(), title, attrs)
            .with_span(rspan)
            .with_attr_spans(attr_spans.clone());
        if decl.virtual_ {
            self.virtuals.push(VirtualResource {
                resource,
                stage: self.current_stage.last().cloned().unwrap_or_default(),
                group_stack: self.group_stack.clone(),
                realized: false,
            });
        } else {
            self.push_resource(resource);
        }
        self.record_meta_edges(&id, &edges_out);
        Ok(id)
    }

    fn push_resource(&mut self, resource: CatalogResource) {
        let id = resource.id();
        let idx = self.resources.len();
        self.resources.push(resource);
        self.stage_of
            .push(self.current_stage.last().cloned().unwrap_or_default());
        self.index.insert(id.clone(), idx);
        if let Some(g) = self.group_stack.last().cloned() {
            self.groups.entry(g).or_default().push(id);
        }
    }

    fn record_meta_edges(&mut self, id: &ResourceId, metas: &[(String, Value, Span)]) {
        for (meta, v, origin) in metas {
            let refresh = matches!(meta.as_str(), "notify" | "subscribe");
            for target in ref_titles(v) {
                match meta.as_str() {
                    "before" | "notify" => self.pending_edges.push(PendingEdge {
                        before: id.clone(),
                        after: target,
                        origin: *origin,
                        refresh,
                    }),
                    _ => self.pending_edges.push(PendingEdge {
                        before: target,
                        after: id.clone(),
                        origin: *origin,
                        refresh,
                    }),
                }
            }
        }
    }

    fn expand_define(
        &mut self,
        type_name: &str,
        title: &str,
        args: &BTreeMap<String, Value>,
    ) -> Result<(), EvalError> {
        let def = self
            .defines
            .get(type_name)
            .expect("checked by caller")
            .clone();
        let gid: ResourceId = (type_name.to_string(), title.to_string());
        if self.groups.contains_key(&gid) {
            return Err(EvalError::new(EvalErrorKind::DuplicateResource(
                type_name.to_string(),
                title.to_string(),
            )));
        }
        self.groups.insert(gid.clone(), Vec::new());
        let scope = self.bind_params(type_name, &def.params, args, title)?;
        self.scopes.push(scope);
        self.group_stack.push(gid);
        let result = self.exec_statements(&def.body);
        self.group_stack.pop();
        self.scopes.pop();
        result
    }

    fn declare_class(
        &mut self,
        name: &str,
        args: &BTreeMap<String, Value>,
        resource_style: bool,
    ) -> Result<(), EvalError> {
        if self.declared_classes.contains(name) {
            if resource_style {
                return Err(EvalError::new(EvalErrorKind::DuplicateClassDeclaration(
                    name.to_string(),
                )));
            }
            return Ok(()); // include is idempotent
        }
        let class = self
            .classes
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::new(EvalErrorKind::UnknownClass(name.to_string())))?;
        self.declared_classes.insert(name.to_string());
        // `inherits` parent is declared first.
        if let Some(parent) = &class.inherits {
            self.declare_class(parent, &BTreeMap::new(), false)?;
        }
        let gid: ResourceId = ("class".to_string(), name.to_string());
        self.groups.entry(gid.clone()).or_default();
        if let Some(g) = self.group_stack.last().cloned() {
            self.groups.entry(g).or_default().push(gid.clone());
        }
        let scope = self.bind_params(name, &class.params, args, name)?;
        self.scopes.push(scope);
        self.group_stack.push(gid);
        let result = self.exec_statements(&class.body);
        self.group_stack.pop();
        self.scopes.pop();
        result
    }

    fn assign_class_stage(&mut self, class_name: &str, stage: &str, span: Span) {
        // Deferred: the class's members are only fully known once every
        // declaration has executed and virtual resources have been
        // realized, so the actual move happens in `finalize` (stage
        // existence is validated there too, making `stage` declarations
        // order-independent). The old eager resolution silently dropped
        // members that were missing from `self.index` at this point —
        // e.g. virtual resources realized later — leaving them in the
        // declaration-context stage.
        self.pending_stage_assignments
            .push((class_name.to_string(), stage.to_string(), span));
    }

    /// Applies the deferred `class → stage` assignments (see
    /// [`Evaluator::assign_class_stage`]).
    fn apply_stage_assignments(&mut self) -> Result<(), EvalError> {
        let pending = std::mem::take(&mut self.pending_stage_assignments);
        for (class_name, stage, span) in &pending {
            if !self.stage_titles.contains(stage) {
                return Err(
                    EvalError::new(EvalErrorKind::UnknownStage(stage.clone())).with_span(*span)
                );
            }
            // Move every member of the class (recursively) into the stage.
            let gid = ("class".to_string(), class_name.clone());
            for m in self
                .resolve_group(&gid)
                .map_err(|e| e.with_span_if_missing(*span))?
            {
                match self.index.get(&m) {
                    Some(&idx) => self.stage_of[idx] = stage.clone(),
                    None => {
                        // resolve_group only returns indexed ids; anything
                        // else is a bug worth surfacing, not skipping.
                        return Err(EvalError::new(EvalErrorKind::UnknownReference(
                            m.0.clone(),
                            m.1.clone(),
                        ))
                        .with_span(*span));
                    }
                }
            }
        }
        Ok(())
    }

    fn bind_params(
        &mut self,
        owner: &str,
        params: &[Param],
        args: &BTreeMap<String, Value>,
        title: &str,
    ) -> Result<HashMap<String, Value>, EvalError> {
        let mut scope = HashMap::new();
        scope.insert("title".to_string(), Value::Str(title.to_string()));
        scope.insert("name".to_string(), Value::Str(title.to_string()));
        let param_names: HashSet<&str> = params.iter().map(|p| p.name.as_str()).collect();
        for given in args.keys() {
            if !param_names.contains(given.as_str()) && given != "title" && given != "name" {
                return Err(EvalError::new(EvalErrorKind::UnexpectedParameter(
                    owner.to_string(),
                    given.clone(),
                )));
            }
        }
        for p in params {
            if let Some(v) = args.get(&p.name) {
                scope.insert(p.name.clone(), v.clone());
            } else if let Some(default) = &p.default {
                // Defaults are evaluated in a scope where $title/$name and
                // earlier parameters are visible.
                self.scopes.push(scope);
                let v = self.eval_expr(default);
                scope = self.scopes.pop().expect("pushed above");
                scope.insert(p.name.clone(), v?);
            } else {
                return Err(EvalError::new(EvalErrorKind::MissingParameter(
                    owner.to_string(),
                    p.name.clone(),
                )));
            }
        }
        Ok(scope)
    }

    // ---- chains and collectors ----

    fn exec_chain(&mut self, chain: &ChainStatement) -> Result<(), EvalError> {
        let mut operand_ids: Vec<Vec<ResourceId>> = Vec::new();
        for op in &chain.operands {
            let ids = match op {
                ChainOperand::Refs(refs) => {
                    let mut ids = Vec::new();
                    for r in refs {
                        let v = self.eval_expr(r)?;
                        ids.extend(ref_titles(&v));
                    }
                    ids
                }
                ChainOperand::Resource(decl) => self.instantiate_resource_decl(decl)?,
                ChainOperand::Collector(c) => {
                    self.exec_collector(c)?;
                    // A collector in a chain orders against everything it
                    // matches; we resolve this at finalize time via a group
                    // pseudo-id.
                    let key = (
                        "\u{0}collector".to_string(),
                        format!("{}", self.collectors.len() - 1),
                    );
                    vec![key]
                }
            };
            operand_ids.push(ids);
        }
        for (k, arrow) in chain.arrows.iter().enumerate() {
            let origin = chain
                .arrow_spans
                .get(k)
                .copied()
                .unwrap_or(self.current_span);
            let refresh = matches!(arrow, ArrowKind::Notify);
            for b in &operand_ids[k] {
                for a in &operand_ids[k + 1] {
                    self.pending_edges.push(PendingEdge {
                        before: b.clone(),
                        after: a.clone(),
                        origin,
                        refresh,
                    });
                }
            }
        }
        Ok(())
    }

    fn exec_collector(&mut self, c: &Collector) -> Result<(), EvalError> {
        let mut overrides = Vec::new();
        for a in &c.overrides {
            let v = self.eval_expr(&a.value)?;
            overrides.push((a.name.clone(), v));
        }
        self.collectors
            .push((c.type_name.clone(), c.query.clone(), overrides));
        Ok(())
    }

    fn query_matches(&self, q: &Query, r: &CatalogResource) -> bool {
        match q {
            Query::All => true,
            Query::Eq(attr, e) => {
                let want = literal_value(e);
                if attr == "title" {
                    return Value::Str(r.title().to_string()).puppet_eq(&want);
                }
                r.attr(attr).map(|v| v.puppet_eq(&want)).unwrap_or(false)
            }
            Query::Ne(attr, e) => {
                let want = literal_value(e);
                if attr == "title" {
                    return !Value::Str(r.title().to_string()).puppet_eq(&want);
                }
                r.attr(attr).map(|v| !v.puppet_eq(&want)).unwrap_or(true)
            }
            Query::And(a, b) => self.query_matches(a, r) && self.query_matches(b, r),
            Query::Or(a, b) => self.query_matches(a, r) || self.query_matches(b, r),
        }
    }

    // ---- finalize ----

    fn resolve_group(&self, id: &ResourceId) -> Result<Vec<ResourceId>, EvalError> {
        let mut out = Vec::new();
        let mut stack = vec![id.clone()];
        let mut seen = HashSet::new();
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if self.index.contains_key(&cur) {
                out.push(cur);
            } else if let Some(members) = self.groups.get(&cur) {
                stack.extend(members.iter().cloned());
            } else if cur.0 == "class" && self.declared_classes.contains(&cur.1) {
                // An empty class: fine, no members.
            } else {
                return Err(EvalError::new(EvalErrorKind::UnknownReference(
                    cur.0.clone(),
                    cur.1.clone(),
                )));
            }
        }
        Ok(out)
    }

    fn finalize(mut self) -> Result<Catalog, EvalError> {
        // 1. Realize virtual resources requested by realize() or matched by
        //    a collector.
        let realize_requests = std::mem::take(&mut self.realize_requests);
        let collectors = std::mem::take(&mut self.collectors);
        let mut virtuals = std::mem::take(&mut self.virtuals);
        for vr in virtuals.iter_mut() {
            let requested = realize_requests.iter().any(|id| *id == vr.resource.id());
            let collected = collectors.iter().any(|(t, q, _)| {
                *t == vr.resource.type_name() && self.query_matches(q, &vr.resource)
            });
            if requested || collected {
                vr.realized = true;
            }
        }
        for vr in &virtuals {
            if vr.realized {
                let saved_stage = self.current_stage.clone();
                let saved_groups = self.group_stack.clone();
                self.current_stage = vec![vr.stage.clone()];
                self.group_stack = vr.group_stack.clone();
                self.push_resource(vr.resource.clone());
                self.current_stage = saved_stage;
                self.group_stack = saved_groups;
            }
        }

        // 1b. Resolve deferred stage assignments now that every member —
        //     including just-realized virtual resources — is indexed.
        self.apply_stage_assignments()?;

        // 2. Apply resource defaults (attributes only present if not set).
        let defaults = std::mem::take(&mut self.defaults);
        for (ty, attr, v, dspan) in &defaults {
            if META_EDGE_PARAMS.contains(&attr.as_str()) {
                // Metaparameter default: becomes edges for every resource of
                // the type.
                let ids: Vec<ResourceId> = self
                    .resources
                    .iter()
                    .filter(|r| r.type_name() == ty)
                    .map(|r| r.id())
                    .collect();
                for id in ids {
                    self.record_meta_edges(&id, &[(attr.clone(), v.clone(), *dspan)]);
                }
                continue;
            }
            for r in self.resources.iter_mut().filter(|r| r.type_name() == *ty) {
                r.attrs_mut()
                    .entry(attr.clone())
                    .or_insert_with(|| v.clone());
            }
        }

        // 3. Apply collector overrides (global, non-modular: paper §3.1).
        for (ty, query, overrides) in &collectors {
            for r in self.resources.iter_mut() {
                if r.type_name() == *ty {
                    // Borrow dance: query_matches needs &self.
                    let matches = {
                        let q = query;
                        // Inline the matching to avoid double borrow.
                        fn matches_inline(ev_query: &Query, r: &CatalogResource) -> bool {
                            match ev_query {
                                Query::All => true,
                                Query::Eq(attr, e) => {
                                    let want = literal_value(e);
                                    if attr == "title" {
                                        Value::Str(r.title().to_string()).puppet_eq(&want)
                                    } else {
                                        r.attr(attr).map(|v| v.puppet_eq(&want)).unwrap_or(false)
                                    }
                                }
                                Query::Ne(attr, e) => {
                                    let want = literal_value(e);
                                    if attr == "title" {
                                        !Value::Str(r.title().to_string()).puppet_eq(&want)
                                    } else {
                                        r.attr(attr).map(|v| !v.puppet_eq(&want)).unwrap_or(true)
                                    }
                                }
                                Query::And(a, b) => matches_inline(a, r) && matches_inline(b, r),
                                Query::Or(a, b) => matches_inline(a, r) || matches_inline(b, r),
                            }
                        }
                        matches_inline(q, r)
                    };
                    if matches {
                        for (k, v) in overrides {
                            r.attrs_mut().insert(k.clone(), v.clone());
                        }
                    }
                }
            }
        }

        // 4. Resolve pending edges to primitive-resource index pairs,
        //    keeping the span of the declaration that created each edge
        //    (first declaration wins for duplicates).
        let mut edges: BTreeMap<(usize, usize), (Span, bool)> = BTreeMap::new();
        let pending = std::mem::take(&mut self.pending_edges);
        for e in &pending {
            let before = self.resolve_edge_endpoint(&e.before, &collectors, e.origin)?;
            let after = self.resolve_edge_endpoint(&e.after, &collectors, e.origin)?;
            for &b in &before {
                for &a in &after {
                    if b != a {
                        // First declaration's span wins; refresh semantics
                        // accumulate (any notify/subscribe declaration makes
                        // the merged edge a refresh edge).
                        let entry = edges.entry((b, a)).or_insert((e.origin, false));
                        entry.1 |= e.refresh;
                    }
                }
            }
        }

        // 5. File auto-require: a file depends on the file resource managing
        //    its parent directory (paper §1 footnote).
        let path_of: HashMap<String, usize> = self
            .resources
            .iter()
            .enumerate()
            .filter(|(_, r)| r.type_name() == "file")
            .map(|(i, r)| {
                let path = r.attr_str("path").unwrap_or_else(|| r.title().to_string());
                (path, i)
            })
            .collect();
        for (path, &i) in &path_of {
            if let Some(parent) = parent_path(path) {
                if let Some(&j) = path_of.get(&parent) {
                    if i != j {
                        // The auto-required child's declaration is the edge's
                        // natural source anchor.
                        edges
                            .entry((j, i))
                            .or_insert((self.resources[i].span(), false));
                    }
                }
            }
        }

        // 6. Stage elimination: expand stage ordering into resource edges
        //    (paper §3.1). Uses the transitive closure of the stage DAG;
        //    composed pairs inherit the origin of their first hop.
        let stage_pairs = transitive_closure(&self.stage_edges, &self.stage_edge_origins);
        for ((s1, s2), origin) in &stage_pairs {
            let origin = *origin;
            for i in 0..self.resources.len() {
                if self.stage_of[i] != *s1 {
                    continue;
                }
                for j in 0..self.resources.len() {
                    if self.stage_of[j] == *s2 && i != j {
                        edges.entry((i, j)).or_insert((origin, false));
                    }
                }
            }
        }

        Ok(Catalog::new_with_refresh(
            self.resources,
            edges
                .into_iter()
                .map(|((a, b), (s, r))| (a, b, s, r))
                .collect(),
        ))
    }

    fn resolve_edge_endpoint(
        &self,
        id: &ResourceId,
        collectors: &[CollectorSpec],
        origin: Span,
    ) -> Result<Vec<usize>, EvalError> {
        if id.0 == "\u{0}collector" {
            let k: usize = id.1.parse().expect("collector pseudo-id");
            let (ty, query, _) = &collectors[k];
            return Ok(self
                .resources
                .iter()
                .enumerate()
                .filter(|(_, r)| r.type_name() == *ty && self.query_matches(query, r))
                .map(|(i, _)| i)
                .collect());
        }
        let ids = self
            .resolve_group(id)
            .map_err(|e| e.with_span_if_missing(origin))?;
        Ok(ids
            .iter()
            .map(|rid| *self.index.get(rid).expect("resolved ids are primitive"))
            .collect())
    }
}

/// Extracts `(type, title)` pairs from a reference-ish value.
fn ref_titles(v: &Value) -> Vec<ResourceId> {
    match v {
        Value::Ref(t, titles) => titles.iter().map(|x| (t.clone(), x.clone())).collect(),
        Value::Array(items) => items.iter().flat_map(ref_titles).collect(),
        _ => Vec::new(),
    }
}

/// Evaluates a literal expression in a collector query (queries cannot
/// reference variables in our fragment).
fn literal_value(e: &Expression) -> Value {
    match e {
        Expression::Str(s) => Value::Str(s.clone()),
        Expression::Int(n) => Value::Int(*n),
        Expression::Bool(b) => Value::Bool(*b),
        Expression::Interp(parts) => {
            let mut s = String::new();
            for p in parts {
                if let StrPart::Lit(l) = p {
                    s.push_str(l);
                }
            }
            Value::Str(s)
        }
        _ => Value::Undef,
    }
}

fn coerce_int(v: &Value) -> Result<i64, EvalError> {
    match v {
        Value::Int(n) => Ok(*n),
        Value::Str(s) => s.parse().map_err(|_| {
            EvalError::new(EvalErrorKind::Message(format!(
                "cannot treat {s:?} as a number"
            )))
        }),
        other => Err(EvalError::new(EvalErrorKind::Message(format!(
            "cannot treat {other} as a number"
        )))),
    }
}

fn parent_path(path: &str) -> Option<String> {
    let trimmed = path.trim_end_matches('/');
    let idx = trimmed.rfind('/')?;
    if idx == 0 {
        if trimmed.len() > 1 {
            return Some("/".to_string());
        }
        return None;
    }
    Some(trimmed[..idx].to_string())
}

/// The transitive closure of the stage DAG, carrying origins: a composed
/// pair `(a, d)` built from `(a, b)` + `(b, d)` inherits the span of its
/// first hop `(a, b)`, so even indirect stage-ordering edges stay
/// source-anchored.
fn transitive_closure(
    edges: &BTreeSet<(String, String)>,
    origins: &HashMap<(String, String), Span>,
) -> BTreeMap<(String, String), Span> {
    let mut closure: BTreeMap<(String, String), Span> = edges
        .iter()
        .map(|e| (e.clone(), origins.get(e).copied().unwrap_or(Span::DUMMY)))
        .collect();
    loop {
        let mut added = false;
        let snapshot: Vec<((String, String), Span)> =
            closure.iter().map(|(e, &s)| (e.clone(), s)).collect();
        for ((a, b), first_hop) in &snapshot {
            for ((c, d), _) in &snapshot {
                if b == c {
                    let composed = (a.clone(), d.clone());
                    if let std::collections::btree_map::Entry::Vacant(slot) =
                        closure.entry(composed)
                    {
                        slot.insert(*first_hop);
                        added = true;
                    }
                }
            }
        }
        if !added {
            return closure;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn eval_src(src: &str) -> Catalog {
        evaluate(&parse(src).unwrap(), &Facts::ubuntu()).unwrap()
    }

    fn eval_err(src: &str) -> EvalError {
        evaluate(&parse(src).unwrap(), &Facts::ubuntu()).unwrap_err()
    }

    #[test]
    fn simple_resources() {
        let c = eval_src(
            "package { 'vim': ensure => present }\n\
             file { '/home/carol/.vimrc': content => 'syntax on' }",
        );
        assert_eq!(c.len(), 2);
        assert!(c.find("package", "vim").is_some());
        assert!(c.find("file", "/home/carol/.vimrc").is_some());
    }

    #[test]
    fn chain_edges() {
        let c = eval_src(
            "user { 'carol': ensure => present }\n\
             file { '/home/carol/.vimrc': content => 'syntax on' }\n\
             User['carol'] -> File['/home/carol/.vimrc']",
        );
        let u = c.find("user", "carol").unwrap();
        let f = c.find("file", "/home/carol/.vimrc").unwrap();
        assert!(c.edges().contains(&(u, f)));
    }

    #[test]
    fn require_metaparameter() {
        let c = eval_src(
            "package { 'apache2': ensure => present }\n\
             file { '/etc/apache2/sites-available/000-default.conf':\n\
               content => 'x', require => Package['apache2'] }",
        );
        let p = c.find("package", "apache2").unwrap();
        let f = c
            .find("file", "/etc/apache2/sites-available/000-default.conf")
            .unwrap();
        assert_eq!(c.edges(), &[(p, f)]);
    }

    #[test]
    fn before_and_notify() {
        let c = eval_src(
            "package { 'nginx': before => Service['nginx'] }\n\
             service { 'nginx': subscribe => File['/etc/nginx/nginx.conf'] }\n\
             file { '/etc/nginx/nginx.conf': content => 'c', notify => Service['nginx'] }",
        );
        let p = c.find("package", "nginx").unwrap();
        let s = c.find("service", "nginx").unwrap();
        let f = c.find("file", "/etc/nginx/nginx.conf").unwrap();
        assert!(c.edges().contains(&(p, s)));
        assert!(c.edges().contains(&(f, s)));
    }

    #[test]
    fn paper_figure_2_defined_type() {
        let src = r#"
            define myuser() {
              user { "$title": ensure => present, managehome => true }
              file { "/home/${title}/.vimrc": content => "syntax on" }
              User["$title"] -> File["/home/${title}/.vimrc"]
            }
            myuser { 'alice': }
            myuser { 'carol': }
        "#;
        let c = eval_src(src);
        assert_eq!(c.len(), 4);
        for who in ["alice", "carol"] {
            let u = c.find("user", who).unwrap();
            let f = c.find("file", &format!("/home/{who}/.vimrc")).unwrap();
            assert!(c.edges().contains(&(u, f)), "edge for {who}");
        }
    }

    #[test]
    fn define_params_with_defaults() {
        let src = r#"
            define greeter($greeting = "hello ${title}") {
              file { "/tmp/$title": content => $greeting }
            }
            greeter { 'world': }
            greeter { 'bob': greeting => 'hi' }
        "#;
        let c = eval_src(src);
        let w = c.find("file", "/tmp/world").unwrap();
        assert_eq!(
            c.resources()[w].attr_str("content").as_deref(),
            Some("hello world")
        );
        let b = c.find("file", "/tmp/bob").unwrap();
        assert_eq!(c.resources()[b].attr_str("content").as_deref(), Some("hi"));
    }

    #[test]
    fn unknown_param_rejected() {
        let err = eval_err(
            "define d($x = 1) { }\n\
             d { 't': y => 2 }",
        );
        assert!(matches!(
            err.kind(),
            EvalErrorKind::UnexpectedParameter(_, _)
        ));
    }

    #[test]
    fn missing_param_rejected() {
        let err = eval_err(
            "define d($x) { }\n\
             d { 't': }",
        );
        assert!(matches!(err.kind(), EvalErrorKind::MissingParameter(_, _)));
    }

    #[test]
    fn classes_include_once() {
        let src = r#"
            class web { package { 'nginx': } }
            include web
            include web
        "#;
        let c = eval_src(src);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_resource_rejected() {
        let err = eval_err("package { 'vim': }\npackage { 'vim': }");
        assert!(matches!(err.kind(), EvalErrorKind::DuplicateResource(_, _)));
    }

    #[test]
    fn class_edges_expand_to_members() {
        let src = r#"
            class a { package { 'p1': } package { 'p2': } }
            class b { package { 'p3': } }
            include a
            include b
            Class['a'] -> Class['b']
        "#;
        let c = eval_src(src);
        let p1 = c.find("package", "p1").unwrap();
        let p2 = c.find("package", "p2").unwrap();
        let p3 = c.find("package", "p3").unwrap();
        assert!(c.edges().contains(&(p1, p3)));
        assert!(c.edges().contains(&(p2, p3)));
    }

    #[test]
    fn define_instance_edges_expand_to_members() {
        let src = r#"
            define pair() {
              file { "/tmp/${title}-a": }
              file { "/tmp/${title}-b": }
            }
            pair { 'x': }
            package { 'zip': }
            Pair['x'] -> Package['zip']
        "#;
        let c = eval_src(src);
        let z = c.find("package", "zip").unwrap();
        let a = c.find("file", "/tmp/x-a").unwrap();
        let b = c.find("file", "/tmp/x-b").unwrap();
        assert!(c.edges().contains(&(a, z)));
        assert!(c.edges().contains(&(b, z)));
    }

    #[test]
    fn conditionals_and_facts() {
        let src = r#"
            if $osfamily == 'Debian' {
              package { 'apache2': }
            } else {
              package { 'httpd': }
            }
        "#;
        let c = evaluate(&parse(src).unwrap(), &Facts::ubuntu()).unwrap();
        assert!(c.find("package", "apache2").is_some());
        let c2 = evaluate(&parse(src).unwrap(), &Facts::centos()).unwrap();
        assert!(c2.find("package", "httpd").is_some());
    }

    #[test]
    fn case_and_selector() {
        let src = r#"
            $pkg = $osfamily ? { 'Debian' => 'apache2', default => 'httpd' }
            case $osfamily {
              'Debian': { $svc = 'apache2' }
              default: { $svc = 'httpd' }
            }
            package { $pkg: }
            service { $svc: }
        "#;
        let c = eval_src(src);
        assert!(c.find("package", "apache2").is_some());
        assert!(c.find("service", "apache2").is_some());
    }

    #[test]
    fn collector_overrides_attributes() {
        let src = r#"
            file { '/home/carol/a': owner => 'carol', mode => 'rw' }
            file { '/home/dave/b': owner => 'dave', mode => 'rw' }
            File<| owner == 'carol' |> { mode => 'go-rwx' }
        "#;
        let c = eval_src(src);
        let a = c.find("file", "/home/carol/a").unwrap();
        let b = c.find("file", "/home/dave/b").unwrap();
        assert_eq!(c.resources()[a].attr_str("mode").as_deref(), Some("go-rwx"));
        assert_eq!(c.resources()[b].attr_str("mode").as_deref(), Some("rw"));
    }

    #[test]
    fn virtual_resources_realized_by_collector() {
        let src = r#"
            @user { 'carol': ensure => present }
            @user { 'dave': ensure => present }
            User <| title == 'carol' |>
        "#;
        let c = eval_src(src);
        assert!(c.find("user", "carol").is_some());
        assert!(c.find("user", "dave").is_none());
    }

    #[test]
    fn virtual_resources_realized_by_realize() {
        let src = r#"
            @user { 'carol': ensure => present }
            realize(User['carol'])
        "#;
        let c = eval_src(src);
        assert!(c.find("user", "carol").is_some());
    }

    #[test]
    fn resource_defaults_fill_missing_attrs() {
        let src = r#"
            File { owner => 'root' }
            file { '/a': content => 'c' }
            file { '/b': owner => 'carol' }
        "#;
        let c = eval_src(src);
        let a = c.find("file", "/a").unwrap();
        let b = c.find("file", "/b").unwrap();
        assert_eq!(c.resources()[a].attr_str("owner").as_deref(), Some("root"));
        assert_eq!(c.resources()[b].attr_str("owner").as_deref(), Some("carol"));
    }

    #[test]
    fn file_autorequire_parent_directory() {
        let src = r#"
            file { '/etc/apache2': ensure => directory }
            file { '/etc/apache2/apache2.conf': content => 'c' }
        "#;
        let c = eval_src(src);
        let d = c.find("file", "/etc/apache2").unwrap();
        let f = c.find("file", "/etc/apache2/apache2.conf").unwrap();
        assert!(c.edges().contains(&(d, f)));
    }

    #[test]
    fn stages_order_resources() {
        let src = r#"
            stage { 'pre': before => Stage['main'] }
            class setup { package { 'base': } }
            class app { package { 'web': } }
            class { 'setup': stage => 'pre' }
            include app
        "#;
        let c = eval_src(src);
        let base = c.find("package", "base").unwrap();
        let web = c.find("package", "web").unwrap();
        assert!(c.edges().contains(&(base, web)));
    }

    #[test]
    fn stage_assignment_covers_later_realized_members() {
        // The class's virtual resource is realized *after* the stage
        // assignment executes; eager resolution used to leave it in
        // 'main', losing the pre → main ordering edge.
        let src = r#"
            stage { 'pre': before => Stage['main'] }
            class setup {
              package { 'base': }
              @package { 'extra': }
            }
            class { 'setup': stage => 'pre' }
            package { 'web': }
            realize(Package['extra'])
        "#;
        let c = eval_src(src);
        let base = c.find("package", "base").unwrap();
        let extra = c.find("package", "extra").unwrap();
        let web = c.find("package", "web").unwrap();
        assert!(c.edges().contains(&(base, web)), "eager member ordered");
        assert!(
            c.edges().contains(&(extra, web)),
            "realized member lands in the assigned stage too"
        );
    }

    #[test]
    fn composed_stage_edges_inherit_first_hop_origin() {
        // pre -> main -> post: the (pre, post) ordering is transitive, so
        // the resource edge base -> late must carry the origin of the
        // first hop (the `before => Stage['main']` attribute).
        let src = r#"
            stage { 'pre': before => Stage['main'] }
            stage { 'post': require => Stage['main'] }
            class setup { package { 'base': } }
            class teardown { package { 'late': } }
            class { 'setup': stage => 'pre' }
            class { 'teardown': stage => 'post' }
            package { 'web': }
        "#;
        let c = eval_src(src);
        let base = c.find("package", "base").unwrap();
        let late = c.find("package", "late").unwrap();
        assert!(c.edges().contains(&(base, late)), "transitive ordering");
        let origin = c.edge_origin(base, late);
        assert!(
            !origin.is_dummy(),
            "composed stage pairs must stay source-anchored"
        );
        assert_eq!(origin.lo.line, 2, "the pre -> main `before` attribute");
    }

    #[test]
    fn stage_declared_after_assignment_still_works() {
        // Declaration order of the stage resource itself no longer
        // matters: validation happens at finalize.
        let src = r#"
            class setup { package { 'base': } }
            class { 'setup': stage => 'pre' }
            package { 'web': }
            stage { 'pre': before => Stage['main'] }
        "#;
        let c = eval_src(src);
        let base = c.find("package", "base").unwrap();
        let web = c.find("package", "web").unwrap();
        assert!(c.edges().contains(&(base, web)));
    }

    #[test]
    fn unknown_stage_still_errors() {
        let err = eval_err(
            r#"
            class setup { package { 'base': } }
            class { 'setup': stage => 'nope' }
        "#,
        );
        assert!(
            matches!(err.kind(), EvalErrorKind::UnknownStage(_)),
            "{err}"
        );
    }

    #[test]
    fn undefined_variable_errors() {
        let err = eval_err("file { '/x': content => $nope }");
        assert!(matches!(err.kind(), EvalErrorKind::UndefinedVariable(_)));
    }

    #[test]
    fn unknown_reference_errors() {
        let err = eval_err("Package['ghost'] -> Package['also-ghost']");
        assert!(matches!(err.kind(), EvalErrorKind::UnknownReference(_, _)));
    }

    #[test]
    fn fail_function() {
        let err = eval_err("fail('nope')");
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn defined_function_guards_duplicates() {
        // The paper notes 1/3 of Forge modules use this idiom (§2.2 fn. 4).
        let src = r#"
            define cpp() {
              if !defined(Package['m4']) { package { 'm4': } }
            }
            define ocaml() {
              if !defined(Package['m4']) { package { 'm4': } }
            }
            cpp { 'c': }
            ocaml { 'o': }
        "#;
        let c = eval_src(src);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn chained_declarations_create_edges() {
        let c = eval_src("package { 'a': } -> file { '/b': content => 'x' }");
        let p = c.find("package", "a").unwrap();
        let f = c.find("file", "/b").unwrap();
        assert!(c.edges().contains(&(p, f)));
    }

    #[test]
    fn array_titles_create_multiple_resources() {
        let c = eval_src("package { ['m4', 'make', 'gcc']: ensure => present }");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn interpolation_uses_facts() {
        let c = eval_src(r#"file { '/etc/issue': content => "Welcome to ${operatingsystem}" }"#);
        let f = c.find("file", "/etc/issue").unwrap();
        assert_eq!(
            c.resources()[f].attr_str("content").as_deref(),
            Some("Welcome to Ubuntu")
        );
    }

    #[test]
    fn node_blocks_match_hostname_or_default() {
        let src = r#"
            node 'testhost' { package { 'matched': } }
            node default { package { 'fallback': } }
        "#;
        let c = eval_src(src);
        assert!(c.find("package", "matched").is_some());
        assert!(c.find("package", "fallback").is_none());
    }

    #[test]
    fn unknown_class_errors() {
        let err = eval_err("include ghost");
        assert!(matches!(err.kind(), EvalErrorKind::UnknownClass(_)));
    }

    #[test]
    fn class_inherits_declares_parent() {
        let src = r#"
            class base { package { 'core': } }
            class app inherits base { package { 'web': } }
            include app
        "#;
        let c = eval_src(src);
        assert!(c.find("package", "core").is_some());
        assert!(c.find("package", "web").is_some());
    }

    #[test]
    fn parent_path_helper() {
        assert_eq!(parent_path("/a/b"), Some("/a".to_string()));
        assert_eq!(parent_path("/a"), Some("/".to_string()));
        assert_eq!(parent_path("/"), None);
    }

    #[test]
    fn notify_subscribe_and_tilde_arrows_mark_refresh_edges() {
        let src = r#"
            package { 'ntp': ensure => present }
            file { '/etc/ntp.conf': content => 'c', require => Package['ntp'] }
            service { 'ntp': ensure => running, subscribe => File['/etc/ntp.conf'] }
            file { '/etc/motd': content => 'm', notify => Service['ntp'] }
            file { '/srv/a': content => 'a' }
            File['/srv/a'] ~> Service['ntp']
            file { '/srv/b': content => 'b' }
            File['/srv/b'] -> Service['ntp']
        "#;
        let c = eval_src(src);
        let pkg = c.find("package", "ntp").unwrap();
        let conf = c.find("file", "/etc/ntp.conf").unwrap();
        let svc = c.find("service", "ntp").unwrap();
        let motd = c.find("file", "/etc/motd").unwrap();
        let a = c.find("file", "/srv/a").unwrap();
        let b = c.find("file", "/srv/b").unwrap();
        // Direction is unchanged; only the refresh flag distinguishes them.
        assert!(c.edges().contains(&(conf, svc)));
        assert!(!c.edge_is_refresh(pkg, conf), "require is plain ordering");
        assert!(c.edge_is_refresh(conf, svc), "subscribe refreshes");
        assert!(c.edge_is_refresh(motd, svc), "notify refreshes");
        assert!(c.edge_is_refresh(a, svc), "~> refreshes");
        assert!(!c.edge_is_refresh(b, svc), "-> is plain ordering");
    }
}
