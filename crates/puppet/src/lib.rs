//! The Puppet DSL frontend for Rehearsal.
//!
//! Parses and evaluates the fragment of Puppet described in the paper
//! (fig. 1) plus the conveniences real manifests rely on — classes,
//! conditionals, selectors, collectors, virtual resources, stages, resource
//! defaults, and `defined()` — and compiles manifests down to a *resource
//! graph* of primitive resources (paper §3.1).
//!
//! The pipeline is [`parse`] → [`evaluate`] → [`ResourceGraph::from_catalog`].
//!
//! # Examples
//!
//! ```
//! use rehearsal_puppet::{evaluate, parse, Facts, ResourceGraph};
//!
//! let manifest = parse(r#"
//!     package { 'vim': ensure => present }
//!     file { '/home/carol/.vimrc': content => 'syntax on' }
//!     user { 'carol': ensure => present, managehome => true }
//!     User['carol'] -> File['/home/carol/.vimrc']
//! "#)?;
//! let catalog = evaluate(&manifest, &Facts::ubuntu())?;
//! let graph = ResourceGraph::from_catalog(&catalog)?;
//! assert_eq!(graph.len(), 3);
//! assert_eq!(graph.edges().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod catalog;
mod error;
mod eval;
mod graph;
mod lexer;
mod parser;
mod printer;
mod value;

pub use catalog::{Catalog, CatalogResource, ResourceId};
pub use error::{CycleEdge, CycleError, EvalError, EvalErrorKind, ParseError, Pos, Span};
pub use eval::{evaluate, Facts};
pub use graph::ResourceGraph;
pub use lexer::{lex, Spanned, StrPart, Token};
pub use parser::parse;
pub use printer::{print_expr, print_manifest};
pub use value::{capitalize, Value};
