//! Lexer for the Puppet DSL fragment Rehearsal supports.
//!
//! Produces a token stream with source positions. Double-quoted strings are
//! tokenized into interpolation parts (`"a $x b ${y}"` becomes literal and
//! variable parts), which is how Puppet manifests splice variables into
//! paths and contents.

use crate::error::{ParseError, Pos, Span};
use std::fmt;

/// One part of a double-quoted string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StrPart {
    /// Literal text.
    Lit(String),
    /// An interpolated variable (`$name` or `${name}`).
    Var(String),
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Lower-case bareword (identifier or keyword), possibly `::`-qualified.
    Ident(String),
    /// Capitalized bareword (resource type reference), possibly qualified.
    TypeName(String),
    /// `$variable` (the `$` is stripped; leading `::` is preserved).
    Var(String),
    /// Double-quoted string with interpolation parts.
    Str(Vec<StrPart>),
    /// Single-quoted literal string.
    RawStr(String),
    /// Integer literal.
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=>`
    FatArrow,
    /// `->`
    Arrow,
    /// `~>`
    TildeArrow,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `!`
    Bang,
    /// `?`
    Question,
    /// `<|`
    CollectStart,
    /// `|>`
    CollectEnd,
    /// `.`
    Dot,
    /// `@` (virtual resource marker)
    At,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::TypeName(s) => write!(f, "{s}"),
            Token::Var(s) => write!(f, "${s}"),
            Token::Str(_) => write!(f, "string"),
            Token::RawStr(s) => write!(f, "{s:?}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Colon => write!(f, ":"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::FatArrow => write!(f, "=>"),
            Token::Arrow => write!(f, "->"),
            Token::TildeArrow => write!(f, "~>"),
            Token::Assign => write!(f, "="),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Gt => write!(f, ">"),
            Token::Le => write!(f, "<="),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Bang => write!(f, "!"),
            Token::Question => write!(f, "?"),
            Token::CollectStart => write!(f, "<|"),
            Token::CollectEnd => write!(f, "|>"),
            Token::Dot => write!(f, "."),
            Token::At => write!(f, "@"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
    /// Where it ends (exclusive).
    pub end: Pos,
}

impl Spanned {
    /// The token's source span.
    pub fn span(&self) -> Span {
        Span::new(self.pos, self.end)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    text: &'a str,
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Cursor<'a> {
        Cursor {
            src: text.as_bytes(),
            text,
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos(), message)
    }
}

fn is_word_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_word(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
}

/// Consumes word characters; a `-` is only part of the word when followed by
/// another word character (so `foo->bar` lexes as `foo`, `->`, `bar`).
fn scan_word(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        if c == b'-' {
            if cur.peek2().map(is_word_start).unwrap_or(false)
                || cur.peek2().map(|d| d.is_ascii_digit()).unwrap_or(false)
            {
                cur.bump();
                cur.bump();
                continue;
            }
            break;
        }
        if is_word(c) {
            cur.bump();
        } else {
            break;
        }
    }
}

/// Tokenizes Puppet source.
///
/// # Errors
///
/// Returns [`ParseError`] on unterminated strings or comments and on
/// characters outside the supported fragment.
pub fn lex(text: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut cur = Cursor::new(text);
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match cur.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    cur.bump();
                }
                Some(b'#') => {
                    while let Some(c) = cur.peek() {
                        if c == b'\n' {
                            break;
                        }
                        cur.bump();
                    }
                }
                Some(b'/') if cur.peek2() == Some(b'*') => {
                    let start = cur.pos();
                    cur.bump();
                    cur.bump();
                    loop {
                        match (cur.peek(), cur.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                cur.bump();
                                cur.bump();
                                break;
                            }
                            (Some(_), _) => {
                                cur.bump();
                            }
                            (None, _) => {
                                return Err(ParseError::new(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => break,
            }
        }
        let pos = cur.pos();
        let Some(c) = cur.peek() else {
            out.push(Spanned {
                token: Token::Eof,
                pos,
                end: pos,
            });
            return Ok(out);
        };
        let token = match c {
            b'{' => {
                cur.bump();
                Token::LBrace
            }
            b'}' => {
                cur.bump();
                Token::RBrace
            }
            b'[' => {
                cur.bump();
                Token::LBracket
            }
            b']' => {
                cur.bump();
                Token::RBracket
            }
            b'(' => {
                cur.bump();
                Token::LParen
            }
            b')' => {
                cur.bump();
                Token::RParen
            }
            b':' => {
                cur.bump();
                Token::Colon
            }
            b',' => {
                cur.bump();
                Token::Comma
            }
            b';' => {
                cur.bump();
                Token::Semi
            }
            b'.' => {
                cur.bump();
                Token::Dot
            }
            b'@' => {
                cur.bump();
                Token::At
            }
            b'+' => {
                cur.bump();
                Token::Plus
            }
            b'*' => {
                cur.bump();
                Token::Star
            }
            b'/' => {
                cur.bump();
                Token::Slash
            }
            b'?' => {
                cur.bump();
                Token::Question
            }
            b'=' => {
                cur.bump();
                match cur.peek() {
                    Some(b'>') => {
                        cur.bump();
                        Token::FatArrow
                    }
                    Some(b'=') => {
                        cur.bump();
                        Token::EqEq
                    }
                    _ => Token::Assign,
                }
            }
            b'!' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    Token::NotEq
                } else {
                    Token::Bang
                }
            }
            b'-' => {
                cur.bump();
                if cur.peek() == Some(b'>') {
                    cur.bump();
                    Token::Arrow
                } else {
                    Token::Minus
                }
            }
            b'~' => {
                cur.bump();
                if cur.peek() == Some(b'>') {
                    cur.bump();
                    Token::TildeArrow
                } else {
                    return Err(cur.err("expected '>' after '~'"));
                }
            }
            b'<' => {
                cur.bump();
                match cur.peek() {
                    Some(b'|') => {
                        cur.bump();
                        Token::CollectStart
                    }
                    Some(b'=') => {
                        cur.bump();
                        Token::Le
                    }
                    _ => Token::Lt,
                }
            }
            b'>' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    Token::Ge
                } else {
                    Token::Gt
                }
            }
            b'|' => {
                cur.bump();
                if cur.peek() == Some(b'>') {
                    cur.bump();
                    Token::CollectEnd
                } else {
                    return Err(cur.err("expected '>' after '|'"));
                }
            }
            b'\'' => {
                cur.bump();
                let mut s = String::new();
                loop {
                    match cur.bump() {
                        Some(b'\'') => break,
                        Some(b'\\') => match cur.bump() {
                            Some(b'\'') => s.push('\''),
                            Some(b'\\') => s.push('\\'),
                            Some(other) => {
                                s.push('\\');
                                s.push(other as char);
                            }
                            None => return Err(ParseError::new(pos, "unterminated string")),
                        },
                        Some(other) => s.push(other as char),
                        None => return Err(ParseError::new(pos, "unterminated string")),
                    }
                }
                Token::RawStr(s)
            }
            b'"' => {
                cur.bump();
                Token::Str(lex_interpolated(&mut cur, pos)?)
            }
            b'$' => {
                cur.bump();
                let mut name = String::new();
                // Optional top-scope prefix `::`.
                while cur.peek() == Some(b':') && cur.peek2() == Some(b':') {
                    cur.bump();
                    cur.bump();
                    name.push_str("::");
                }
                if !cur.peek().map(is_word_start).unwrap_or(false) {
                    return Err(cur.err("expected variable name after '$'"));
                }
                while cur.peek().map(is_word).unwrap_or(false) {
                    name.push(cur.bump().expect("peeked") as char);
                }
                Token::Var(name)
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(d) = cur.peek() {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    n = n * 10 + i64::from(d - b'0');
                    cur.bump();
                }
                Token::Int(n)
            }
            c if is_word_start(c) => {
                let start = cur.i;
                scan_word(&mut cur);
                // Qualified names: foo::bar or Foo::Bar.
                while cur.peek() == Some(b':')
                    && cur.peek2() == Some(b':')
                    && cur
                        .src
                        .get(cur.i + 2)
                        .copied()
                        .map(is_word_start)
                        .unwrap_or(false)
                {
                    cur.bump();
                    cur.bump();
                    scan_word(&mut cur);
                }
                let word = &cur.text[start..cur.i];
                if word.chars().next().expect("non-empty").is_ascii_uppercase() {
                    Token::TypeName(word.to_string())
                } else {
                    Token::Ident(word.to_string())
                }
            }
            other => {
                return Err(cur.err(format!("unexpected character {:?}", other as char)));
            }
        };
        out.push(Spanned {
            token,
            pos,
            end: cur.pos(),
        });
    }
}

/// Lexes the inside of a double-quoted string (after the opening quote).
fn lex_interpolated(cur: &mut Cursor<'_>, start: Pos) -> Result<Vec<StrPart>, ParseError> {
    let mut parts = Vec::new();
    let mut lit = String::new();
    loop {
        match cur.bump() {
            Some(b'"') => break,
            Some(b'\\') => match cur.bump() {
                Some(b'n') => lit.push('\n'),
                Some(b't') => lit.push('\t'),
                Some(b'"') => lit.push('"'),
                Some(b'\\') => lit.push('\\'),
                Some(b'$') => lit.push('$'),
                Some(other) => {
                    lit.push('\\');
                    lit.push(other as char);
                }
                None => return Err(ParseError::new(start, "unterminated string")),
            },
            Some(b'$') => {
                let braced = cur.peek() == Some(b'{');
                if braced {
                    cur.bump();
                }
                let mut name = String::new();
                while cur.peek() == Some(b':') && cur.peek2() == Some(b':') {
                    cur.bump();
                    cur.bump();
                    name.push_str("::");
                }
                while cur.peek().map(is_word).unwrap_or(false) {
                    name.push(cur.bump().expect("peeked") as char);
                }
                if braced {
                    if cur.peek() == Some(b'}') {
                        cur.bump();
                    } else {
                        return Err(cur.err("expected '}' to close interpolation"));
                    }
                }
                if name.is_empty() {
                    // A lone '$' is literal.
                    lit.push('$');
                    if braced {
                        lit.push('{');
                    }
                } else {
                    if !lit.is_empty() {
                        parts.push(StrPart::Lit(std::mem::take(&mut lit)));
                    }
                    parts.push(StrPart::Var(name));
                }
            }
            Some(other) => lit.push(other as char),
            None => return Err(ParseError::new(start, "unterminated string")),
        }
    }
    if !lit.is_empty() || parts.is_empty() {
        parts.push(StrPart::Lit(lit));
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .filter(|t| *t != Token::Eof)
            .collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            toks("{ } [ ] ( ) : , ; => -> ~> = == != < > <= >= <| |>"),
            vec![
                Token::LBrace,
                Token::RBrace,
                Token::LBracket,
                Token::RBracket,
                Token::LParen,
                Token::RParen,
                Token::Colon,
                Token::Comma,
                Token::Semi,
                Token::FatArrow,
                Token::Arrow,
                Token::TildeArrow,
                Token::Assign,
                Token::EqEq,
                Token::NotEq,
                Token::Lt,
                Token::Gt,
                Token::Le,
                Token::Ge,
                Token::CollectStart,
                Token::CollectEnd,
            ]
        );
    }

    #[test]
    fn barewords_and_typenames() {
        assert_eq!(
            toks("package File apache::vhost Apache::Vhost"),
            vec![
                Token::Ident("package".into()),
                Token::TypeName("File".into()),
                Token::Ident("apache::vhost".into()),
                Token::TypeName("Apache::Vhost".into()),
            ]
        );
    }

    #[test]
    fn variables() {
        assert_eq!(
            toks("$x $foo_bar $::osfamily"),
            vec![
                Token::Var("x".into()),
                Token::Var("foo_bar".into()),
                Token::Var("::osfamily".into()),
            ]
        );
    }

    #[test]
    fn raw_strings() {
        assert_eq!(
            toks(r"'hello' 'a\'b'"),
            vec![Token::RawStr("hello".into()), Token::RawStr("a'b".into())]
        );
    }

    #[test]
    fn interpolated_strings() {
        let t = toks(r#""pre $x mid ${y} post""#);
        assert_eq!(
            t,
            vec![Token::Str(vec![
                StrPart::Lit("pre ".into()),
                StrPart::Var("x".into()),
                StrPart::Lit(" mid ".into()),
                StrPart::Var("y".into()),
                StrPart::Lit(" post".into()),
            ])]
        );
    }

    #[test]
    fn interpolation_with_topscope() {
        let t = toks(r#""${::osfamily}""#);
        assert_eq!(t, vec![Token::Str(vec![StrPart::Var("::osfamily".into())])]);
    }

    #[test]
    fn plain_double_quoted() {
        assert_eq!(
            toks(r#""syntax on""#),
            vec![Token::Str(vec![StrPart::Lit("syntax on".into())])]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("# comment\nfoo /* block\ncomment */ bar"),
            vec![Token::Ident("foo".into()), Token::Ident("bar".into())]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("0 42 755"),
            vec![Token::Int(0), Token::Int(42), Token::Int(755)]
        );
    }

    #[test]
    fn positions_reported() {
        let spanned = lex("foo\n  bar").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(lex("'oops").is_err());
        assert!(lex("\"oops").is_err());
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn errors_on_bad_chars() {
        assert!(lex("%%%").is_err());
        assert!(lex("$ x").is_err());
    }

    #[test]
    fn at_sign_for_virtual_resources() {
        assert_eq!(toks("@user"), vec![Token::At, Token::Ident("user".into())]);
    }

    #[test]
    fn hyphenated_words() {
        assert_eq!(
            toks("amavisd-new golang-go"),
            vec![
                Token::Ident("amavisd-new".into()),
                Token::Ident("golang-go".into()),
            ]
        );
    }

    #[test]
    fn arrow_after_bareword_without_space() {
        assert_eq!(
            toks("foo->bar"),
            vec![
                Token::Ident("foo".into()),
                Token::Arrow,
                Token::Ident("bar".into()),
            ]
        );
    }
}
