//! Runtime values produced by manifest evaluation.

use std::fmt;

/// A Puppet runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// `undef`.
    Undef,
    /// An array.
    Array(Vec<Value>),
    /// A hash (association list, insertion-ordered).
    Hash(Vec<(Value, Value)>),
    /// A resource reference: lower-cased type name and titles.
    Ref(String, Vec<String>),
}

impl Value {
    /// Puppet truthiness: only `false` and `undef` are false.
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Bool(false) | Value::Undef)
    }

    /// Coerces to a string the way Puppet interpolation does.
    pub fn coerce_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Undef => String::new(),
            Value::Array(items) => items
                .iter()
                .map(Value::coerce_string)
                .collect::<Vec<_>>()
                .join(" "),
            Value::Hash(_) => "{...}".to_string(),
            Value::Ref(t, titles) => format!("{}[{}]", capitalize(t), titles.join(", ")),
        }
    }

    /// Puppet `==`: string comparison is case-insensitive; other values are
    /// structural.
    pub fn puppet_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.eq_ignore_ascii_case(b),
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Int(a), Value::Str(b)) | (Value::Str(b), Value::Int(a)) => {
                b.parse::<i64>().map(|n| n == *a).unwrap_or(false)
            }
            (a, b) => a == b,
        }
    }

    /// Whether `self` is a member of `container` (Puppet `in`).
    pub fn contained_in(&self, container: &Value) -> bool {
        match container {
            Value::Array(items) => items.iter().any(|i| self.puppet_eq(i)),
            Value::Hash(items) => items.iter().any(|(k, _)| self.puppet_eq(k)),
            Value::Str(s) => {
                let needle = self.coerce_string().to_ascii_lowercase();
                s.to_ascii_lowercase().contains(&needle)
            }
            _ => false,
        }
    }
}

/// Capitalizes each `::`-separated segment (for resource-reference display).
pub fn capitalize(type_name: &str) -> String {
    type_name
        .split("::")
        .map(|seg| {
            let mut cs = seg.chars();
            match cs.next() {
                Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join("::")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Undef => write!(f, "undef"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Hash(items) => {
                write!(f, "{{")?;
                for (i, (k, v)) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} => {v}")?;
                }
                write!(f, "}}")
            }
            Value::Ref(t, titles) => {
                write!(f, "{}[{}]", capitalize(t), titles.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(Value::Str(String::new()).truthy(), "empty string is truthy");
        assert!(Value::Int(0).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Undef.truthy());
    }

    #[test]
    fn case_insensitive_string_eq() {
        assert!(Value::Str("Debian".into()).puppet_eq(&Value::Str("debian".into())));
        assert!(!Value::Str("Debian".into()).puppet_eq(&Value::Str("RedHat".into())));
    }

    #[test]
    fn int_string_eq() {
        assert!(Value::Int(80).puppet_eq(&Value::Str("80".into())));
    }

    #[test]
    fn in_operator() {
        let arr = Value::Array(vec![Value::Str("a".into()), Value::Str("b".into())]);
        assert!(Value::Str("A".into()).contained_in(&arr));
        assert!(!Value::Str("c".into()).contained_in(&arr));
        assert!(Value::Str("ell".into()).contained_in(&Value::Str("hello".into())));
    }

    #[test]
    fn coercion_and_display() {
        assert_eq!(Value::Int(42).coerce_string(), "42");
        assert_eq!(Value::Undef.coerce_string(), "");
        assert_eq!(
            Value::Ref("file".into(), vec!["/x".into()]).to_string(),
            "File[/x]"
        );
        assert_eq!(capitalize("apache::vhost"), "Apache::Vhost");
    }
}
