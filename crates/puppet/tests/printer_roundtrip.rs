//! Printer round-trip property: `parse(print(m)) == m` over seeded,
//! randomly generated manifests covering selectors, chained arrows,
//! collectors, and quoted/escaped attribute values.
//!
//! The generator produces ASTs from the *parser's image* (canonical
//! interpolation parts, no adjacent literal segments, reference type
//! names that lex as type tokens), which is exactly the domain on which
//! the printer promises identity. Divergences this suite originally
//! found — re-capitalized `ResourceRef` names (`FILE[...]`,
//! `Foo::Bar[...]`) and negative integer literals reparsing as
//! `0 - n` — are fixed and pinned by the directed tests at the bottom.
//!
//! Cases are sampled with a small in-file deterministic PRNG instead of
//! an external property-testing crate (the build environment is offline),
//! so every run covers the same seeded case set.

use rehearsal_puppet::ast::*;
use rehearsal_puppet::{parse, print_manifest, Span, StrPart};

/// Deterministic splitmix64 generator for test-case sampling.
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn pick<'a, T>(&mut self, pool: &'a [T]) -> &'a T {
        &pool[self.usize(pool.len())]
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 0
    }
}

const IDENTS: &[&str] = &["ensure", "content", "owner", "mode", "backup", "alias"];
const WORDS: &[&str] = &["present", "running", "file", "vim", "web01", "x"];
const VARS: &[&str] = &["osfamily", "name", "port", "x", "title"];
const REF_TYPES: &[&str] = &["File", "Package", "User", "Foo::Bar", "FILE", "Service"];
const RES_TYPES: &[&str] = &["file", "package", "user", "service", "cron"];
const CALLS: &[&str] = &["defined", "template", "lookup"];

/// Tricky literal strings: quotes, backslashes, newlines, interpolation
/// look-alikes — the "quoted/escaped attribute values" coverage.
const TRICKY: &[&str] = &[
    "plain",
    "it's",
    "back\\slash",
    "two\nlines",
    "tab\tin",
    "ends with \\",
    "quote'and\\both",
    "${not_interpolated}",
    "a \"double\" quote",
    "",
];

fn random_str(rng: &mut Prng) -> String {
    if rng.usize(3) == 0 {
        (*rng.pick(TRICKY)).to_string()
    } else {
        (*rng.pick(WORDS)).to_string()
    }
}

/// Canonical interpolated parts: no empty literals, no adjacent literals
/// (the lexer merges them, so non-canonical part lists cannot round-trip
/// and can never be produced by the parser).
fn random_interp(rng: &mut Prng) -> Expression {
    let mut parts = Vec::new();
    let n = rng.usize(4);
    let mut last_was_lit = false;
    for _ in 0..n {
        if !last_was_lit && rng.bool() {
            let lit = random_str(rng);
            if lit.is_empty() {
                continue;
            }
            parts.push(StrPart::Lit(lit));
            last_was_lit = true;
        } else {
            parts.push(StrPart::Var((*rng.pick(VARS)).to_string()));
            last_was_lit = false;
        }
    }
    if parts.is_empty() {
        // The lexer's canonical empty string is one empty literal part.
        parts.push(StrPart::Lit(String::new()));
    }
    Expression::Interp(parts)
}

fn random_ref(rng: &mut Prng, depth: usize) -> Expression {
    let n = 1 + rng.usize(2);
    let titles = (0..n).map(|_| random_value(rng, depth)).collect();
    Expression::ResourceRef((*rng.pick(REF_TYPES)).to_string(), titles)
}

fn random_value(rng: &mut Prng, depth: usize) -> Expression {
    if depth == 0 {
        return match rng.usize(5) {
            0 => Expression::Str(random_str(rng)),
            1 => Expression::Int(rng.next_u64() as i64 % 2000 - 1000),
            2 => Expression::Bool(rng.bool()),
            3 => Expression::Var((*rng.pick(VARS)).to_string()),
            _ => Expression::Undef,
        };
    }
    match rng.usize(12) {
        0 => Expression::Str(random_str(rng)),
        1 => random_interp(rng),
        2 => Expression::Int(rng.next_u64() as i64 % 2000 - 1000),
        3 => Expression::Bool(rng.bool()),
        4 => Expression::Var((*rng.pick(VARS)).to_string()),
        5 => {
            let n = rng.usize(3);
            Expression::Array((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
        6 => {
            let n = rng.usize(3);
            Expression::Hash(
                (0..n)
                    .map(|_| {
                        (
                            Expression::Str(random_str(rng)),
                            random_value(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
        7 => random_ref(rng, depth - 1),
        8 => {
            // Selector with optional trailing default arm.
            let scrutinee = Expression::Var((*rng.pick(VARS)).to_string());
            let mut arms: Vec<(Expression, Expression)> = (0..1 + rng.usize(3))
                .map(|_| {
                    (
                        Expression::Str(random_str(rng)),
                        random_value(rng, depth - 1),
                    )
                })
                .collect();
            if rng.bool() {
                arms.push((Expression::Default, random_value(rng, depth - 1)));
            }
            Expression::Selector(Box::new(scrutinee), arms)
        }
        9 => {
            let n = rng.usize(3);
            Expression::Call(
                (*rng.pick(CALLS)).to_string(),
                (0..n).map(|_| random_value(rng, depth - 1)).collect(),
            )
        }
        10 => {
            let a = Box::new(random_value(rng, depth - 1));
            let b = Box::new(random_value(rng, depth - 1));
            match rng.usize(4) {
                0 => Expression::And(a, b),
                1 => Expression::Or(a, b),
                2 => Expression::In(a, b),
                _ => Expression::Not(a),
            }
        }
        _ => {
            let a = Box::new(random_value(rng, depth - 1));
            let b = Box::new(random_value(rng, depth - 1));
            if rng.bool() {
                let op = *rng.pick(&[CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt][..]);
                Expression::Cmp(op, a, b)
            } else {
                let op = *rng.pick(&[ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div][..]);
                Expression::Arith(op, a, b)
            }
        }
    }
}

fn random_attrs(rng: &mut Prng, max: usize) -> Vec<Attribute> {
    let n = rng.usize(max + 1);
    (0..n)
        .map(|i| Attribute {
            name: IDENTS[(rng.usize(IDENTS.len()) + i) % IDENTS.len()].to_string(),
            value: random_value(rng, 2),
            span: Span::DUMMY,
        })
        .collect()
}

fn random_resource(rng: &mut Prng, virtual_allowed: bool) -> ResourceDecl {
    let bodies = (0..1 + rng.usize(2))
        .map(|_| {
            let title = match rng.usize(4) {
                0 => Expression::Array(
                    (0..1 + rng.usize(2))
                        .map(|_| Expression::Str(random_str(rng)))
                        .collect(),
                ),
                1 => Expression::Var((*rng.pick(VARS)).to_string()),
                _ => Expression::Str(random_str(rng)),
            };
            ResourceBody {
                title,
                attrs: random_attrs(rng, 3),
                span: Span::DUMMY,
                title_span: Span::DUMMY,
            }
        })
        .collect();
    ResourceDecl {
        type_name: (*rng.pick(RES_TYPES)).to_string(),
        bodies,
        virtual_: virtual_allowed && rng.usize(4) == 0,
        span: Span::DUMMY,
    }
}

fn random_query(rng: &mut Prng, depth: usize) -> Query {
    if depth == 0 || rng.usize(3) == 0 {
        let attr = (*rng.pick(IDENTS)).to_string();
        let value = Expression::Str(random_str(rng));
        return if rng.bool() {
            Query::Eq(attr, value)
        } else {
            Query::Ne(attr, value)
        };
    }
    let a = Box::new(random_query(rng, depth - 1));
    let b = Box::new(random_query(rng, depth - 1));
    if rng.bool() {
        Query::And(a, b)
    } else {
        Query::Or(a, b)
    }
}

fn random_collector(rng: &mut Prng) -> Collector {
    Collector {
        type_name: (*rng.pick(RES_TYPES)).to_string(),
        query: if rng.usize(4) == 0 {
            Query::All
        } else {
            random_query(rng, 2)
        },
        overrides: random_attrs(rng, 2),
    }
}

fn random_chain(rng: &mut Prng) -> ChainStatement {
    let n = 2 + rng.usize(2);
    let operands: Vec<ChainOperand> = (0..n)
        .map(|_| match rng.usize(4) {
            0 => ChainOperand::Resource(random_resource(rng, false)),
            1 => ChainOperand::Collector(random_collector(rng)),
            _ => {
                let k = 1 + rng.usize(2);
                ChainOperand::Refs((0..k).map(|_| random_ref(rng, 1)).collect())
            }
        })
        .collect();
    let arrows = (0..n - 1)
        .map(|_| {
            if rng.bool() {
                ArrowKind::Before
            } else {
                ArrowKind::Notify
            }
        })
        .collect();
    let arrow_spans = vec![Span::DUMMY; n - 1];
    ChainStatement {
        operands,
        arrows,
        arrow_spans,
    }
}

fn random_statement(rng: &mut Prng, depth: usize) -> Statement {
    random_statement_kind(rng, depth).into()
}

fn random_statement_kind(rng: &mut Prng, depth: usize) -> StatementKind {
    match rng.usize(if depth == 0 { 7 } else { 9 }) {
        0 => StatementKind::Resource(random_resource(rng, true)),
        1 => StatementKind::Chain(random_chain(rng)),
        2 => StatementKind::Collector(random_collector(rng)),
        3 => StatementKind::ResourceDefault(ResourceDefault {
            type_name: (*rng.pick(RES_TYPES)).to_string(),
            attrs: random_attrs(rng, 2),
        }),
        4 => StatementKind::Assign((*rng.pick(VARS)).to_string(), random_value(rng, 3)),
        5 => StatementKind::Include(vec!["base".to_string(), "web".to_string()]),
        6 => StatementKind::Call("fail".to_string(), vec![Expression::Str(random_str(rng))]),
        7 => {
            let mut arms: Vec<(Expression, Vec<Statement>)> = (0..1 + rng.usize(2))
                .map(|_| {
                    (
                        Expression::Cmp(
                            CmpOp::Eq,
                            Box::new(Expression::Var((*rng.pick(VARS)).to_string())),
                            Box::new(Expression::Str(random_str(rng))),
                        ),
                        random_body(rng, depth - 1),
                    )
                })
                .collect();
            if rng.bool() {
                arms.push((Expression::Bool(true), random_body(rng, depth - 1)));
            }
            StatementKind::If(arms)
        }
        _ => {
            let scrutinee = Expression::Var((*rng.pick(VARS)).to_string());
            let mut arms: Vec<CaseArm> = (0..1 + rng.usize(2))
                .map(|_| CaseArm {
                    values: (0..1 + rng.usize(2))
                        .map(|_| Expression::Str(random_str(rng)))
                        .collect(),
                    body: random_body(rng, depth - 1),
                })
                .collect();
            if rng.bool() {
                arms.push(CaseArm {
                    values: vec![Expression::Default],
                    body: random_body(rng, depth - 1),
                });
            }
            StatementKind::Case(scrutinee, arms)
        }
    }
}

fn random_body(rng: &mut Prng, depth: usize) -> Vec<Statement> {
    (0..rng.usize(3))
        .map(|_| random_statement(rng, depth))
        .collect()
}

fn assert_roundtrip(m: &Manifest) {
    let printed = print_manifest(m);
    let reparsed = parse(&printed).unwrap_or_else(|e| {
        panic!("printed manifest failed to parse: {e}\n--- source ---\n{printed}")
    });
    assert_eq!(
        *m, reparsed,
        "round-trip changed the AST\n--- printed ---\n{printed}"
    );
}

/// The headline property: 256 seeded manifests round-trip exactly.
#[test]
fn generated_manifests_roundtrip() {
    let mut rng = Prng::new(30);
    for case in 0..256 {
        let m = Manifest {
            statements: (0..1 + rng.usize(5))
                .map(|_| random_statement(&mut rng, 2))
                .collect(),
        };
        let printed = print_manifest(&m);
        let reparsed = parse(&printed).unwrap_or_else(|e| {
            panic!("case {case}: printed manifest failed to parse: {e}\n{printed}")
        });
        assert_eq!(m, reparsed, "case {case} changed the AST:\n{printed}");
    }
}

/// Double round-trip is stable: printing the reparse prints identically
/// (printer output is a fixed point of `print ∘ parse`).
#[test]
fn printing_is_a_fixed_point() {
    let mut rng = Prng::new(31);
    for _ in 0..64 {
        let m = Manifest {
            statements: (0..1 + rng.usize(4))
                .map(|_| random_statement(&mut rng, 2))
                .collect(),
        };
        let p1 = print_manifest(&m);
        let m2 = parse(&p1).expect("first reparse");
        let p2 = print_manifest(&m2);
        assert_eq!(p1, p2);
    }
}

// ---- directed regressions for the divergences the property found ----

/// `ResourceRef` type names round-trip verbatim: the printer used to
/// re-capitalize (`FILE` → `File`, `Foo::Bar` → `Foo::bar`), changing the
/// reparsed AST.
#[test]
fn resource_ref_casing_roundtrips() {
    for src in [
        "FILE['/x'] -> Package['vim']",
        "Foo::Bar['thing'] ~> File['/y']",
        "file { '/a': require => MyModule::Widget['w'] }",
    ] {
        let m1 = parse(src).unwrap();
        assert_roundtrip(&m1);
    }
}

/// Negative integer literals round-trip as literals: `-5` used to reparse
/// as `0 - 5`.
#[test]
fn negative_int_roundtrips() {
    let m = parse("$x = -5").unwrap();
    assert_eq!(
        m.statements[0].kind,
        StatementKind::Assign("x".to_string(), Expression::Int(-5))
    );
    assert_roundtrip(&m);
    // Unary minus on non-literals keeps the explicit subtraction shape.
    let m2 = parse("$y = -$x").unwrap();
    assert_roundtrip(&m2);
}

/// The escaped-value corner pool round-trips through attribute positions.
#[test]
fn tricky_strings_roundtrip_in_attributes() {
    for s in TRICKY {
        let m = Manifest {
            statements: vec![StatementKind::Resource(ResourceDecl {
                type_name: "file".to_string(),
                bodies: vec![ResourceBody {
                    title: Expression::Str("/t".to_string()),
                    attrs: vec![Attribute {
                        name: "content".to_string(),
                        value: Expression::Str((*s).to_string()),
                        span: Span::DUMMY,
                    }],
                    span: Span::DUMMY,
                    title_span: Span::DUMMY,
                }],
                virtual_: false,
                span: Span::DUMMY,
            })
            .into()],
        };
        assert_roundtrip(&m);
    }
}
