//! Robustness: the lexer/parser/evaluator never panic — they return
//! errors on malformed input.

use proptest::prelude::*;
use rehearsal_puppet::{evaluate, parse, print_manifest, Facts};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes never panic the pipeline.
    #[test]
    fn arbitrary_input_never_panics(src in "\\PC{0,200}") {
        if let Ok(manifest) = parse(&src) {
            // Whatever parses may still fail to evaluate — but not panic.
            let _ = evaluate(&manifest, &Facts::ubuntu());
        }
    }

    /// Puppet-looking fragments never panic either.
    #[test]
    fn puppet_shaped_input_never_panics(
        ty in "[a-z]{1,8}",
        title in "[a-zA-Z0-9/_.-]{0,20}",
        attr in "[a-z]{1,8}",
        value in "[a-zA-Z0-9/_. -]{0,20}",
    ) {
        let src = format!("{ty} {{ '{title}': {attr} => '{value}' }}");
        if let Ok(manifest) = parse(&src) {
            let _ = evaluate(&manifest, &Facts::ubuntu());
        }
    }

    /// Anything that parses round-trips through the printer.
    #[test]
    fn parsed_input_roundtrips(
        ty in "[a-z]{1,8}",
        title in "[a-zA-Z0-9_.-]{1,20}",
        attr in "[a-z]{1,8}",
        value in "[a-zA-Z0-9_. -]{0,20}",
    ) {
        let src = format!("{ty} {{ '{title}': {attr} => '{value}' }}");
        if let Ok(m1) = parse(&src) {
            let printed = print_manifest(&m1);
            let m2 = parse(&printed).expect("printer output parses");
            prop_assert_eq!(m1, m2);
        }
    }
}
