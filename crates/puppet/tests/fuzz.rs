//! Robustness: the lexer/parser/evaluator never panic — they return
//! errors on malformed input.
//!
//! Inputs are sampled with a small in-file deterministic PRNG instead of
//! an external property-testing crate (the build environment is offline),
//! so every run covers the same seeded case set.

use rehearsal_puppet::{evaluate, parse, print_manifest, Facts};

/// Deterministic splitmix64 generator for test-case sampling.
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// A random string of `len` characters drawn from `pool`.
    fn string_from(&mut self, pool: &[char], len: usize) -> String {
        (0..len).map(|_| pool[self.usize(pool.len())]).collect()
    }
}

/// Printable characters plus the punctuation Puppet sources actually use,
/// a stand-in for proptest's `\PC` class.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (' '..='~').collect();
    pool.extend("\n\t{}$=>'\"[]->!#λπ╳".chars());
    pool
}

fn pool_of(spec: &str) -> Vec<char> {
    spec.chars().collect()
}

/// Arbitrary printable text never panics the pipeline.
#[test]
fn arbitrary_input_never_panics() {
    let mut rng = Prng::new(20);
    let pool = printable_pool();
    for _ in 0..512 {
        let len = rng.usize(201);
        let src = rng.string_from(&pool, len);
        if let Ok(manifest) = parse(&src) {
            // Whatever parses may still fail to evaluate — but not panic.
            let _ = evaluate(&manifest, &Facts::ubuntu());
        }
    }
}

/// Puppet-looking fragments never panic either.
#[test]
fn puppet_shaped_input_never_panics() {
    let mut rng = Prng::new(21);
    let lower = pool_of("abcdefghijklmnopqrstuvwxyz");
    let title_pool = pool_of("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/_.-");
    let value_pool = pool_of("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/_. -");
    for _ in 0..512 {
        let ty_len = 1 + rng.usize(8);
        let ty = rng.string_from(&lower, ty_len);
        let title_len = rng.usize(21);
        let title = rng.string_from(&title_pool, title_len);
        let attr_len = 1 + rng.usize(8);
        let attr = rng.string_from(&lower, attr_len);
        let value_len = rng.usize(21);
        let value = rng.string_from(&value_pool, value_len);
        let src = format!("{ty} {{ '{title}': {attr} => '{value}' }}");
        if let Ok(manifest) = parse(&src) {
            let _ = evaluate(&manifest, &Facts::ubuntu());
        }
    }
}

/// Anything that parses round-trips through the printer.
#[test]
fn parsed_input_roundtrips() {
    let mut rng = Prng::new(22);
    let lower = pool_of("abcdefghijklmnopqrstuvwxyz");
    let title_pool = pool_of("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-");
    let value_pool = pool_of("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_. -");
    for _ in 0..512 {
        let ty_len = 1 + rng.usize(8);
        let ty = rng.string_from(&lower, ty_len);
        let title_len = 1 + rng.usize(20);
        let title = rng.string_from(&title_pool, title_len);
        let attr_len = 1 + rng.usize(8);
        let attr = rng.string_from(&lower, attr_len);
        let value_len = rng.usize(21);
        let value = rng.string_from(&value_pool, value_len);
        let src = format!("{ty} {{ '{title}': {attr} => '{value}' }}");
        if let Ok(m1) = parse(&src) {
            let printed = print_manifest(&m1);
            let m2 = parse(&printed).expect("printer output parses");
            assert_eq!(m1, m2);
        }
    }
}
