//! Property tests for the FS language: smart constructors preserve
//! semantics, evaluation is a function, and the semantics maintains
//! filesystem tree-consistency.

use proptest::prelude::*;
use rehearsal_fs::{
    enumerate_filesystems, eval, eval_pred, Content, Expr, FileState, FileSystem, FsPath, Pred,
};

fn paths() -> Vec<FsPath> {
    vec![
        FsPath::parse("/p0").unwrap(),
        FsPath::parse("/p0/q").unwrap(),
        FsPath::parse("/p1").unwrap(),
    ]
}

fn contents() -> Vec<Content> {
    vec![Content::intern("k1"), Content::intern("k2")]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let path = (0..3usize).prop_map(|i| paths()[i]);
    let leaf = prop_oneof![
        Just(Pred::True),
        Just(Pred::False),
        path.clone().prop_map(Pred::DoesNotExist),
        path.clone().prop_map(Pred::IsFile),
        path.clone().prop_map(Pred::IsDir),
        path.prop_map(Pred::IsEmptyDir),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Pred::Not(Box::new(a))),
        ]
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let path = (0..3usize).prop_map(|i| paths()[i]);
    let content = (0..2usize).prop_map(|i| contents()[i]);
    let leaf = prop_oneof![
        Just(Expr::Skip),
        Just(Expr::Error),
        path.clone().prop_map(Expr::Mkdir),
        (path.clone(), content).prop_map(|(p, c)| Expr::CreateFile(p, c)),
        path.clone().prop_map(Expr::Rm),
        (path.clone(), path.clone()).prop_map(|(a, b)| Expr::Cp(a, b)),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Seq(Box::new(a), Box::new(b))),
            (arb_pred(), inner.clone(), inner).prop_map(|(p, a, b)| Expr::If(
                p,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

/// A handful of representative states (full enumeration is too large for
/// per-case testing).
fn states() -> Vec<FileSystem> {
    let mut out = vec![FileSystem::new(), FileSystem::with_root()];
    let all = enumerate_filesystems(&paths(), &contents()[..1]);
    for (i, fs) in all.into_iter().enumerate() {
        if i % 7 == 0 {
            out.push(fs.set(FsPath::root(), FileState::Dir));
        }
    }
    out
}

fn consistent(fs: &FileSystem) -> bool {
    fs.iter().all(|(p, _)| match p.parent() {
        None => true,
        Some(parent) => fs.is_dir(parent),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The smart constructors (`seq`, `if_`, `and`, `or`, `not`) preserve
    /// semantics relative to the raw constructors.
    #[test]
    fn smart_constructors_preserve_semantics(a in arb_expr(), b in arb_expr(), p in arb_pred()) {
        for fs in states() {
            let smart_seq = a.clone().seq(b.clone());
            let raw_seq = Expr::Seq(Box::new(a.clone()), Box::new(b.clone()));
            prop_assert_eq!(eval(&smart_seq, &fs), eval(&raw_seq, &fs));

            let smart_if = Expr::if_(p.clone(), a.clone(), b.clone());
            let raw_if = Expr::If(p.clone(), Box::new(a.clone()), Box::new(b.clone()));
            prop_assert_eq!(eval(&smart_if, &fs), eval(&raw_if, &fs));
        }
    }

    /// Predicate smart constructors agree with raw connectives.
    #[test]
    fn pred_constructors_preserve_semantics(a in arb_pred(), b in arb_pred()) {
        for fs in states() {
            let smart = a.clone().and(b.clone());
            let raw = Pred::And(Box::new(a.clone()), Box::new(b.clone()));
            prop_assert_eq!(eval_pred(&smart, &fs), eval_pred(&raw, &fs));
            let smart = a.clone().or(b.clone());
            let raw = Pred::Or(Box::new(a.clone()), Box::new(b.clone()));
            prop_assert_eq!(eval_pred(&smart, &fs), eval_pred(&raw, &fs));
            let smart = a.clone().not();
            let raw = Pred::Not(Box::new(a.clone()));
            prop_assert_eq!(eval_pred(&smart, &fs), eval_pred(&raw, &fs));
        }
    }

    /// Evaluation preserves tree consistency: a consistent input never
    /// produces an inconsistent output.
    #[test]
    fn eval_preserves_consistency(e in arb_expr()) {
        for fs in states() {
            if !consistent(&fs) {
                continue;
            }
            if let Ok(out) = eval(&e, &fs) {
                prop_assert!(consistent(&out), "{} broke consistency: {}", e, out);
            }
        }
    }

    /// Evaluation never mutates its input (functional semantics).
    #[test]
    fn eval_is_pure(e in arb_expr()) {
        let fs = FileSystem::with_root();
        let snapshot = fs.clone();
        let _ = eval(&e, &fs);
        prop_assert_eq!(fs, snapshot);
    }

    /// `size` and `paths` are consistent under sequencing.
    #[test]
    fn structural_accessors(a in arb_expr(), b in arb_expr()) {
        let s = Expr::Seq(Box::new(a.clone()), Box::new(b.clone()));
        prop_assert_eq!(s.size(), 1 + a.size() + b.size());
        let mut union = a.paths();
        union.extend(b.paths());
        prop_assert_eq!(s.paths(), union);
    }
}
