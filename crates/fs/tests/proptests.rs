//! Property tests for the FS language: smart constructors preserve
//! semantics and satisfy the seed algebraic laws, hash-consing gives
//! structurally equal trees equal ids, evaluation is a function, and the
//! semantics maintains filesystem tree-consistency.
//!
//! Cases are sampled with a small in-file deterministic PRNG instead of an
//! external property-testing crate (the build environment is offline), so
//! every run covers the same seeded case set.

use rehearsal_fs::{
    enumerate_filesystems, eval, eval_pred, Content, Expr, ExprNode, FileState, FileSystem, FsPath,
    MetaField, Pred, PredNode,
};

/// Deterministic splitmix64 generator for test-case sampling.
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

fn paths() -> Vec<FsPath> {
    vec![
        FsPath::parse("/p0").unwrap(),
        FsPath::parse("/p0/q").unwrap(),
        FsPath::parse("/p1").unwrap(),
    ]
}

fn contents() -> Vec<Content> {
    vec![Content::intern("k1"), Content::intern("k2")]
}

fn random_path(rng: &mut Prng) -> FsPath {
    paths()[rng.usize(3)]
}

fn random_content(rng: &mut Prng) -> Content {
    contents()[rng.usize(2)]
}

fn random_meta_field(rng: &mut Prng) -> MetaField {
    MetaField::ALL[rng.usize(3)]
}

fn random_meta_value(rng: &mut Prng) -> Content {
    let pool = ["root", "carol", "0644", "0755"];
    Content::intern(pool[rng.usize(pool.len())])
}

fn random_pred(rng: &mut Prng, depth: usize) -> Pred {
    if depth == 0 || rng.usize(3) == 0 {
        return match rng.usize(7) {
            0 => Pred::TRUE,
            1 => Pred::FALSE,
            2 => Pred::does_not_exist(random_path(rng)),
            3 => Pred::is_file(random_path(rng)),
            4 => Pred::is_dir(random_path(rng)),
            5 => Pred::meta_is(
                random_path(rng),
                random_meta_field(rng),
                random_meta_value(rng),
            ),
            _ => Pred::is_empty_dir(random_path(rng)),
        };
    }
    match rng.usize(3) {
        0 => Pred::intern(PredNode::And(
            random_pred(rng, depth - 1),
            random_pred(rng, depth - 1),
        )),
        1 => Pred::intern(PredNode::Or(
            random_pred(rng, depth - 1),
            random_pred(rng, depth - 1),
        )),
        _ => Pred::intern(PredNode::Not(random_pred(rng, depth - 1))),
    }
}

fn random_expr(rng: &mut Prng, depth: usize) -> Expr {
    if depth == 0 || rng.usize(3) == 0 {
        return match rng.usize(7) {
            0 => Expr::SKIP,
            1 => Expr::ERROR,
            2 => Expr::mkdir(random_path(rng)),
            3 => Expr::create_file(random_path(rng), random_content(rng)),
            4 => Expr::rm(random_path(rng)),
            5 => Expr::chmeta(
                random_path(rng),
                random_meta_field(rng),
                random_meta_value(rng),
            ),
            _ => Expr::cp(random_path(rng), random_path(rng)),
        };
    }
    match rng.usize(2) {
        0 => Expr::intern(ExprNode::Seq(
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1),
        )),
        _ => Expr::intern(ExprNode::If(
            random_pred(rng, 3),
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1),
        )),
    }
}

/// A handful of representative states (full enumeration is too large for
/// per-case testing).
fn states() -> Vec<FileSystem> {
    let mut out = vec![FileSystem::new(), FileSystem::with_root()];
    let all = enumerate_filesystems(&paths(), &contents()[..1]);
    for (i, fs) in all.into_iter().enumerate() {
        if i % 7 == 0 {
            out.push(fs.set(FsPath::root(), FileState::DIR));
        }
    }
    out
}

fn consistent(fs: &FileSystem) -> bool {
    fs.iter().all(|(p, _)| match p.parent() {
        None => true,
        Some(parent) => fs.is_dir(parent),
    })
}

/// The smart constructors (`seq`, `if_`, `and`, `or`, `not`) preserve
/// semantics relative to the raw (intern-only) constructors.
#[test]
fn smart_constructors_preserve_semantics() {
    let mut rng = Prng::new(10);
    for _ in 0..256 {
        let a = random_expr(&mut rng, 4);
        let b = random_expr(&mut rng, 4);
        let p = random_pred(&mut rng, 3);
        for fs in states() {
            let smart_seq = a.seq(b);
            let raw_seq = Expr::intern(ExprNode::Seq(a, b));
            assert_eq!(eval(smart_seq, &fs), eval(raw_seq, &fs));

            let smart_if = Expr::if_(p, a, b);
            let raw_if = Expr::intern(ExprNode::If(p, a, b));
            assert_eq!(eval(smart_if, &fs), eval(raw_if, &fs));
        }
    }
}

/// Predicate smart constructors agree with raw connectives.
#[test]
fn pred_constructors_preserve_semantics() {
    let mut rng = Prng::new(11);
    for _ in 0..256 {
        let a = random_pred(&mut rng, 3);
        let b = random_pred(&mut rng, 3);
        for fs in states() {
            let smart = a.and(b);
            let raw = Pred::intern(PredNode::And(a, b));
            assert_eq!(eval_pred(smart, &fs), eval_pred(raw, &fs));
            let smart = a.or(b);
            let raw = Pred::intern(PredNode::Or(a, b));
            assert_eq!(eval_pred(smart, &fs), eval_pred(raw, &fs));
            let smart = a.not();
            let raw = Pred::intern(PredNode::Not(a));
            assert_eq!(eval_pred(smart, &fs), eval_pred(raw, &fs));
        }
    }
}

/// Builds predicates through the *smart* connectives only, so the
/// double-negation law below can demand structural (id) equality — a raw
/// `Not(True)` node would legitimately fold away, as in the seed IR.
fn random_smart_pred(rng: &mut Prng, depth: usize) -> Pred {
    if depth == 0 || rng.usize(3) == 0 {
        return random_pred(rng, 0);
    }
    match rng.usize(3) {
        0 => random_smart_pred(rng, depth - 1).and(random_smart_pred(rng, depth - 1)),
        1 => random_smart_pred(rng, depth - 1).or(random_smart_pred(rng, depth - 1)),
        _ => random_smart_pred(rng, depth - 1).not(),
    }
}

/// The seed Box-IR algebraic laws hold *structurally* on handles: the
/// smart constructors fold `Skip;e ≡ e`, `if true e1 e2 ≡ e1`, constant
/// connectives, and double negation to the very same arena node.
#[test]
fn smart_constructor_algebraic_laws() {
    let mut rng = Prng::new(15);
    for _ in 0..256 {
        let e1 = random_expr(&mut rng, 4);
        let e2 = random_expr(&mut rng, 4);
        let p = random_smart_pred(&mut rng, 3);
        // Sequencing unit and absorber.
        assert_eq!(Expr::SKIP.seq(e1), e1, "Skip;e ≡ e");
        assert_eq!(e1.seq(Expr::SKIP), e1, "e;Skip ≡ e");
        assert_eq!(Expr::ERROR.seq(e1), Expr::ERROR, "Error;e ≡ Error");
        // Conditional folding.
        assert_eq!(Expr::if_(Pred::TRUE, e1, e2), e1, "if true e1 e2 ≡ e1");
        assert_eq!(Expr::if_(Pred::FALSE, e1, e2), e2, "if false e1 e2 ≡ e2");
        assert_eq!(Expr::if_(p, e1, e1), e1, "equal branches collapse");
        // Boolean constant folding and double negation.
        assert_eq!(Pred::TRUE.and(p), p);
        assert_eq!(p.and(Pred::TRUE), p);
        assert_eq!(Pred::FALSE.and(p), Pred::FALSE);
        assert_eq!(Pred::TRUE.or(p), Pred::TRUE);
        assert_eq!(Pred::FALSE.or(p), p);
        assert_eq!(p.not().not(), p, "¬¬p ≡ p structurally");
    }
}

/// De Morgan duals are semantically equivalent (the constructors do not
/// rewrite them structurally, matching the seed IR, but the semantics must
/// agree on every state).
#[test]
fn de_morgan_laws_hold_semantically() {
    let mut rng = Prng::new(16);
    for _ in 0..128 {
        let a = random_pred(&mut rng, 3);
        let b = random_pred(&mut rng, 3);
        let not_and = a.and(b).not();
        let or_nots = a.not().or(b.not());
        let not_or = a.or(b).not();
        let and_nots = a.not().and(b.not());
        for fs in states() {
            assert_eq!(
                eval_pred(not_and, &fs),
                eval_pred(or_nots, &fs),
                "¬(a∧b) ≡ ¬a∨¬b on {fs}"
            );
            assert_eq!(
                eval_pred(not_or, &fs),
                eval_pred(and_nots, &fs),
                "¬(a∨b) ≡ ¬a∧¬b on {fs}"
            );
        }
    }
}

/// Hash-consing: rebuilding a structurally identical tree from scratch
/// always yields the identical handle, for both raw interning and smart
/// construction.
#[test]
fn structurally_equal_trees_get_equal_ids() {
    for seed in [21u64, 22, 23, 24] {
        let mut rng1 = Prng::new(seed);
        let mut rng2 = Prng::new(seed);
        for _ in 0..128 {
            let e1 = random_expr(&mut rng1, 5);
            let e2 = random_expr(&mut rng2, 5);
            assert_eq!(e1, e2, "same construction sequence, same id");
            assert_eq!(e1.index(), e2.index());
            let p1 = random_pred(&mut rng1, 4);
            let p2 = random_pred(&mut rng2, 4);
            assert_eq!(p1, p2);
        }
    }
}

/// Evaluation preserves tree consistency: a consistent input never
/// produces an inconsistent output.
#[test]
fn eval_preserves_consistency() {
    let mut rng = Prng::new(12);
    for _ in 0..256 {
        let e = random_expr(&mut rng, 4);
        for fs in states() {
            if !consistent(&fs) {
                continue;
            }
            if let Ok(out) = eval(e, &fs) {
                assert!(consistent(&out), "{e} broke consistency: {out}");
            }
        }
    }
}

/// Evaluation never mutates its input (functional semantics).
#[test]
fn eval_is_pure() {
    let mut rng = Prng::new(13);
    for _ in 0..256 {
        let e = random_expr(&mut rng, 4);
        let fs = FileSystem::with_root();
        let snapshot = fs.clone();
        let _ = eval(e, &fs);
        assert_eq!(fs, snapshot);
    }
}

/// `size` and `paths` are consistent under sequencing, and the memoized
/// path sets are shared allocations.
#[test]
fn structural_accessors() {
    let mut rng = Prng::new(14);
    for _ in 0..256 {
        let a = random_expr(&mut rng, 4);
        let b = random_expr(&mut rng, 4);
        let s = Expr::intern(ExprNode::Seq(a, b));
        assert_eq!(s.size(), 1 + a.size() + b.size());
        let mut union = (*a.paths()).clone();
        union.extend(b.paths().iter().copied());
        assert_eq!(*s.paths(), union);
        assert!(
            std::sync::Arc::ptr_eq(&s.paths(), &s.paths()),
            "path sets are cached per node"
        );
    }
}
