//! Property tests for the FS language: smart constructors preserve
//! semantics, evaluation is a function, and the semantics maintains
//! filesystem tree-consistency.
//!
//! Cases are sampled with a small in-file deterministic PRNG instead of an
//! external property-testing crate (the build environment is offline), so
//! every run covers the same seeded case set.

use rehearsal_fs::{
    enumerate_filesystems, eval, eval_pred, Content, Expr, FileState, FileSystem, FsPath, Pred,
};

/// Deterministic splitmix64 generator for test-case sampling.
struct Prng(u64);

impl Prng {
    fn new(seed: u64) -> Prng {
        Prng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

fn paths() -> Vec<FsPath> {
    vec![
        FsPath::parse("/p0").unwrap(),
        FsPath::parse("/p0/q").unwrap(),
        FsPath::parse("/p1").unwrap(),
    ]
}

fn contents() -> Vec<Content> {
    vec![Content::intern("k1"), Content::intern("k2")]
}

fn random_path(rng: &mut Prng) -> FsPath {
    paths()[rng.usize(3)]
}

fn random_content(rng: &mut Prng) -> Content {
    contents()[rng.usize(2)]
}

fn random_pred(rng: &mut Prng, depth: usize) -> Pred {
    if depth == 0 || rng.usize(3) == 0 {
        return match rng.usize(6) {
            0 => Pred::True,
            1 => Pred::False,
            2 => Pred::DoesNotExist(random_path(rng)),
            3 => Pred::IsFile(random_path(rng)),
            4 => Pred::IsDir(random_path(rng)),
            _ => Pred::IsEmptyDir(random_path(rng)),
        };
    }
    match rng.usize(3) {
        0 => Pred::And(
            Box::new(random_pred(rng, depth - 1)),
            Box::new(random_pred(rng, depth - 1)),
        ),
        1 => Pred::Or(
            Box::new(random_pred(rng, depth - 1)),
            Box::new(random_pred(rng, depth - 1)),
        ),
        _ => Pred::Not(Box::new(random_pred(rng, depth - 1))),
    }
}

fn random_expr(rng: &mut Prng, depth: usize) -> Expr {
    if depth == 0 || rng.usize(3) == 0 {
        return match rng.usize(6) {
            0 => Expr::Skip,
            1 => Expr::Error,
            2 => Expr::Mkdir(random_path(rng)),
            3 => Expr::CreateFile(random_path(rng), random_content(rng)),
            4 => Expr::Rm(random_path(rng)),
            _ => Expr::Cp(random_path(rng), random_path(rng)),
        };
    }
    match rng.usize(2) {
        0 => Expr::Seq(
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        _ => Expr::If(
            random_pred(rng, 3),
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
    }
}

/// A handful of representative states (full enumeration is too large for
/// per-case testing).
fn states() -> Vec<FileSystem> {
    let mut out = vec![FileSystem::new(), FileSystem::with_root()];
    let all = enumerate_filesystems(&paths(), &contents()[..1]);
    for (i, fs) in all.into_iter().enumerate() {
        if i % 7 == 0 {
            out.push(fs.set(FsPath::root(), FileState::Dir));
        }
    }
    out
}

fn consistent(fs: &FileSystem) -> bool {
    fs.iter().all(|(p, _)| match p.parent() {
        None => true,
        Some(parent) => fs.is_dir(parent),
    })
}

/// The smart constructors (`seq`, `if_`, `and`, `or`, `not`) preserve
/// semantics relative to the raw constructors.
#[test]
fn smart_constructors_preserve_semantics() {
    let mut rng = Prng::new(10);
    for _ in 0..256 {
        let a = random_expr(&mut rng, 4);
        let b = random_expr(&mut rng, 4);
        let p = random_pred(&mut rng, 3);
        for fs in states() {
            let smart_seq = a.clone().seq(b.clone());
            let raw_seq = Expr::Seq(Box::new(a.clone()), Box::new(b.clone()));
            assert_eq!(eval(&smart_seq, &fs), eval(&raw_seq, &fs));

            let smart_if = Expr::if_(p.clone(), a.clone(), b.clone());
            let raw_if = Expr::If(p.clone(), Box::new(a.clone()), Box::new(b.clone()));
            assert_eq!(eval(&smart_if, &fs), eval(&raw_if, &fs));
        }
    }
}

/// Predicate smart constructors agree with raw connectives.
#[test]
fn pred_constructors_preserve_semantics() {
    let mut rng = Prng::new(11);
    for _ in 0..256 {
        let a = random_pred(&mut rng, 3);
        let b = random_pred(&mut rng, 3);
        for fs in states() {
            let smart = a.clone().and(b.clone());
            let raw = Pred::And(Box::new(a.clone()), Box::new(b.clone()));
            assert_eq!(eval_pred(&smart, &fs), eval_pred(&raw, &fs));
            let smart = a.clone().or(b.clone());
            let raw = Pred::Or(Box::new(a.clone()), Box::new(b.clone()));
            assert_eq!(eval_pred(&smart, &fs), eval_pred(&raw, &fs));
            let smart = a.clone().not();
            let raw = Pred::Not(Box::new(a.clone()));
            assert_eq!(eval_pred(&smart, &fs), eval_pred(&raw, &fs));
        }
    }
}

/// Evaluation preserves tree consistency: a consistent input never
/// produces an inconsistent output.
#[test]
fn eval_preserves_consistency() {
    let mut rng = Prng::new(12);
    for _ in 0..256 {
        let e = random_expr(&mut rng, 4);
        for fs in states() {
            if !consistent(&fs) {
                continue;
            }
            if let Ok(out) = eval(&e, &fs) {
                assert!(consistent(&out), "{e} broke consistency: {out}");
            }
        }
    }
}

/// Evaluation never mutates its input (functional semantics).
#[test]
fn eval_is_pure() {
    let mut rng = Prng::new(13);
    for _ in 0..256 {
        let e = random_expr(&mut rng, 4);
        let fs = FileSystem::with_root();
        let snapshot = fs.clone();
        let _ = eval(&e, &fs);
        assert_eq!(fs, snapshot);
    }
}

/// `size` and `paths` are consistent under sequencing.
#[test]
fn structural_accessors() {
    let mut rng = Prng::new(14);
    for _ in 0..256 {
        let a = random_expr(&mut rng, 4);
        let b = random_expr(&mut rng, 4);
        let s = Expr::Seq(Box::new(a.clone()), Box::new(b.clone()));
        assert_eq!(s.size(), 1 + a.size() + b.size());
        let mut union = a.paths();
        union.extend(b.paths());
        assert_eq!(s.paths(), union);
    }
}
