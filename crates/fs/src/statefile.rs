//! A simple textual format for filesystem states, used by the CLI's
//! simulation mode to load initial machine states and print results.
//!
//! ```text
//! # comment
//! /etc          dir
//! /etc/hosts    file 127.0.0.1 localhost
//! ```
//!
//! One entry per line: an absolute path, whitespace, `dir` or
//! `file <content…>` (content runs to end of line; `\n` and `\\` escapes).

use crate::path::{Content, FsPath};
use crate::state::{FileState, FileSystem};
use std::fmt;

/// An error from [`parse_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateParseError {
    line: usize,
    message: String,
}

impl StateParseError {
    /// 1-based line of the malformed entry.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for StateParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for StateParseError {}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
}

/// Parses a state file.
///
/// # Errors
///
/// Returns [`StateParseError`] on malformed lines or paths.
pub fn parse_state(text: &str) -> Result<FileSystem, StateParseError> {
    let mut fs = FileSystem::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| StateParseError {
            line: i + 1,
            message,
        };
        let (path_text, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err("expected '<path> dir' or '<path> file <content>'".into()))?;
        let path = FsPath::parse(path_text).map_err(|e| err(e.to_string()))?;
        let rest = rest.trim_start();
        if rest == "dir" {
            fs.insert(path, FileState::Dir);
        } else if let Some(content) = rest.strip_prefix("file") {
            let content = content.strip_prefix(' ').unwrap_or(content);
            fs.insert(path, FileState::File(Content::intern(&unescape(content))));
        } else {
            return Err(err(format!("expected 'dir' or 'file …', found {rest:?}")));
        }
    }
    Ok(fs)
}

/// Renders a filesystem in the state-file format ([`parse_state`] inverse).
pub fn render_state(fs: &FileSystem) -> String {
    let mut out = String::new();
    for (p, s) in fs.iter() {
        match s {
            FileState::Dir => out.push_str(&format!("{p}\tdir\n")),
            FileState::File(c) => {
                out.push_str(&format!("{p}\tfile {}\n", escape(&c.as_string())));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn parse_basic() {
        let fs =
            parse_state("# machine state\n/ dir\n/etc dir\n/etc/hosts file 127.0.0.1\n").unwrap();
        assert!(fs.is_dir(p("/etc")));
        assert_eq!(
            fs.get(p("/etc/hosts")),
            Some(FileState::File(Content::intern("127.0.0.1")))
        );
    }

    #[test]
    fn roundtrip() {
        let fs = FileSystem::with_root()
            .set(p("/a"), FileState::Dir)
            .set(p("/a/f"), FileState::File(Content::intern("two\nlines")));
        let text = render_state(&fs);
        let back = parse_state(&text).unwrap();
        assert_eq!(fs, back);
    }

    #[test]
    fn empty_file_content() {
        let fs = parse_state("/f file\n").unwrap();
        assert_eq!(fs.get(p("/f")), Some(FileState::File(Content::intern(""))));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_state("/ dir\nrelative dir\n").unwrap_err();
        assert_eq!(e.line(), 2);
        let e = parse_state("/x blob\n").unwrap_err();
        assert!(e.to_string().contains("expected 'dir' or 'file"));
        let e = parse_state("/lonely\n").unwrap_err();
        assert_eq!(e.line(), 1);
    }
}
