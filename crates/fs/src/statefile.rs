//! A simple textual format for filesystem states, used by the CLI's
//! simulation mode to load initial machine states and print results.
//!
//! ```text
//! # comment
//! /etc          dir
//! /etc/hosts    file 127.0.0.1 localhost
//! /var/www      dir[owner=www-data,mode=0755]
//! ```
//!
//! One entry per line: an absolute path, whitespace, `dir` or
//! `file <content…>` (content runs to end of line; `\n` and `\\` escapes).
//! Managed metadata renders as a bracketed `[owner=…,group=…,mode=…]`
//! suffix on the kind keyword (fields are optional; unmanaged fields are
//! simply omitted). Metadata values escape the syntax-significant
//! characters — `\\` (backslash), `\c` (comma), `\b` (`]`), `\s` (space),
//! `\t`, `\n` — so any value round-trips.

use crate::meta::{Meta, MetaField, MetaValue};
use crate::path::{Content, FsPath};
use crate::state::{FileState, FileSystem};
use std::fmt;

/// An error from [`parse_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateParseError {
    line: usize,
    message: String,
}

impl StateParseError {
    /// 1-based line of the malformed entry.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for StateParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for StateParseError {}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
}

/// Parses a state file.
///
/// # Errors
///
/// Returns [`StateParseError`] on malformed lines or paths.
pub fn parse_state(text: &str) -> Result<FileSystem, StateParseError> {
    let mut fs = FileSystem::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| StateParseError {
            line: i + 1,
            message,
        };
        let (path_text, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err("expected '<path> dir' or '<path> file <content>'".into()))?;
        let path = FsPath::parse(path_text).map_err(|e| err(e.to_string()))?;
        let rest = rest.trim_start();
        let (kind, rest) = match rest.split_once(char::is_whitespace) {
            Some((kind, tail)) => (kind, tail),
            None => (rest, ""),
        };
        let (kind, meta) = match kind.split_once('[') {
            Some((bare, bracketed)) => {
                let body = bracketed
                    .strip_suffix(']')
                    .ok_or_else(|| err(format!("unterminated metadata in {kind:?}")))?;
                (bare, parse_meta(body).map_err(err)?)
            }
            None => (kind, Meta::UNMANAGED),
        };
        match kind {
            "dir" if rest.trim().is_empty() => {
                fs.insert(path, FileState::Dir(meta));
            }
            "dir" => {
                return Err(err(format!("unexpected text after 'dir': {rest:?}")));
            }
            "file" => {
                // `split_once` already consumed the single separator space;
                // the remainder is the content verbatim.
                fs.insert(
                    path,
                    FileState::File(Content::intern(&unescape(rest)), meta),
                );
            }
            other => {
                return Err(err(format!("expected 'dir' or 'file …', found {other:?}")));
            }
        }
    }
    Ok(fs)
}

/// Escapes one metadata value for the bracketed syntax. The kind token
/// runs to the first raw whitespace and the body to the closing raw `]`,
/// with `,` separating fields — so those characters (plus the escape
/// character itself) must never appear raw in a value.
fn escape_meta_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ',' => out.push_str("\\c"),
            ']' => out.push_str("\\b"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape_meta_value`].
fn unescape_meta_value(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('c') => out.push(','),
            Some('b') => out.push(']'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => return Err(format!("unknown metadata escape '\\{other}'")),
            None => return Err("dangling '\\' in metadata value".to_string()),
        }
    }
    Ok(out)
}

/// Parses the bracketed `owner=…,group=…,mode=…` body (values escaped per
/// [`escape_meta_value`]; a raw `,` never occurs inside a value, so the
/// field split below is exact).
fn parse_meta(body: &str) -> Result<Meta, String> {
    let mut meta = Meta::UNMANAGED;
    for part in body.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("expected 'field=value' in metadata, found {part:?}"))?;
        let field = match key {
            "owner" => MetaField::Owner,
            "group" => MetaField::Group,
            "mode" => MetaField::Mode,
            other => return Err(format!("unknown metadata field {other:?}")),
        };
        meta = meta.with(field, Content::intern(&unescape_meta_value(value)?));
    }
    Ok(meta)
}

/// Renders the bracketed metadata suffix (empty for unmanaged).
fn render_meta(meta: Meta) -> String {
    if meta.is_unmanaged() {
        return String::new();
    }
    let fields: Vec<String> = MetaField::ALL
        .into_iter()
        .filter_map(|f| match meta.get(f) {
            MetaValue::Set(v) => Some(format!("{f}={}", escape_meta_value(&v.as_string()))),
            MetaValue::Unmanaged => None,
        })
        .collect();
    format!("[{}]", fields.join(","))
}

/// Renders a filesystem in the state-file format ([`parse_state`] inverse).
pub fn render_state(fs: &FileSystem) -> String {
    let mut out = String::new();
    for (p, s) in fs.iter() {
        let meta = render_meta(s.meta());
        match s {
            FileState::Dir(_) => out.push_str(&format!("{p}\tdir{meta}\n")),
            FileState::File(c, _) => {
                out.push_str(&format!("{p}\tfile{meta} {}\n", escape(&c.as_string())));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn parse_basic() {
        let fs =
            parse_state("# machine state\n/ dir\n/etc dir\n/etc/hosts file 127.0.0.1\n").unwrap();
        assert!(fs.is_dir(p("/etc")));
        assert_eq!(
            fs.get(p("/etc/hosts")),
            Some(FileState::file(Content::intern("127.0.0.1")))
        );
    }

    #[test]
    fn roundtrip() {
        let fs = FileSystem::with_root()
            .set(p("/a"), FileState::DIR)
            .set(p("/a/f"), FileState::file(Content::intern("two\nlines")));
        let text = render_state(&fs);
        let back = parse_state(&text).unwrap();
        assert_eq!(fs, back);
    }

    #[test]
    fn empty_file_content() {
        let fs = parse_state("/f file\n").unwrap();
        assert_eq!(fs.get(p("/f")), Some(FileState::file(Content::intern(""))));
    }

    #[test]
    fn metadata_roundtrips() {
        let meta = Meta::UNMANAGED
            .with(MetaField::Owner, Content::intern("www-data"))
            .with(MetaField::Mode, Content::intern("0755"));
        let fs = FileSystem::with_root()
            .set(p("/var"), FileState::Dir(meta))
            .set(
                p("/var/index"),
                FileState::File(Content::intern("hello world"), meta),
            );
        let text = render_state(&fs);
        assert!(text.contains("dir[owner=www-data,mode=0755]"), "{text}");
        let back = parse_state(&text).unwrap();
        assert_eq!(fs, back);
    }

    #[test]
    fn metadata_parse_errors() {
        assert!(parse_state("/d dir[owner=root\n").is_err(), "unterminated");
        assert!(parse_state("/d dir[size=big]\n").is_err(), "unknown field");
        assert!(parse_state("/d dir[owner]\n").is_err(), "missing value");
        assert!(
            parse_state("/d dir[owner=a\\]\n").is_err(),
            "dangling escape"
        );
        assert!(parse_state("/d dir[owner=a\\z]\n").is_err(), "bad escape");
    }

    #[test]
    fn tricky_metadata_values_roundtrip() {
        // Values containing every syntax-significant character must
        // render to something parse_state reads back exactly.
        for v in ["domain users", "a,b", "x]y", "back\\slash", "t\tab", "=eq="] {
            let meta = Meta::UNMANAGED.with(MetaField::Owner, Content::intern(v));
            let fs = FileSystem::with_root()
                .set(p("/d"), FileState::Dir(meta))
                .set(p("/d/f"), FileState::File(Content::intern("c"), meta));
            let text = render_state(&fs);
            let back = parse_state(&text).unwrap_or_else(|e| panic!("{v:?}: {e}\n{text}"));
            assert_eq!(fs, back, "value {v:?} must roundtrip:\n{text}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_state("/ dir\nrelative dir\n").unwrap_err();
        assert_eq!(e.line(), 2);
        let e = parse_state("/x blob\n").unwrap_err();
        assert!(e.to_string().contains("expected 'dir' or 'file"));
        let e = parse_state("/lonely\n").unwrap_err();
        assert_eq!(e.line(), 1);
    }
}
