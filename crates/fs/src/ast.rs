//! The FS language (paper fig. 5): a loop-free imperative language of
//! filesystem operations.
//!
//! Expressions denote partial functions from filesystems to filesystems;
//! predicates denote filesystem observations. Resources compiled from Puppet
//! manifests are FS programs, and all of Rehearsal's analyses operate on
//! this language.
//!
//! # Representation
//!
//! [`Pred`] and [`Expr`] are `Copy`-able handles into the process-global
//! hash-consing arena of [`crate::arena`]: structurally identical trees are
//! interned once and get the same handle, so `==` on handles is O(1)
//! structural equality and subtree facts ([`Expr::paths`], [`Expr::size`],
//! …) are memoized per node. Inspect structure through [`Pred::node`] /
//! [`Expr::node`], which return the [`PredNode`] / [`ExprNode`] one level
//! deep with child *handles* in place of the old boxed subtrees.

use crate::arena;
use crate::meta::MetaField;
use crate::path::{Content, FsPath};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A handle to a hash-consed predicate over filesystem states (paper
/// fig. 5).
///
/// Handles are `Copy` and equality on them is O(1) *structural* equality:
/// two predicates built the same way are the same handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(u32);

/// The canonical name for [`PredId`] used throughout the codebase.
pub type Pred = PredId;

/// A handle to a hash-consed FS expression (paper fig. 5).
///
/// Handles are `Copy` and equality on them is O(1) structural equality.
///
/// # Examples
///
/// ```
/// use rehearsal_fs::{Expr, FsPath, Content, Pred};
/// let vimrc = FsPath::parse("/home/carol/.vimrc")?;
/// let e = Expr::if_(
///     Pred::is_dir(vimrc.parent().unwrap()),
///     Expr::create_file(vimrc, Content::intern("syntax on")),
///     Expr::ERROR,
/// );
/// assert!(e.paths().contains(&vimrc));
/// # Ok::<(), rehearsal_fs::ParsePathError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(u32);

/// The canonical name for [`ExprId`] used throughout the codebase.
pub type Expr = ExprId;

/// One level of predicate structure, with child handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredNode {
    /// Always true.
    True,
    /// Always false.
    False,
    /// `none?(p)` — the path does not exist.
    DoesNotExist(FsPath),
    /// `file?(p)` — the path is a regular file.
    IsFile(FsPath),
    /// `dir?(p)` — the path is a directory.
    IsDir(FsPath),
    /// `emptydir?(p)` — the path is a directory with no children.
    IsEmptyDir(FsPath),
    /// `meta_is(p, field, v)` — the path exists and its metadata `field`
    /// is managed to exactly `v`. False when the path is absent or the
    /// field is unmanaged.
    MetaIs(FsPath, MetaField, Content),
    /// Conjunction.
    And(Pred, Pred),
    /// Disjunction.
    Or(Pred, Pred),
    /// Negation.
    Not(Pred),
}

/// One level of expression structure, with child handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprNode {
    /// `id` — no-op.
    Skip,
    /// `err` — halt with an error.
    Error,
    /// `mkdir(p)` — create a directory; the parent must be a directory and
    /// `p` must not exist.
    Mkdir(FsPath),
    /// `creat(p, c)` — create a file with content `c`; the parent must be a
    /// directory and `p` must not exist.
    CreateFile(FsPath, Content),
    /// `rm(p)` — remove a file or empty directory.
    Rm(FsPath),
    /// `cp(src, dst)` — copy file `src` to `dst`; `src` must be a file, the
    /// parent of `dst` must be a directory, and `dst` must not exist.
    /// The destination's metadata starts [`Unmanaged`](crate::MetaValue),
    /// like any freshly created path.
    Cp(FsPath, FsPath),
    /// `chmeta(p, field, v)` — manage one metadata field of an existing
    /// path (the `chown`/`chgrp`/`chmod` family); `p` must exist.
    ChMeta(FsPath, MetaField, Content),
    /// Sequencing.
    Seq(Expr, Expr),
    /// Conditional.
    If(Pred, Expr, Expr),
}

impl PredId {
    /// The constant `true` predicate.
    pub const TRUE: Pred = PredId(0);
    /// The constant `false` predicate.
    pub const FALSE: Pred = PredId(1);

    /// Interns a node verbatim, *without* smart-constructor folding.
    ///
    /// Structurally identical nodes always intern to equal handles. Prefer
    /// the smart constructors ([`PredId::and`], [`PredId::or`],
    /// [`PredId::not`]); raw interning exists for tests and for callers
    /// that must keep a specific shape.
    pub fn intern(node: PredNode) -> Pred {
        PredId(arena::intern_pred(node))
    }

    /// `none?(p)`.
    pub fn does_not_exist(p: FsPath) -> Pred {
        Pred::intern(PredNode::DoesNotExist(p))
    }

    /// `file?(p)`.
    pub fn is_file(p: FsPath) -> Pred {
        Pred::intern(PredNode::IsFile(p))
    }

    /// `dir?(p)`.
    pub fn is_dir(p: FsPath) -> Pred {
        Pred::intern(PredNode::IsDir(p))
    }

    /// `emptydir?(p)`.
    pub fn is_empty_dir(p: FsPath) -> Pred {
        Pred::intern(PredNode::IsEmptyDir(p))
    }

    /// `meta_is(p, field, v)` — `p` exists and `field` is managed to `v`.
    pub fn meta_is(p: FsPath, field: MetaField, v: Content) -> Pred {
        Pred::intern(PredNode::MetaIs(p, field, v))
    }

    /// Conjunction with constant folding.
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::TRUE, p) | (p, Pred::TRUE) => p,
            (Pred::FALSE, _) | (_, Pred::FALSE) => Pred::FALSE,
            (a, b) => Pred::intern(PredNode::And(a, b)),
        }
    }

    /// Disjunction with constant folding.
    pub fn or(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::FALSE, p) | (p, Pred::FALSE) => p,
            (Pred::TRUE, _) | (_, Pred::TRUE) => Pred::TRUE,
            (a, b) => Pred::intern(PredNode::Or(a, b)),
        }
    }

    /// Negation with constant folding and double-negation elimination.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        match self.node() {
            PredNode::True => Pred::FALSE,
            PredNode::False => Pred::TRUE,
            PredNode::Not(inner) => inner,
            _ => Pred::intern(PredNode::Not(self)),
        }
    }

    /// The node this handle denotes, one level deep.
    pub fn node(self) -> PredNode {
        arena::pred_node(self.0)
    }

    /// All paths mentioned by this predicate (memoized and shared: repeated
    /// calls on the same node return the same allocation).
    pub fn paths(self) -> Arc<BTreeSet<FsPath>> {
        arena::pred_paths(self.0)
    }

    /// Number of AST nodes (memoized).
    pub fn size(self) -> usize {
        arena::pred_size(self.0) as usize
    }

    /// The raw arena id (stable for the process lifetime; encodes the
    /// owning shard in its low bits, so ids are not dense).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            PredNode::True => write!(f, "true"),
            PredNode::False => write!(f, "false"),
            PredNode::DoesNotExist(p) => write!(f, "none?({p})"),
            PredNode::IsFile(p) => write!(f, "file?({p})"),
            PredNode::IsDir(p) => write!(f, "dir?({p})"),
            PredNode::IsEmptyDir(p) => write!(f, "emptydir?({p})"),
            PredNode::MetaIs(p, field, v) => {
                write!(f, "{field}?({p}, {:?})", v.as_string())
            }
            PredNode::And(a, b) => write!(f, "({a} ∧ {b})"),
            PredNode::Or(a, b) => write!(f, "({a} ∨ {b})"),
            PredNode::Not(a) => write!(f, "¬{a}"),
        }
    }
}

impl ExprId {
    /// The no-op `id`.
    pub const SKIP: Expr = ExprId(0);
    /// The failing program `err`.
    pub const ERROR: Expr = ExprId(1);

    /// Interns a node verbatim, *without* smart-constructor folding (see
    /// [`PredId::intern`]).
    pub fn intern(node: ExprNode) -> Expr {
        ExprId(arena::intern_expr(node))
    }

    /// `mkdir(p)`.
    pub fn mkdir(p: FsPath) -> Expr {
        Expr::intern(ExprNode::Mkdir(p))
    }

    /// `creat(p, c)`.
    pub fn create_file(p: FsPath, c: Content) -> Expr {
        Expr::intern(ExprNode::CreateFile(p, c))
    }

    /// `rm(p)`.
    pub fn rm(p: FsPath) -> Expr {
        Expr::intern(ExprNode::Rm(p))
    }

    /// `cp(src, dst)`.
    pub fn cp(src: FsPath, dst: FsPath) -> Expr {
        Expr::intern(ExprNode::Cp(src, dst))
    }

    /// `chown(p, owner)` — manage the owner of an existing path.
    pub fn chown(p: FsPath, owner: Content) -> Expr {
        Expr::intern(ExprNode::ChMeta(p, MetaField::Owner, owner))
    }

    /// `chgrp(p, group)` — manage the group of an existing path.
    pub fn chgrp(p: FsPath, group: Content) -> Expr {
        Expr::intern(ExprNode::ChMeta(p, MetaField::Group, group))
    }

    /// `chmod(p, mode)` — manage the mode of an existing path.
    pub fn chmod(p: FsPath, mode: Content) -> Expr {
        Expr::intern(ExprNode::ChMeta(p, MetaField::Mode, mode))
    }

    /// `chmeta(p, field, v)` — the generic form of
    /// [`chown`](Expr::chown)/[`chgrp`](Expr::chgrp)/[`chmod`](Expr::chmod).
    pub fn chmeta(p: FsPath, field: MetaField, v: Content) -> Expr {
        Expr::intern(ExprNode::ChMeta(p, field, v))
    }

    /// Sequencing with unit and error short-circuiting.
    pub fn seq(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::SKIP, e) | (e, Expr::SKIP) => e,
            (Expr::ERROR, _) => Expr::ERROR,
            (a, b) => Expr::intern(ExprNode::Seq(a, b)),
        }
    }

    /// Sequences an iterator of expressions.
    pub fn seq_all(es: impl IntoIterator<Item = Expr>) -> Expr {
        es.into_iter().fold(Expr::SKIP, Expr::seq)
    }

    /// Conditional with constant folding of the guard.
    pub fn if_(pred: Pred, then_: Expr, else_: Expr) -> Expr {
        match pred {
            Pred::TRUE => then_,
            Pred::FALSE => else_,
            p => {
                if then_ == else_ {
                    then_
                } else {
                    Expr::intern(ExprNode::If(p, then_, else_))
                }
            }
        }
    }

    /// `if (pred) then_ else id` (the paper's shorthand).
    pub fn if_then(pred: Pred, then_: Expr) -> Expr {
        Expr::if_(pred, then_, Expr::SKIP)
    }

    /// The node this handle denotes, one level deep.
    pub fn node(self) -> ExprNode {
        arena::expr_node(self.0)
    }

    /// All paths that appear in the program text, including guard
    /// predicates (memoized and shared across callers).
    pub fn paths(self) -> Arc<BTreeSet<FsPath>> {
        arena::expr_paths(self.0)
    }

    /// All file contents that appear in the program text (memoized).
    pub fn contents(self) -> Arc<BTreeSet<Content>> {
        arena::expr_contents(self.0)
    }

    /// Number of AST nodes (memoized).
    pub fn size(self) -> usize {
        arena::expr_size(self.0) as usize
    }

    /// The raw arena id (stable for the process lifetime; encodes the
    /// owning shard in its low bits, so ids are not dense).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            ExprNode::Skip => write!(f, "id"),
            ExprNode::Error => write!(f, "err"),
            ExprNode::Mkdir(p) => write!(f, "mkdir({p})"),
            ExprNode::CreateFile(p, c) => write!(f, "creat({p}, {:?})", c.as_string()),
            ExprNode::Rm(p) => write!(f, "rm({p})"),
            ExprNode::Cp(p1, p2) => write!(f, "cp({p1}, {p2})"),
            ExprNode::ChMeta(p, field, v) => {
                let op = match field {
                    MetaField::Owner => "chown",
                    MetaField::Group => "chgrp",
                    MetaField::Mode => "chmod",
                };
                write!(f, "{op}({p}, {:?})", v.as_string())
            }
            ExprNode::Seq(a, b) => write!(f, "{a}; {b}"),
            ExprNode::If(p, a, b) => {
                if b == Expr::SKIP {
                    write!(f, "if ({p}) {{{a}}}")
                } else {
                    write!(f, "if ({p}) {{{a}}} else {{{b}}}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn smart_seq() {
        let e = Expr::mkdir(p("/a"));
        assert_eq!(Expr::SKIP.seq(e), e);
        assert_eq!(e.seq(Expr::SKIP), e);
        assert_eq!(Expr::ERROR.seq(e), Expr::ERROR);
        let s = e.seq(Expr::rm(p("/b")));
        assert!(matches!(s.node(), ExprNode::Seq(_, _)));
    }

    #[test]
    fn smart_if() {
        let e = Expr::mkdir(p("/a"));
        assert_eq!(Expr::if_(Pred::TRUE, e, Expr::ERROR), e);
        assert_eq!(Expr::if_(Pred::FALSE, e, Expr::ERROR), Expr::ERROR);
        assert_eq!(
            Expr::if_(Pred::is_dir(p("/x")), e, e),
            e,
            "identical branches collapse"
        );
    }

    #[test]
    fn pred_folding() {
        assert_eq!(Pred::TRUE.and(Pred::is_dir(p("/a"))), Pred::is_dir(p("/a")));
        assert_eq!(Pred::FALSE.and(Pred::is_dir(p("/a"))), Pred::FALSE);
        assert_eq!(Pred::FALSE.or(Pred::is_dir(p("/a"))), Pred::is_dir(p("/a")));
        assert_eq!(Pred::is_dir(p("/a")).not().not(), Pred::is_dir(p("/a")));
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let a = Expr::mkdir(p("/hc/a"));
        let b = Expr::mkdir(p("/hc/a"));
        assert_eq!(a, b, "identical leaves intern to the same handle");
        let s1 = a.seq(Expr::rm(p("/hc/b")));
        let s2 = b.seq(Expr::rm(p("/hc/b")));
        assert_eq!(s1, s2, "identical trees intern to the same handle");
        let raw = Expr::intern(ExprNode::Seq(a, Expr::rm(p("/hc/b"))));
        assert_eq!(raw, s1, "raw interning of the same shape agrees");
    }

    #[test]
    fn paths_collected() {
        let e = Expr::cp(p("/src"), p("/dst")).seq(Expr::if_then(
            Pred::is_file(p("/marker")),
            Expr::rm(p("/src")),
        ));
        let paths = e.paths();
        assert!(paths.contains(&p("/src")));
        assert!(paths.contains(&p("/dst")));
        assert!(paths.contains(&p("/marker")));
        assert_eq!(paths.len(), 3);
        // Memoized: the same shared set comes back.
        assert!(Arc::ptr_eq(&paths, &e.paths()));
    }

    #[test]
    fn contents_collected() {
        let c1 = Content::intern("a");
        let c2 = Content::intern("b");
        let e = Expr::create_file(p("/x"), c1).seq(Expr::create_file(p("/y"), c2));
        let cs = e.contents();
        assert!(cs.contains(&c1) && cs.contains(&c2));
    }

    #[test]
    fn sizes_are_memoized_consistently() {
        let a = Expr::mkdir(p("/sz/a"));
        let b = Expr::rm(p("/sz/b"));
        let s = Expr::intern(ExprNode::Seq(a, b));
        assert_eq!(s.size(), 1 + a.size() + b.size());
        let g = Expr::if_(Pred::is_dir(p("/sz/a")), a, b);
        assert_eq!(g.size(), 1 + 1 + a.size() + b.size());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::if_then(Pred::is_dir(p("/a")), Expr::mkdir(p("/a/b")));
        assert_eq!(e.to_string(), "if (dir?(/a)) {mkdir(/a/b)}");
    }

    #[test]
    fn seq_all_folds() {
        let es = vec![Expr::SKIP, Expr::mkdir(p("/a")), Expr::SKIP];
        assert_eq!(Expr::seq_all(es), Expr::mkdir(p("/a")));
    }
}
