//! The FS language (paper fig. 5): a loop-free imperative language of
//! filesystem operations.
//!
//! Expressions denote partial functions from filesystems to filesystems;
//! predicates denote filesystem observations. Resources compiled from Puppet
//! manifests are FS programs, and all of Rehearsal's analyses operate on
//! this language.

use crate::path::{Content, FsPath};
use std::collections::BTreeSet;
use std::fmt;

/// A predicate over filesystem states (paper fig. 5).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Always true.
    True,
    /// Always false.
    False,
    /// `none?(p)` — the path does not exist.
    DoesNotExist(FsPath),
    /// `file?(p)` — the path is a regular file.
    IsFile(FsPath),
    /// `dir?(p)` — the path is a directory.
    IsDir(FsPath),
    /// `emptydir?(p)` — the path is a directory with no children.
    IsEmptyDir(FsPath),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Conjunction with constant folding.
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::True, p) | (p, Pred::True) => p,
            (Pred::False, _) | (_, Pred::False) => Pred::False,
            (a, b) => Pred::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction with constant folding.
    pub fn or(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::False, p) | (p, Pred::False) => p,
            (Pred::True, _) | (_, Pred::True) => Pred::True,
            (a, b) => Pred::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation with constant folding and double-negation elimination.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        match self {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::Not(inner) => *inner,
            p => Pred::Not(Box::new(p)),
        }
    }

    /// All paths mentioned by this predicate.
    pub fn paths(&self) -> BTreeSet<FsPath> {
        let mut out = BTreeSet::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths(&self, out: &mut BTreeSet<FsPath>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::DoesNotExist(p) | Pred::IsFile(p) | Pred::IsDir(p) | Pred::IsEmptyDir(p) => {
                out.insert(*p);
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_paths(out);
                b.collect_paths(out);
            }
            Pred::Not(a) => a.collect_paths(out),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Pred::True
            | Pred::False
            | Pred::DoesNotExist(_)
            | Pred::IsFile(_)
            | Pred::IsDir(_)
            | Pred::IsEmptyDir(_) => 1,
            Pred::And(a, b) | Pred::Or(a, b) => 1 + a.size() + b.size(),
            Pred::Not(a) => 1 + a.size(),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::False => write!(f, "false"),
            Pred::DoesNotExist(p) => write!(f, "none?({p})"),
            Pred::IsFile(p) => write!(f, "file?({p})"),
            Pred::IsDir(p) => write!(f, "dir?({p})"),
            Pred::IsEmptyDir(p) => write!(f, "emptydir?({p})"),
            Pred::And(a, b) => write!(f, "({a} ∧ {b})"),
            Pred::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Pred::Not(a) => write!(f, "¬{a}"),
        }
    }
}

/// An FS expression (paper fig. 5).
///
/// # Examples
///
/// ```
/// use rehearsal_fs::{Expr, FsPath, Content, Pred};
/// let vimrc = FsPath::parse("/home/carol/.vimrc")?;
/// let e = Expr::If(
///     Pred::IsDir(vimrc.parent().unwrap()),
///     Box::new(Expr::CreateFile(vimrc, Content::intern("syntax on"))),
///     Box::new(Expr::Error),
/// );
/// assert!(e.paths().contains(&vimrc));
/// # Ok::<(), rehearsal_fs::ParsePathError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// `id` — no-op.
    Skip,
    /// `err` — halt with an error.
    Error,
    /// `mkdir(p)` — create a directory; the parent must be a directory and
    /// `p` must not exist.
    Mkdir(FsPath),
    /// `creat(p, c)` — create a file with content `c`; the parent must be a
    /// directory and `p` must not exist.
    CreateFile(FsPath, Content),
    /// `rm(p)` — remove a file or empty directory.
    Rm(FsPath),
    /// `cp(src, dst)` — copy file `src` to `dst`; `src` must be a file, the
    /// parent of `dst` must be a directory, and `dst` must not exist.
    Cp(FsPath, FsPath),
    /// Sequencing.
    Seq(Box<Expr>, Box<Expr>),
    /// Conditional.
    If(Pred, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Sequencing with unit and error short-circuiting.
    pub fn seq(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::Skip, e) | (e, Expr::Skip) => e,
            (Expr::Error, _) => Expr::Error,
            (a, b) => Expr::Seq(Box::new(a), Box::new(b)),
        }
    }

    /// Sequences an iterator of expressions.
    pub fn seq_all(es: impl IntoIterator<Item = Expr>) -> Expr {
        es.into_iter().fold(Expr::Skip, Expr::seq)
    }

    /// Conditional with constant folding of the guard.
    pub fn if_(pred: Pred, then_: Expr, else_: Expr) -> Expr {
        match pred {
            Pred::True => then_,
            Pred::False => else_,
            p => {
                if then_ == else_ {
                    then_
                } else {
                    Expr::If(p, Box::new(then_), Box::new(else_))
                }
            }
        }
    }

    /// `if (pred) then_ else id` (the paper's shorthand).
    pub fn if_then(pred: Pred, then_: Expr) -> Expr {
        Expr::if_(pred, then_, Expr::Skip)
    }

    /// All paths that appear in the program text.
    pub fn paths(&self) -> BTreeSet<FsPath> {
        let mut out = BTreeSet::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths(&self, out: &mut BTreeSet<FsPath>) {
        match self {
            Expr::Skip | Expr::Error => {}
            Expr::Mkdir(p) | Expr::CreateFile(p, _) | Expr::Rm(p) => {
                out.insert(*p);
            }
            Expr::Cp(p1, p2) => {
                out.insert(*p1);
                out.insert(*p2);
            }
            Expr::Seq(a, b) => {
                a.collect_paths(out);
                b.collect_paths(out);
            }
            Expr::If(p, a, b) => {
                p.collect_paths(out);
                a.collect_paths(out);
                b.collect_paths(out);
            }
        }
    }

    /// All file contents that appear in the program text.
    pub fn contents(&self) -> BTreeSet<Content> {
        let mut out = BTreeSet::new();
        self.collect_contents(&mut out);
        out
    }

    fn collect_contents(&self, out: &mut BTreeSet<Content>) {
        match self {
            Expr::CreateFile(_, c) => {
                out.insert(*c);
            }
            Expr::Seq(a, b) => {
                a.collect_contents(out);
                b.collect_contents(out);
            }
            Expr::If(_, a, b) => {
                a.collect_contents(out);
                b.collect_contents(out);
            }
            _ => {}
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Expr::Skip | Expr::Error | Expr::Mkdir(_) | Expr::CreateFile(_, _) | Expr::Rm(_) => 1,
            Expr::Cp(_, _) => 1,
            Expr::Seq(a, b) => 1 + a.size() + b.size(),
            Expr::If(p, a, b) => 1 + p.size() + a.size() + b.size(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Skip => write!(f, "id"),
            Expr::Error => write!(f, "err"),
            Expr::Mkdir(p) => write!(f, "mkdir({p})"),
            Expr::CreateFile(p, c) => write!(f, "creat({p}, {:?})", c.as_string()),
            Expr::Rm(p) => write!(f, "rm({p})"),
            Expr::Cp(p1, p2) => write!(f, "cp({p1}, {p2})"),
            Expr::Seq(a, b) => write!(f, "{a}; {b}"),
            Expr::If(p, a, b) => {
                if **b == Expr::Skip {
                    write!(f, "if ({p}) {{{a}}}")
                } else {
                    write!(f, "if ({p}) {{{a}}} else {{{b}}}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn smart_seq() {
        let e = Expr::Mkdir(p("/a"));
        assert_eq!(Expr::Skip.seq(e.clone()), e);
        assert_eq!(e.clone().seq(Expr::Skip), e);
        assert_eq!(Expr::Error.seq(e.clone()), Expr::Error);
        let s = e.clone().seq(Expr::Rm(p("/b")));
        assert!(matches!(s, Expr::Seq(_, _)));
    }

    #[test]
    fn smart_if() {
        let e = Expr::Mkdir(p("/a"));
        assert_eq!(Expr::if_(Pred::True, e.clone(), Expr::Error), e);
        assert_eq!(Expr::if_(Pred::False, e.clone(), Expr::Error), Expr::Error);
        assert_eq!(
            Expr::if_(Pred::IsDir(p("/x")), e.clone(), e.clone()),
            e,
            "identical branches collapse"
        );
    }

    #[test]
    fn pred_folding() {
        assert_eq!(Pred::True.and(Pred::IsDir(p("/a"))), Pred::IsDir(p("/a")));
        assert_eq!(Pred::False.and(Pred::IsDir(p("/a"))), Pred::False);
        assert_eq!(Pred::False.or(Pred::IsDir(p("/a"))), Pred::IsDir(p("/a")));
        assert_eq!(Pred::IsDir(p("/a")).not().not(), Pred::IsDir(p("/a")));
    }

    #[test]
    fn paths_collected() {
        let e = Expr::Cp(p("/src"), p("/dst")).seq(Expr::if_then(
            Pred::IsFile(p("/marker")),
            Expr::Rm(p("/src")),
        ));
        let paths = e.paths();
        assert!(paths.contains(&p("/src")));
        assert!(paths.contains(&p("/dst")));
        assert!(paths.contains(&p("/marker")));
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn contents_collected() {
        let c1 = Content::intern("a");
        let c2 = Content::intern("b");
        let e = Expr::CreateFile(p("/x"), c1).seq(Expr::CreateFile(p("/y"), c2));
        let cs = e.contents();
        assert!(cs.contains(&c1) && cs.contains(&c2));
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::if_then(Pred::IsDir(p("/a")), Expr::Mkdir(p("/a/b")));
        assert_eq!(e.to_string(), "if (dir?(/a)) {mkdir(/a/b)}");
    }

    #[test]
    fn seq_all_folds() {
        let es = vec![Expr::Skip, Expr::Mkdir(p("/a")), Expr::Skip];
        assert_eq!(Expr::seq_all(es), Expr::Mkdir(p("/a")));
    }
}
