//! Path metadata: owner, group, and mode.
//!
//! The paper's filesystem abstraction maps every path to
//! `{File(content), Dir, Absent}` and silently drops `owner`/`group`/`mode`
//! attributes, so a `file` resource and a chown/chmod-style effect racing
//! over the same path's permissions are invisible to the checker. The
//! metadata-aware model extends the state to `{File(content, meta),
//! Dir(meta), Absent}` where `meta` is an interned `(owner, group, mode)`
//! triple.
//!
//! Every field defaults to [`MetaValue::Unmanaged`] — "whatever the real
//! system has; nothing in the manifest constrains it". Unannotated
//! manifests therefore keep bit-identical verdicts: no operation writes a
//! managed value, all metadata stays `Unmanaged`, and states compare
//! exactly as before.

use crate::path::Content;
use std::fmt;

/// One metadata field of a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetaField {
    /// The owning user.
    Owner,
    /// The owning group.
    Group,
    /// The permission mode (e.g. `"0644"`).
    Mode,
}

impl MetaField {
    /// All fields, in the canonical (owner, group, mode) order.
    pub const ALL: [MetaField; 3] = [MetaField::Owner, MetaField::Group, MetaField::Mode];

    /// The canonical index of this field within [`MetaField::ALL`].
    pub fn index(self) -> usize {
        match self {
            MetaField::Owner => 0,
            MetaField::Group => 1,
            MetaField::Mode => 2,
        }
    }
}

impl fmt::Display for MetaField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaField::Owner => write!(f, "owner"),
            MetaField::Group => write!(f, "group"),
            MetaField::Mode => write!(f, "mode"),
        }
    }
}

/// The value of one metadata field: either unmanaged (the default — the
/// manifest says nothing about it) or managed to an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetaValue {
    /// The manifest does not manage this field; the real system's value
    /// (whatever it is) persists.
    Unmanaged,
    /// The field is managed to this interned value.
    Set(Content),
}

impl fmt::Display for MetaValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaValue::Unmanaged => write!(f, "·"),
            MetaValue::Set(c) => write!(f, "{:?}", c.as_string()),
        }
    }
}

/// The `(owner, group, mode)` triple of a present path. Fields hold
/// interned handles, so the whole triple is `Copy` and comparisons are
/// integer compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Meta {
    /// The owning user.
    pub owner: MetaValue,
    /// The owning group.
    pub group: MetaValue,
    /// The permission mode.
    pub mode: MetaValue,
}

impl Meta {
    /// The default metadata: every field unmanaged. Freshly created paths
    /// (`mkdir`, `creat`, `cp` destinations) start here, which is what
    /// keeps unannotated manifests bit-identical to the metadata-free
    /// model.
    pub const UNMANAGED: Meta = Meta {
        owner: MetaValue::Unmanaged,
        group: MetaValue::Unmanaged,
        mode: MetaValue::Unmanaged,
    };

    /// Whether every field is unmanaged.
    pub fn is_unmanaged(self) -> bool {
        self == Meta::UNMANAGED
    }

    /// The value of one field.
    pub fn get(self, field: MetaField) -> MetaValue {
        match field {
            MetaField::Owner => self.owner,
            MetaField::Group => self.group,
            MetaField::Mode => self.mode,
        }
    }

    /// A copy with one field managed to `value`.
    #[must_use]
    pub fn with(mut self, field: MetaField, value: Content) -> Meta {
        match field {
            MetaField::Owner => self.owner = MetaValue::Set(value),
            MetaField::Group => self.group = MetaValue::Set(value),
            MetaField::Mode => self.mode = MetaValue::Set(value),
        }
        self
    }
}

impl Default for Meta {
    fn default() -> Meta {
        Meta::UNMANAGED
    }
}

impl fmt::Display for Meta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for field in MetaField::ALL {
            if let MetaValue::Set(c) = self.get(field) {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{field}={}", c.as_string())?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmanaged_is_default() {
        assert_eq!(Meta::default(), Meta::UNMANAGED);
        assert!(Meta::UNMANAGED.is_unmanaged());
    }

    #[test]
    fn with_sets_one_field() {
        let root = Content::intern("root");
        let m = Meta::UNMANAGED.with(MetaField::Owner, root);
        assert_eq!(m.get(MetaField::Owner), MetaValue::Set(root));
        assert_eq!(m.get(MetaField::Group), MetaValue::Unmanaged);
        assert_eq!(m.get(MetaField::Mode), MetaValue::Unmanaged);
        assert!(!m.is_unmanaged());
    }

    #[test]
    fn field_indices_match_all_order() {
        for (i, f) in MetaField::ALL.into_iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn display_lists_managed_fields_only() {
        let m = Meta::UNMANAGED
            .with(MetaField::Owner, Content::intern("root"))
            .with(MetaField::Mode, Content::intern("0644"));
        assert_eq!(m.to_string(), "owner=root, mode=0644");
        assert_eq!(Meta::UNMANAGED.to_string(), "");
    }
}
