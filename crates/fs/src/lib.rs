//! **FS** — the small imperative language of filesystem operations at the
//! heart of Rehearsal (paper §3.2, fig. 5).
//!
//! Puppet resources are compiled (by `rehearsal-resources`) into FS
//! programs; all analyses in `rehearsal-core` operate on FS. The language is
//! loop-free and manipulates a statically known, finite set of paths, which
//! is what makes Rehearsal's determinacy analysis decidable.
//!
//! * [`FsPath`], [`Content`] — interned paths and file contents;
//! * [`Pred`], [`Expr`] — the syntax of predicates and expressions;
//! * [`FileSystem`], [`FileState`] — concrete states `σ`;
//! * [`eval`], [`eval_pred`] — the concrete big-step semantics;
//! * [`enumerate_filesystems`], [`check_equiv_brute_force`] — exhaustive
//!   oracles used for testing and baselines.
//!
//! # Examples
//!
//! ```
//! use rehearsal_fs::{eval, Content, Expr, FileSystem, FsPath, Pred};
//!
//! // if (¬dir?(/a)) mkdir(/a); creat(/a/f, "hi")
//! let a = FsPath::parse("/a")?;
//! let f = a.join("f");
//! let prog = Expr::if_then(Pred::IsDir(a).not(), Expr::Mkdir(a))
//!     .seq(Expr::CreateFile(f, Content::intern("hi")));
//! let out = eval(&prog, &FileSystem::with_root()).expect("succeeds");
//! assert!(out.is_file(f));
//! # Ok::<(), rehearsal_fs::ParsePathError>(())
//! ```

#![warn(missing_docs)]

mod ast;
mod enumerate;
mod eval;
mod intern;
mod path;
mod state;
mod statefile;

pub use ast::{Expr, Pred};
pub use enumerate::{check_equiv_brute_force, enumerate_filesystems, observe, Outcome};
pub use eval::{eval, eval_pred, ExecError};
pub use path::{Content, FsPath, ParsePathError};
pub use state::{FileState, FileSystem};
pub use statefile::{parse_state, render_state, StateParseError};
