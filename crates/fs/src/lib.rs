//! **FS** — the small imperative language of filesystem operations at the
//! heart of Rehearsal (paper §3.2, fig. 5).
//!
//! Puppet resources are compiled (by `rehearsal-resources`) into FS
//! programs; all analyses in `rehearsal-core` operate on FS. The language is
//! loop-free and manipulates a statically known, finite set of paths, which
//! is what makes Rehearsal's determinacy analysis decidable.
//!
//! * [`FsPath`], [`Content`] — interned paths and file contents;
//! * [`Pred`], [`Expr`] — `Copy` handles into the hash-consing IR arena;
//!   [`PredNode`], [`ExprNode`] — one level of structure for matching;
//! * [`Meta`], [`MetaField`], [`MetaValue`] — the (owner, group, mode)
//!   metadata triple of present paths, `Unmanaged` by default;
//! * [`FileSystem`], [`FileState`] — concrete states `σ`;
//! * [`eval`], [`eval_pred`] — the concrete big-step semantics;
//! * [`enumerate_filesystems`], [`check_equiv_brute_force`] — exhaustive
//!   oracles used for testing and baselines.
//!
//! # The IR arena
//!
//! Since the hash-consing refactor, `Pred`/`Expr` are arena-interned ids
//! (aliases of [`PredId`]/[`ExprId`]): construction deduplicates
//! structurally identical subtrees, equality is an integer compare, and
//! structural analyses (`paths`, `size`, `contents`) are memoized per node
//! and shared via `Arc`. The arena is process-global and append-only —
//! the same lifecycle as the [`FsPath`]/[`Content`] interner it builds on —
//! so handles never dangle and no invalidation is needed; see
//! [`crate::arena`] for the full lifecycle rules and [`arena_stats`] for
//! its size/sharing counters.
//!
//! # Examples
//!
//! ```
//! use rehearsal_fs::{eval, Content, Expr, FileSystem, FsPath, Pred};
//!
//! // if (¬dir?(/a)) mkdir(/a); creat(/a/f, "hi")
//! let a = FsPath::parse("/a")?;
//! let f = a.join("f");
//! let prog = Expr::if_then(Pred::is_dir(a).not(), Expr::mkdir(a))
//!     .seq(Expr::create_file(f, Content::intern("hi")));
//! let out = eval(prog, &FileSystem::with_root()).expect("succeeds");
//! assert!(out.is_file(f));
//! # Ok::<(), rehearsal_fs::ParsePathError>(())
//! ```

#![warn(missing_docs)]

pub mod arena;
mod ast;
mod enumerate;
mod eval;
mod intern;
mod meta;
mod path;
mod state;
mod statefile;

pub use arena::{arena_shard_contention, arena_stats, publish_arena_metrics, ArenaStats};
pub use ast::{Expr, ExprId, ExprNode, Pred, PredId, PredNode};
pub use enumerate::{check_equiv_brute_force, enumerate_filesystems, observe, Outcome};
pub use eval::{eval, eval_pred, ExecError};
pub use meta::{Meta, MetaField, MetaValue};
pub use path::{Content, FsPath, ParsePathError};
pub use state::{FileState, FileSystem};
pub use statefile::{parse_state, render_state, StateParseError};
