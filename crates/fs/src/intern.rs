//! Process-global interners for paths and file contents.
//!
//! FS programs mention a statically-known, finite set of paths and contents.
//! Interning makes both `Copy`-able `u32` handles, so filesystem states and
//! analyses can use cheap maps and comparisons. The interner is append-only
//! and shared process-wide, which keeps handles valid across all analysis
//! sessions in a run.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

#[derive(Debug)]
pub(crate) struct PathData {
    pub(crate) parent: Option<u32>,
    pub(crate) name: Box<str>,
    pub(crate) depth: u32,
}

#[derive(Debug, Default)]
pub(crate) struct Store {
    pub(crate) paths: Vec<PathData>,
    pub(crate) path_lookup: HashMap<(Option<u32>, Box<str>), u32>,
    pub(crate) strings: Vec<Box<str>>,
    pub(crate) string_lookup: HashMap<Box<str>, u32>,
}

impl Store {
    fn new() -> Store {
        let mut s = Store::default();
        // Path id 0 is always the root "/".
        s.paths.push(PathData {
            parent: None,
            name: "".into(),
            depth: 0,
        });
        s
    }

    pub(crate) fn intern_string(&mut self, text: &str) -> u32 {
        if let Some(&id) = self.string_lookup.get(text) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(text.into());
        self.string_lookup.insert(text.into(), id);
        id
    }

    pub(crate) fn intern_child(&mut self, parent: u32, name: &str) -> u32 {
        let key = (Some(parent), Box::from(name));
        if let Some(&id) = self.path_lookup.get(&key) {
            return id;
        }
        let depth = self.paths[parent as usize].depth + 1;
        let id = self.paths.len() as u32;
        self.paths.push(PathData {
            parent: Some(parent),
            name: name.into(),
            depth,
        });
        self.path_lookup.insert(key, id);
        id
    }
}

pub(crate) fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::new()))
}

pub(crate) fn with_store<R>(f: impl FnOnce(&mut Store) -> R) -> R {
    let mut guard = store().lock().expect("interner poisoned");
    f(&mut guard)
}
