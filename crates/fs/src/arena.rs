//! The process-global hash-consing arena backing the FS IR.
//!
//! [`Pred`](crate::Pred) and [`Expr`](crate::Expr) are `Copy`-able `u32`
//! handles into this arena, in exactly the way the path/content interner already
//! makes paths and contents `Copy` handles. Interning a node first looks it
//! up structurally: building the same tree twice yields the *same* handle,
//! so `==` on handles is O(1) structural equality and common subtrees are
//! stored (and later analyzed) exactly once.
//!
//! # Lifecycle
//!
//! The arena is **process-global and append-only**, like the path/content
//! interner it composes with: node ids stay valid for the lifetime of the
//! process, across every analysis session, and are never invalidated or
//! garbage-collected. This is the right trade for Rehearsal's workloads —
//! resource models are built from a small vocabulary of idioms
//! (`ensure_dir`, `overwrite`, …) over an interned path universe, so the
//! arena saturates quickly and every later analysis re-uses the same nodes.
//! Per-expression *analysis* results that depend only on structure (path
//! sets, node counts) are memoized here as well; analysis state that
//! depends on a solver context (symbolic states, formulas) is memoized
//! per-`Encoder` in `rehearsal-core` instead, keyed by these ids.
//!
//! # Sharding
//!
//! The store is lock-striped: nodes are hash-routed across `N_SHARDS`
//! independently locked shards, and a handle encodes its shard in the
//! low `SHARD_BITS` bits (`id = local << SHARD_BITS | shard`). Ids remain process-stable and `Copy`; explorer threads and
//! fleet workers touching different subtrees intern and probe without
//! contending on a single lock word. Lock acquisitions that find their
//! shard held are counted and surfaced as the `arena.shard_contention`
//! trace gauge, so profiles show whether the stripe count is adequate.
//! The four IR constants (`Pred::TRUE`/`FALSE`, `Expr::SKIP`/`ERROR`)
//! keep their historical ids 0 and 1 by seeding shards 0 and 1 and
//! special-casing their interning before hash routing.

use crate::ast::{ExprNode, PredNode};
use crate::path::{Content, FsPath};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// Number of low handle bits that encode the owning shard.
pub(crate) const SHARD_BITS: u32 = 4;
/// Number of lock stripes in the arena.
pub(crate) const N_SHARDS: usize = 1 << SHARD_BITS;

/// One interned predicate with its memoized structural facts.
#[derive(Debug)]
struct PredEntry {
    node: PredNode,
    /// Number of AST nodes (children are interned first, so this is
    /// computed eagerly at interning time).
    size: u64,
    /// Lazily computed, shared set of mentioned paths.
    paths: Option<Arc<BTreeSet<FsPath>>>,
}

/// One interned expression with its memoized structural facts.
#[derive(Debug)]
struct ExprEntry {
    node: ExprNode,
    size: u64,
    paths: Option<Arc<BTreeSet<FsPath>>>,
    contents: Option<Arc<BTreeSet<Content>>>,
}

/// Counters describing the arena (see [`arena_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct predicate nodes interned so far.
    pub pred_nodes: usize,
    /// Distinct expression nodes interned so far.
    pub expr_nodes: usize,
    /// Predicate interning requests served by an existing node.
    pub pred_dedup_hits: u64,
    /// Expression interning requests served by an existing node.
    pub expr_dedup_hits: u64,
}

impl ArenaStats {
    /// Total interning requests (constructed + deduplicated).
    pub fn requests(&self) -> u64 {
        self.pred_nodes as u64
            + self.expr_nodes as u64
            + self.pred_dedup_hits
            + self.expr_dedup_hits
    }

    /// Fraction of interning requests answered by sharing an existing node
    /// (0.0 when nothing has been interned).
    pub fn dedup_ratio(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            return 0.0;
        }
        (self.pred_dedup_hits + self.expr_dedup_hits) as f64 / requests as f64
    }

    /// The arena growth between two snapshots (`self` taken after `base`).
    pub fn since(&self, base: &ArenaStats) -> ArenaStats {
        ArenaStats {
            pred_nodes: self.pred_nodes - base.pred_nodes,
            expr_nodes: self.expr_nodes - base.expr_nodes,
            pred_dedup_hits: self.pred_dedup_hits - base.pred_dedup_hits,
            expr_dedup_hits: self.expr_dedup_hits - base.expr_dedup_hits,
        }
    }
}

#[derive(Debug)]
struct Shard<N, E> {
    entries: Vec<E>,
    /// Node → full (shard-encoded) id.
    lookup: HashMap<N, u32>,
}

impl<N, E> Default for Shard<N, E> {
    fn default() -> Self {
        Shard {
            entries: Vec::new(),
            lookup: HashMap::new(),
        }
    }
}

type PredShard = Shard<PredNode, PredEntry>;
type ExprShard = Shard<ExprNode, ExprEntry>;

struct IrArena {
    preds: Vec<RwLock<PredShard>>,
    exprs: Vec<RwLock<ExprShard>>,
    pred_hits: AtomicU64,
    expr_hits: AtomicU64,
    /// Lock acquisitions that found their shard held and had to block.
    contention: AtomicU64,
}

/// Packs a shard number and a shard-local index into a handle.
fn compose(shard: usize, local: usize) -> u32 {
    ((local as u32) << SHARD_BITS) | shard as u32
}

/// The shard number encoded in a handle.
fn shard_of(id: u32) -> usize {
    (id as usize) & (N_SHARDS - 1)
}

/// The shard-local index encoded in a handle.
fn local_of(id: u32) -> usize {
    (id >> SHARD_BITS) as usize
}

impl IrArena {
    fn new() -> IrArena {
        let arena = IrArena {
            preds: (0..N_SHARDS)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            exprs: (0..N_SHARDS)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            pred_hits: AtomicU64::new(0),
            expr_hits: AtomicU64::new(0),
            contention: AtomicU64::new(0),
        };
        // Fixed ids for the constants, mirroring the solver's `Ctx`:
        // `Pred::TRUE`/`Pred::FALSE` and `Expr::SKIP`/`Expr::ERROR` are
        // `const` handles with ids 0 and 1, i.e. local index 0 of shards
        // 0 and 1. `intern_pred`/`intern_expr` special-case them before
        // hash routing, so the seeded positions are authoritative.
        for (shard, node) in [(0, PredNode::True), (1, PredNode::False)] {
            let mut guard = arena.preds[shard].write().expect("IR arena poisoned");
            guard.entries.push(PredEntry {
                node,
                size: 1,
                paths: None,
            });
            guard.lookup.insert(node, compose(shard, 0));
        }
        for (shard, node) in [(0, ExprNode::Skip), (1, ExprNode::Error)] {
            let mut guard = arena.exprs[shard].write().expect("IR arena poisoned");
            guard.entries.push(ExprEntry {
                node,
                size: 1,
                paths: None,
                contents: None,
            });
            guard.lookup.insert(node, compose(shard, 0));
        }
        arena
    }

    fn read<'a, N, E>(&'a self, lock: &'a RwLock<Shard<N, E>>) -> RwLockReadGuard<'a, Shard<N, E>> {
        match lock.try_read() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                lock.read().expect("IR arena poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("IR arena poisoned"),
        }
    }

    fn write<'a, N, E>(
        &'a self,
        lock: &'a RwLock<Shard<N, E>>,
    ) -> RwLockWriteGuard<'a, Shard<N, E>> {
        match lock.try_write() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                lock.write().expect("IR arena poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("IR arena poisoned"),
        }
    }

    fn intern_pred(&self, node: PredNode) -> u32 {
        // The constants keep their seeded ids regardless of hash routing.
        match node {
            PredNode::True => {
                self.pred_hits.fetch_add(1, Ordering::Relaxed);
                return 0;
            }
            PredNode::False => {
                self.pred_hits.fetch_add(1, Ordering::Relaxed);
                return 1;
            }
            _ => {}
        }
        let shard = rehearsal_sync::shard_index(&node, N_SHARDS);
        let lock = &self.preds[shard];
        if let Some(&id) = self.read(lock).lookup.get(&node) {
            self.pred_hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        // Children are already interned, so their sizes are readable from
        // their own shards; no lock is held while we gather them.
        let size = match node {
            PredNode::True
            | PredNode::False
            | PredNode::DoesNotExist(_)
            | PredNode::IsFile(_)
            | PredNode::IsDir(_)
            | PredNode::IsEmptyDir(_)
            | PredNode::MetaIs(_, _, _) => 1,
            PredNode::And(a, b) | PredNode::Or(a, b) => {
                1 + self.pred_size(a.index()) + self.pred_size(b.index())
            }
            PredNode::Not(a) => 1 + self.pred_size(a.index()),
        };
        let mut guard = self.write(lock);
        if let Some(&id) = guard.lookup.get(&node) {
            self.pred_hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        let id = compose(shard, guard.entries.len());
        guard.entries.push(PredEntry {
            node,
            size,
            paths: None,
        });
        guard.lookup.insert(node, id);
        id
    }

    fn intern_expr(&self, node: ExprNode) -> u32 {
        match node {
            ExprNode::Skip => {
                self.expr_hits.fetch_add(1, Ordering::Relaxed);
                return 0;
            }
            ExprNode::Error => {
                self.expr_hits.fetch_add(1, Ordering::Relaxed);
                return 1;
            }
            _ => {}
        }
        let shard = rehearsal_sync::shard_index(&node, N_SHARDS);
        let lock = &self.exprs[shard];
        if let Some(&id) = self.read(lock).lookup.get(&node) {
            self.expr_hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        let size = match node {
            ExprNode::Skip
            | ExprNode::Error
            | ExprNode::Mkdir(_)
            | ExprNode::CreateFile(_, _)
            | ExprNode::Rm(_)
            | ExprNode::Cp(_, _)
            | ExprNode::ChMeta(_, _, _) => 1,
            ExprNode::Seq(a, b) => 1 + self.expr_size(a.index()) + self.expr_size(b.index()),
            ExprNode::If(p, a, b) => {
                1 + self.pred_size(p.index())
                    + self.expr_size(a.index())
                    + self.expr_size(b.index())
            }
        };
        let mut guard = self.write(lock);
        if let Some(&id) = guard.lookup.get(&node) {
            self.expr_hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        let id = compose(shard, guard.entries.len());
        guard.entries.push(ExprEntry {
            node,
            size,
            paths: None,
            contents: None,
        });
        guard.lookup.insert(node, id);
        id
    }

    fn pred_node(&self, id: u32) -> PredNode {
        self.read(&self.preds[shard_of(id)]).entries[local_of(id)].node
    }

    fn expr_node(&self, id: u32) -> ExprNode {
        self.read(&self.exprs[shard_of(id)]).entries[local_of(id)].node
    }

    fn pred_size(&self, id: u32) -> u64 {
        self.read(&self.preds[shard_of(id)]).entries[local_of(id)].size
    }

    fn expr_size(&self, id: u32) -> u64 {
        self.read(&self.exprs[shard_of(id)]).entries[local_of(id)].size
    }

    /// Already-computed path set of a predicate, if any (read-only probe
    /// so the common cached case needs no exclusive lock).
    fn try_pred_paths(&self, id: u32) -> Option<Arc<BTreeSet<FsPath>>> {
        self.read(&self.preds[shard_of(id)]).entries[local_of(id)]
            .paths
            .as_ref()
            .map(Arc::clone)
    }

    /// Already-computed path set of an expression, if any.
    fn try_expr_paths(&self, id: u32) -> Option<Arc<BTreeSet<FsPath>>> {
        self.read(&self.exprs[shard_of(id)]).entries[local_of(id)]
            .paths
            .as_ref()
            .map(Arc::clone)
    }

    /// Already-computed content set of an expression, if any.
    fn try_expr_contents(&self, id: u32) -> Option<Arc<BTreeSet<Content>>> {
        self.read(&self.exprs[shard_of(id)]).entries[local_of(id)]
            .contents
            .as_ref()
            .map(Arc::clone)
    }

    /// Publishes a computed path set; first writer wins, so repeated
    /// calls on the same node keep returning the same shared allocation.
    fn store_pred_paths(&self, id: u32, set: Arc<BTreeSet<FsPath>>) -> Arc<BTreeSet<FsPath>> {
        let mut guard = self.write(&self.preds[shard_of(id)]);
        let slot = &mut guard.entries[local_of(id)].paths;
        match slot {
            Some(existing) => Arc::clone(existing),
            None => {
                *slot = Some(Arc::clone(&set));
                set
            }
        }
    }

    fn store_expr_paths(&self, id: u32, set: Arc<BTreeSet<FsPath>>) -> Arc<BTreeSet<FsPath>> {
        let mut guard = self.write(&self.exprs[shard_of(id)]);
        let slot = &mut guard.entries[local_of(id)].paths;
        match slot {
            Some(existing) => Arc::clone(existing),
            None => {
                *slot = Some(Arc::clone(&set));
                set
            }
        }
    }

    fn store_expr_contents(&self, id: u32, set: Arc<BTreeSet<Content>>) -> Arc<BTreeSet<Content>> {
        let mut guard = self.write(&self.exprs[shard_of(id)]);
        let slot = &mut guard.entries[local_of(id)].contents;
        match slot {
            Some(existing) => Arc::clone(existing),
            None => {
                *slot = Some(Arc::clone(&set));
                set
            }
        }
    }

    /// Memoized path set of a predicate, computed with an explicit stack
    /// (two-phase DFS). Each per-node probe and store is a brief
    /// single-shard lock, so no lock is held across the traversal and
    /// concurrent computations of shared subtrees are harmless (both
    /// compute the same structural fact; the first store wins).
    fn pred_paths(&self, root: u32) -> Arc<BTreeSet<FsPath>> {
        if let Some(cached) = self.try_pred_paths(root) {
            return cached;
        }
        // (id, children_visited)
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if self.try_pred_paths(id).is_some() {
                continue;
            }
            let node = self.pred_node(id);
            if !expanded {
                stack.push((id, true));
                match node {
                    PredNode::And(a, b) | PredNode::Or(a, b) => {
                        stack.push((a.index(), false));
                        stack.push((b.index(), false));
                    }
                    PredNode::Not(a) => stack.push((a.index(), false)),
                    _ => {}
                }
                continue;
            }
            let cached = |i: u32| self.try_pred_paths(i).expect("computed");
            let set = match node {
                PredNode::True | PredNode::False => Arc::new(BTreeSet::new()),
                PredNode::DoesNotExist(p)
                | PredNode::IsFile(p)
                | PredNode::IsDir(p)
                | PredNode::IsEmptyDir(p)
                | PredNode::MetaIs(p, _, _) => Arc::new(BTreeSet::from([p])),
                PredNode::And(a, b) | PredNode::Or(a, b) => {
                    merge_sets(cached(a.index()), cached(b.index()))
                }
                PredNode::Not(a) => cached(a.index()),
            };
            self.store_pred_paths(id, set);
        }
        self.try_pred_paths(root).expect("computed")
    }

    /// Memoized path set of an expression (includes guard predicates).
    fn expr_paths(&self, root: u32) -> Arc<BTreeSet<FsPath>> {
        if let Some(cached) = self.try_expr_paths(root) {
            return cached;
        }
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if self.try_expr_paths(id).is_some() {
                continue;
            }
            let node = self.expr_node(id);
            if !expanded {
                stack.push((id, true));
                match node {
                    ExprNode::Seq(a, b) | ExprNode::If(_, a, b) => {
                        stack.push((a.index(), false));
                        stack.push((b.index(), false));
                    }
                    _ => {}
                }
                continue;
            }
            let cached = |i: u32| self.try_expr_paths(i).expect("computed");
            let set = match node {
                ExprNode::Skip | ExprNode::Error => Arc::new(BTreeSet::new()),
                ExprNode::Mkdir(p)
                | ExprNode::CreateFile(p, _)
                | ExprNode::Rm(p)
                | ExprNode::ChMeta(p, _, _) => Arc::new(BTreeSet::from([p])),
                ExprNode::Cp(a, b) => Arc::new(BTreeSet::from([a, b])),
                ExprNode::Seq(a, b) => merge_sets(cached(a.index()), cached(b.index())),
                ExprNode::If(p, a, b) => {
                    let guard = self.pred_paths(p.index());
                    let branches = merge_sets(cached(a.index()), cached(b.index()));
                    merge_sets(guard, branches)
                }
            };
            self.store_expr_paths(id, set);
        }
        self.try_expr_paths(root).expect("computed")
    }

    /// Memoized content set of an expression.
    fn expr_contents(&self, root: u32) -> Arc<BTreeSet<Content>> {
        if let Some(cached) = self.try_expr_contents(root) {
            return cached;
        }
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if self.try_expr_contents(id).is_some() {
                continue;
            }
            let node = self.expr_node(id);
            if !expanded {
                stack.push((id, true));
                match node {
                    ExprNode::Seq(a, b) | ExprNode::If(_, a, b) => {
                        stack.push((a.index(), false));
                        stack.push((b.index(), false));
                    }
                    _ => {}
                }
                continue;
            }
            let cached = |i: u32| self.try_expr_contents(i).expect("computed");
            let set = match node {
                ExprNode::CreateFile(_, c) => Arc::new(BTreeSet::from([c])),
                ExprNode::Seq(a, b) | ExprNode::If(_, a, b) => {
                    merge_sets(cached(a.index()), cached(b.index()))
                }
                _ => Arc::new(BTreeSet::new()),
            };
            self.store_expr_contents(id, set);
        }
        self.try_expr_contents(root).expect("computed")
    }

    fn stats(&self) -> ArenaStats {
        ArenaStats {
            pred_nodes: self.preds.iter().map(|s| self.read(s).entries.len()).sum(),
            expr_nodes: self.exprs.iter().map(|s| self.read(s).entries.len()).sum(),
            pred_dedup_hits: self.pred_hits.load(Ordering::Relaxed),
            expr_dedup_hits: self.expr_hits.load(Ordering::Relaxed),
        }
    }
}

/// Unions two shared sets, reusing either side when it already contains
/// the other (the common case for `Seq` spines, where the accumulated set
/// is a superset of each new leaf).
fn merge_sets<T: Ord + Copy>(a: Arc<BTreeSet<T>>, b: Arc<BTreeSet<T>>) -> Arc<BTreeSet<T>> {
    if b.iter().all(|x| a.contains(x)) {
        return a;
    }
    if a.iter().all(|x| b.contains(x)) {
        return b;
    }
    let mut out = (*a).clone();
    out.extend(b.iter().copied());
    Arc::new(out)
}

fn ir() -> &'static IrArena {
    static IR: OnceLock<IrArena> = OnceLock::new();
    IR.get_or_init(IrArena::new)
}

/// Interns a predicate node, returning its process-stable id.
pub(crate) fn intern_pred(node: PredNode) -> u32 {
    ir().intern_pred(node)
}

/// Interns an expression node, returning its process-stable id.
pub(crate) fn intern_expr(node: ExprNode) -> u32 {
    ir().intern_expr(node)
}

/// The node a predicate id denotes, one level deep.
pub(crate) fn pred_node(id: u32) -> PredNode {
    ir().pred_node(id)
}

/// The node an expression id denotes, one level deep.
pub(crate) fn expr_node(id: u32) -> ExprNode {
    ir().expr_node(id)
}

/// Memoized AST node count of a predicate.
pub(crate) fn pred_size(id: u32) -> u64 {
    ir().pred_size(id)
}

/// Memoized AST node count of an expression.
pub(crate) fn expr_size(id: u32) -> u64 {
    ir().expr_size(id)
}

/// Memoized path set of a predicate.
pub(crate) fn pred_paths(id: u32) -> Arc<BTreeSet<FsPath>> {
    ir().pred_paths(id)
}

/// Memoized path set of an expression (includes guard predicates).
pub(crate) fn expr_paths(id: u32) -> Arc<BTreeSet<FsPath>> {
    ir().expr_paths(id)
}

/// Memoized content set of an expression.
pub(crate) fn expr_contents(id: u32) -> Arc<BTreeSet<Content>> {
    ir().expr_contents(id)
}

/// A snapshot of the arena's size and sharing counters.
///
/// The arena is process-global and append-only, so meaningful per-workload
/// numbers come from diffing two snapshots with [`ArenaStats::since`].
pub fn arena_stats() -> ArenaStats {
    ir().stats()
}

/// Number of shard-lock acquisitions that found their stripe held by
/// another thread and had to block (cumulative for the process).
pub fn arena_shard_contention() -> u64 {
    ir().contention.load(Ordering::Relaxed)
}

/// Publishes the arena's size and sharing counters into the current trace
/// session's registry. The arena is process-global and append-only, so
/// these land as high-water gauges (cumulative sizes), not per-run deltas;
/// per-workload deltas still come from [`ArenaStats::since`].
pub fn publish_arena_metrics() {
    if !rehearsal_trace::is_active() {
        return;
    }
    let s = arena_stats();
    rehearsal_trace::gauge_max("arena.pred_nodes", s.pred_nodes as i64);
    rehearsal_trace::gauge_max("arena.expr_nodes", s.expr_nodes as i64);
    rehearsal_trace::gauge_max("arena.pred_dedup_hits", s.pred_dedup_hits as i64);
    rehearsal_trace::gauge_max("arena.expr_dedup_hits", s.expr_dedup_hits as i64);
    rehearsal_trace::gauge_max("arena.shard_contention", arena_shard_contention() as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_ratio_is_zero_on_empty_stats() {
        // A fresh (all-zero) snapshot must not divide by zero.
        let empty = ArenaStats::default();
        assert_eq!(empty.requests(), 0);
        assert_eq!(empty.dedup_ratio(), 0.0);

        // Same for a diff of identical snapshots — the common way to get
        // an all-zero value in practice.
        let now = arena_stats();
        assert_eq!(now.since(&now).dedup_ratio(), 0.0);
    }

    #[test]
    fn dedup_ratio_counts_hits_over_requests() {
        let s = ArenaStats {
            pred_nodes: 2,
            expr_nodes: 3,
            pred_dedup_hits: 10,
            expr_dedup_hits: 5,
        };
        assert_eq!(s.requests(), 20);
        assert!((s.dedup_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn constants_keep_their_seeded_ids() {
        assert_eq!(intern_pred(PredNode::True), 0);
        assert_eq!(intern_pred(PredNode::False), 1);
        assert_eq!(intern_expr(ExprNode::Skip), 0);
        assert_eq!(intern_expr(ExprNode::Error), 1);
        assert!(matches!(pred_node(0), PredNode::True));
        assert!(matches!(pred_node(1), PredNode::False));
        assert!(matches!(expr_node(0), ExprNode::Skip));
        assert!(matches!(expr_node(1), ExprNode::Error));
    }

    #[test]
    fn handles_encode_their_shard() {
        let p = crate::FsPath::parse("/arena-shard-test").unwrap();
        let id = intern_expr(ExprNode::Mkdir(p));
        assert_eq!(
            shard_of(id),
            rehearsal_sync::shard_index(&ExprNode::Mkdir(p), N_SHARDS)
        );
        // Interning again returns the same handle.
        assert_eq!(intern_expr(ExprNode::Mkdir(p)), id);
    }
}
