//! The process-global hash-consing arena backing the FS IR.
//!
//! [`Pred`](crate::Pred) and [`Expr`](crate::Expr) are `Copy`-able `u32`
//! handles into this arena, in exactly the way the path/content interner already
//! makes paths and contents `Copy` handles. Interning a node first looks it
//! up structurally: building the same tree twice yields the *same* handle,
//! so `==` on handles is O(1) structural equality and common subtrees are
//! stored (and later analyzed) exactly once.
//!
//! # Lifecycle
//!
//! The arena is **process-global and append-only**, like the path/content
//! interner it composes with: node ids stay valid for the lifetime of the
//! process, across every analysis session, and are never invalidated or
//! garbage-collected. This is the right trade for Rehearsal's workloads —
//! resource models are built from a small vocabulary of idioms
//! (`ensure_dir`, `overwrite`, …) over an interned path universe, so the
//! arena saturates quickly and every later analysis re-uses the same nodes.
//! Per-expression *analysis* results that depend only on structure (path
//! sets, node counts) are memoized here as well; analysis state that
//! depends on a solver context (symbolic states, formulas) is memoized
//! per-`Encoder` in `rehearsal-core` instead, keyed by these ids.
//!
//! Nodes hold only `Copy` data (interned paths/contents and child ids), so
//! lookups copy nodes out of the store and no lock is held during
//! recursion. Reads take a shared `RwLock` guard, so fleet worker threads
//! traverse the arena in parallel; the remaining per-node cost under heavy
//! multi-core load is the readers' shared lock word (entries are immutable
//! once published, so a lock-free read path over the append-only store is
//! the natural next step if that ever shows up in profiles).

use crate::ast::{ExprNode, PredNode};
use crate::path::{Content, FsPath};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, OnceLock, RwLock};

/// One interned predicate with its memoized structural facts.
#[derive(Debug)]
struct PredEntry {
    node: PredNode,
    /// Number of AST nodes (children are interned first, so this is
    /// computed eagerly in O(1) at interning time).
    size: u64,
    /// Lazily computed, shared set of mentioned paths.
    paths: Option<Arc<BTreeSet<FsPath>>>,
}

/// One interned expression with its memoized structural facts.
#[derive(Debug)]
struct ExprEntry {
    node: ExprNode,
    size: u64,
    paths: Option<Arc<BTreeSet<FsPath>>>,
    contents: Option<Arc<BTreeSet<Content>>>,
}

/// Counters describing the arena (see [`arena_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct predicate nodes interned so far.
    pub pred_nodes: usize,
    /// Distinct expression nodes interned so far.
    pub expr_nodes: usize,
    /// Predicate interning requests served by an existing node.
    pub pred_dedup_hits: u64,
    /// Expression interning requests served by an existing node.
    pub expr_dedup_hits: u64,
}

impl ArenaStats {
    /// Total interning requests (constructed + deduplicated).
    pub fn requests(&self) -> u64 {
        self.pred_nodes as u64
            + self.expr_nodes as u64
            + self.pred_dedup_hits
            + self.expr_dedup_hits
    }

    /// Fraction of interning requests answered by sharing an existing node
    /// (0.0 when nothing has been interned).
    pub fn dedup_ratio(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            return 0.0;
        }
        (self.pred_dedup_hits + self.expr_dedup_hits) as f64 / requests as f64
    }

    /// The arena growth between two snapshots (`self` taken after `base`).
    pub fn since(&self, base: &ArenaStats) -> ArenaStats {
        ArenaStats {
            pred_nodes: self.pred_nodes - base.pred_nodes,
            expr_nodes: self.expr_nodes - base.expr_nodes,
            pred_dedup_hits: self.pred_dedup_hits - base.pred_dedup_hits,
            expr_dedup_hits: self.expr_dedup_hits - base.expr_dedup_hits,
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct IrStore {
    preds: Vec<PredEntry>,
    pred_lookup: HashMap<PredNode, u32>,
    exprs: Vec<ExprEntry>,
    expr_lookup: HashMap<ExprNode, u32>,
    pred_hits: u64,
    expr_hits: u64,
}

impl IrStore {
    fn new() -> IrStore {
        let mut s = IrStore::default();
        // Fixed ids for the constants, mirroring the solver's `Ctx`:
        // `Pred::TRUE`/`Pred::FALSE` and `Expr::SKIP`/`Expr::ERROR` are
        // `const` handles relying on this seeding order.
        s.intern_pred(PredNode::True); // 0
        s.intern_pred(PredNode::False); // 1
        s.intern_expr(ExprNode::Skip); // 0
        s.intern_expr(ExprNode::Error); // 1
        s.pred_hits = 0;
        s.expr_hits = 0;
        s
    }

    pub(crate) fn intern_pred(&mut self, node: PredNode) -> u32 {
        if let Some(&id) = self.pred_lookup.get(&node) {
            self.pred_hits += 1;
            return id;
        }
        let size = match node {
            PredNode::True
            | PredNode::False
            | PredNode::DoesNotExist(_)
            | PredNode::IsFile(_)
            | PredNode::IsDir(_)
            | PredNode::IsEmptyDir(_)
            | PredNode::MetaIs(_, _, _) => 1,
            PredNode::And(a, b) | PredNode::Or(a, b) => {
                1 + self.preds[a.index() as usize].size + self.preds[b.index() as usize].size
            }
            PredNode::Not(a) => 1 + self.preds[a.index() as usize].size,
        };
        let id = self.preds.len() as u32;
        self.preds.push(PredEntry {
            node,
            size,
            paths: None,
        });
        self.pred_lookup.insert(node, id);
        id
    }

    pub(crate) fn intern_expr(&mut self, node: ExprNode) -> u32 {
        if let Some(&id) = self.expr_lookup.get(&node) {
            self.expr_hits += 1;
            return id;
        }
        let size = match node {
            ExprNode::Skip
            | ExprNode::Error
            | ExprNode::Mkdir(_)
            | ExprNode::CreateFile(_, _)
            | ExprNode::Rm(_)
            | ExprNode::Cp(_, _)
            | ExprNode::ChMeta(_, _, _) => 1,
            ExprNode::Seq(a, b) => {
                1 + self.exprs[a.index() as usize].size + self.exprs[b.index() as usize].size
            }
            ExprNode::If(p, a, b) => {
                1 + self.preds[p.index() as usize].size
                    + self.exprs[a.index() as usize].size
                    + self.exprs[b.index() as usize].size
            }
        };
        let id = self.exprs.len() as u32;
        self.exprs.push(ExprEntry {
            node,
            size,
            paths: None,
            contents: None,
        });
        self.expr_lookup.insert(node, id);
        id
    }

    pub(crate) fn pred_node(&self, id: u32) -> PredNode {
        self.preds[id as usize].node
    }

    pub(crate) fn expr_node(&self, id: u32) -> ExprNode {
        self.exprs[id as usize].node
    }

    pub(crate) fn pred_size(&self, id: u32) -> u64 {
        self.preds[id as usize].size
    }

    pub(crate) fn expr_size(&self, id: u32) -> u64 {
        self.exprs[id as usize].size
    }

    /// Already-computed path set of a predicate, if any (read-only probe
    /// so the common cached case needs no exclusive lock).
    pub(crate) fn try_pred_paths(&self, id: u32) -> Option<Arc<BTreeSet<FsPath>>> {
        self.preds[id as usize].paths.as_ref().map(Arc::clone)
    }

    /// Already-computed path set of an expression, if any.
    pub(crate) fn try_expr_paths(&self, id: u32) -> Option<Arc<BTreeSet<FsPath>>> {
        self.exprs[id as usize].paths.as_ref().map(Arc::clone)
    }

    /// Already-computed content set of an expression, if any.
    pub(crate) fn try_expr_contents(&self, id: u32) -> Option<Arc<BTreeSet<Content>>> {
        self.exprs[id as usize].contents.as_ref().map(Arc::clone)
    }

    /// Memoized path set of a predicate, computed with an explicit stack
    /// (two-phase DFS) so the single lock acquisition covers the whole
    /// computation without recursion.
    pub(crate) fn pred_paths(&mut self, root: u32) -> Arc<BTreeSet<FsPath>> {
        if let Some(cached) = &self.preds[root as usize].paths {
            return Arc::clone(cached);
        }
        // (id, children_visited)
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if self.preds[id as usize].paths.is_some() {
                continue;
            }
            let node = self.preds[id as usize].node;
            if !expanded {
                stack.push((id, true));
                match node {
                    PredNode::And(a, b) | PredNode::Or(a, b) => {
                        stack.push((a.index(), false));
                        stack.push((b.index(), false));
                    }
                    PredNode::Not(a) => stack.push((a.index(), false)),
                    _ => {}
                }
                continue;
            }
            let set = match node {
                PredNode::True | PredNode::False => Arc::new(BTreeSet::new()),
                PredNode::DoesNotExist(p)
                | PredNode::IsFile(p)
                | PredNode::IsDir(p)
                | PredNode::IsEmptyDir(p)
                | PredNode::MetaIs(p, _, _) => Arc::new(BTreeSet::from([p])),
                PredNode::And(a, b) | PredNode::Or(a, b) => merge_sets(
                    self.cached_pred_paths(a.index()),
                    self.cached_pred_paths(b.index()),
                ),
                PredNode::Not(a) => self.cached_pred_paths(a.index()),
            };
            self.preds[id as usize].paths = Some(set);
        }
        self.cached_pred_paths(root)
    }

    fn cached_pred_paths(&self, id: u32) -> Arc<BTreeSet<FsPath>> {
        Arc::clone(self.preds[id as usize].paths.as_ref().expect("computed"))
    }

    fn cached_expr_paths(&self, id: u32) -> Arc<BTreeSet<FsPath>> {
        Arc::clone(self.exprs[id as usize].paths.as_ref().expect("computed"))
    }

    /// Memoized path set of an expression (includes guard predicates).
    pub(crate) fn expr_paths(&mut self, root: u32) -> Arc<BTreeSet<FsPath>> {
        if let Some(cached) = &self.exprs[root as usize].paths {
            return Arc::clone(cached);
        }
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if self.exprs[id as usize].paths.is_some() {
                continue;
            }
            let node = self.exprs[id as usize].node;
            if !expanded {
                stack.push((id, true));
                match node {
                    ExprNode::Seq(a, b) => {
                        stack.push((a.index(), false));
                        stack.push((b.index(), false));
                    }
                    ExprNode::If(_, a, b) => {
                        stack.push((a.index(), false));
                        stack.push((b.index(), false));
                    }
                    _ => {}
                }
                continue;
            }
            let set = match node {
                ExprNode::Skip | ExprNode::Error => Arc::new(BTreeSet::new()),
                ExprNode::Mkdir(p)
                | ExprNode::CreateFile(p, _)
                | ExprNode::Rm(p)
                | ExprNode::ChMeta(p, _, _) => Arc::new(BTreeSet::from([p])),
                ExprNode::Cp(a, b) => Arc::new(BTreeSet::from([a, b])),
                ExprNode::Seq(a, b) => merge_sets(
                    self.cached_expr_paths(a.index()),
                    self.cached_expr_paths(b.index()),
                ),
                ExprNode::If(p, a, b) => {
                    let guard = self.pred_paths(p.index());
                    let branches = merge_sets(
                        self.cached_expr_paths(a.index()),
                        self.cached_expr_paths(b.index()),
                    );
                    merge_sets(guard, branches)
                }
            };
            self.exprs[id as usize].paths = Some(set);
        }
        self.cached_expr_paths(root)
    }

    /// Memoized content set of an expression.
    pub(crate) fn expr_contents(&mut self, root: u32) -> Arc<BTreeSet<Content>> {
        if let Some(cached) = &self.exprs[root as usize].contents {
            return Arc::clone(cached);
        }
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if self.exprs[id as usize].contents.is_some() {
                continue;
            }
            let node = self.exprs[id as usize].node;
            if !expanded {
                stack.push((id, true));
                match node {
                    ExprNode::Seq(a, b) | ExprNode::If(_, a, b) => {
                        stack.push((a.index(), false));
                        stack.push((b.index(), false));
                    }
                    _ => {}
                }
                continue;
            }
            let cached = |i: u32| -> Arc<BTreeSet<Content>> {
                Arc::clone(self.exprs[i as usize].contents.as_ref().expect("computed"))
            };
            let set = match node {
                ExprNode::CreateFile(_, c) => Arc::new(BTreeSet::from([c])),
                ExprNode::Seq(a, b) | ExprNode::If(_, a, b) => {
                    merge_sets(cached(a.index()), cached(b.index()))
                }
                _ => Arc::new(BTreeSet::new()),
            };
            self.exprs[id as usize].contents = Some(set);
        }
        Arc::clone(
            self.exprs[root as usize]
                .contents
                .as_ref()
                .expect("computed"),
        )
    }

    fn stats(&self) -> ArenaStats {
        ArenaStats {
            pred_nodes: self.preds.len(),
            expr_nodes: self.exprs.len(),
            pred_dedup_hits: self.pred_hits,
            expr_dedup_hits: self.expr_hits,
        }
    }
}

/// Unions two shared sets, reusing either side when it already contains
/// the other (the common case for `Seq` spines, where the accumulated set
/// is a superset of each new leaf).
fn merge_sets<T: Ord + Copy>(a: Arc<BTreeSet<T>>, b: Arc<BTreeSet<T>>) -> Arc<BTreeSet<T>> {
    if b.iter().all(|x| a.contains(x)) {
        return a;
    }
    if a.iter().all(|x| b.contains(x)) {
        return b;
    }
    let mut out = (*a).clone();
    out.extend(b.iter().copied());
    Arc::new(out)
}

fn ir() -> &'static RwLock<IrStore> {
    static IR: OnceLock<RwLock<IrStore>> = OnceLock::new();
    IR.get_or_init(|| RwLock::new(IrStore::new()))
}

/// Mutating access (interning, filling memo caches): exclusive lock.
pub(crate) fn with_ir<R>(f: impl FnOnce(&mut IrStore) -> R) -> R {
    let mut guard = ir().write().expect("IR arena poisoned");
    f(&mut guard)
}

/// Read-only access (node/size lookups — the per-node hot path of every
/// evaluator and analysis): shared lock, so fleet worker threads running
/// independent analyses read the arena in parallel.
pub(crate) fn read_ir<R>(f: impl FnOnce(&IrStore) -> R) -> R {
    let guard = ir().read().expect("IR arena poisoned");
    f(&guard)
}

/// A snapshot of the arena's size and sharing counters.
///
/// The arena is process-global and append-only, so meaningful per-workload
/// numbers come from diffing two snapshots with [`ArenaStats::since`].
pub fn arena_stats() -> ArenaStats {
    with_ir(|ir| ir.stats())
}

/// Publishes the arena's size and sharing counters into the current trace
/// session's registry. The arena is process-global and append-only, so
/// these land as high-water gauges (cumulative sizes), not per-run deltas;
/// per-workload deltas still come from [`ArenaStats::since`].
pub fn publish_arena_metrics() {
    if !rehearsal_trace::is_active() {
        return;
    }
    let s = arena_stats();
    rehearsal_trace::gauge_max("arena.pred_nodes", s.pred_nodes as i64);
    rehearsal_trace::gauge_max("arena.expr_nodes", s.expr_nodes as i64);
    rehearsal_trace::gauge_max("arena.pred_dedup_hits", s.pred_dedup_hits as i64);
    rehearsal_trace::gauge_max("arena.expr_dedup_hits", s.expr_dedup_hits as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_ratio_is_zero_on_empty_stats() {
        // A fresh (all-zero) snapshot must not divide by zero.
        let empty = ArenaStats::default();
        assert_eq!(empty.requests(), 0);
        assert_eq!(empty.dedup_ratio(), 0.0);

        // Same for a diff of identical snapshots — the common way to get
        // an all-zero value in practice.
        let now = arena_stats();
        assert_eq!(now.since(&now).dedup_ratio(), 0.0);
    }

    #[test]
    fn dedup_ratio_counts_hits_over_requests() {
        let s = ArenaStats {
            pred_nodes: 2,
            expr_nodes: 3,
            pred_dedup_hits: 10,
            expr_dedup_hits: 5,
        };
        assert_eq!(s.requests(), 20);
        assert!((s.dedup_ratio() - 0.75).abs() < 1e-9);
    }
}
