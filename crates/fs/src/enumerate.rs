//! Brute-force enumeration of filesystem states and reference equivalence
//! checking.
//!
//! These are test oracles and baselines: the paper's symbolic checker must
//! agree with exhaustive enumeration on small programs. This module also
//! backs the "naive dynamic checking" baseline discussed in §4.5 of the
//! paper (their Docker prototype took hours; ours enumerates abstract states
//! instead of running containers, which preserves the point that explicit
//! exploration scales poorly).

use crate::ast::Expr;
use crate::eval::eval;
use crate::path::{Content, FsPath};
use crate::state::{FileState, FileSystem};
use std::collections::BTreeSet;

/// All per-path possibilities for enumeration: absent, a directory, or a
/// file with one of the given contents.
fn per_path_states(contents: &[Content]) -> Vec<Option<FileState>> {
    let mut out = vec![None, Some(FileState::DIR)];
    for &c in contents {
        out.push(Some(FileState::file(c)));
    }
    out
}

/// Enumerates every filesystem over the given paths and contents.
///
/// The number of states is `(2 + contents.len())^paths.len()`; keep both
/// small. Intended for tests and baselines.
///
/// Metadata is enumerated as all-[`Unmanaged`](crate::MetaValue::Unmanaged):
/// managed metadata only ever arises from `chown`/`chgrp`/`chmod` steps of
/// the programs under test, which is sufficient to distinguish programs
/// that write different metadata (the oracle replays the writes) though
/// not ones that only *read* pre-managed metadata.
///
/// # Examples
///
/// ```
/// use rehearsal_fs::{enumerate_filesystems, Content, FsPath};
/// let paths = vec![FsPath::parse("/a")?];
/// let all = enumerate_filesystems(&paths, &[Content::intern("c")]);
/// assert_eq!(all.len(), 3); // absent, dir, file("c")
/// # Ok::<(), rehearsal_fs::ParsePathError>(())
/// ```
pub fn enumerate_filesystems(paths: &[FsPath], contents: &[Content]) -> Vec<FileSystem> {
    let options = per_path_states(contents);
    let mut out = vec![FileSystem::new()];
    for &p in paths {
        let mut next = Vec::with_capacity(out.len() * options.len());
        for fs in &out {
            for opt in &options {
                let mut fs2 = fs.clone();
                if let Some(state) = opt {
                    fs2.insert(p, *state);
                }
                next.push(fs2);
            }
        }
        out = next;
    }
    out
}

/// The observable outcome of running a program: a final state restricted to
/// a path domain, or an error.
pub type Outcome = Result<FileSystem, crate::eval::ExecError>;

/// Runs `e` on `fs` and restricts a successful result to `domain`.
pub fn observe(e: Expr, fs: &FileSystem, domain: &BTreeSet<FsPath>) -> Outcome {
    eval(e, fs).map(|out| out.restrict(domain))
}

/// Exhaustively checks `e1 ≡ e2` over all filesystems built from `paths` ×
/// `contents`. Returns a counterexample input state on failure.
///
/// The comparison restricts outputs to the union of both programs' textual
/// paths together with `paths`, mirroring the bounded-domain comparison of
/// the symbolic checker.
pub fn check_equiv_brute_force(
    e1: Expr,
    e2: Expr,
    paths: &[FsPath],
    contents: &[Content],
) -> Result<(), FileSystem> {
    let mut domain: BTreeSet<FsPath> = (*e1.paths()).clone();
    domain.extend(e2.paths().iter().copied());
    domain.extend(paths.iter().copied());
    for fs in enumerate_filesystems(paths, contents) {
        let o1 = observe(e1, &fs, &domain);
        let o2 = observe(e2, &fs, &domain);
        if o1 != o2 {
            return Err(fs);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pred;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn enumeration_counts() {
        let c = Content::intern("c");
        let all = enumerate_filesystems(&[p("/a"), p("/b")], &[c]);
        assert_eq!(all.len(), 9);
        let unique: BTreeSet<_> = all.into_iter().collect();
        assert_eq!(unique.len(), 9, "all enumerated states distinct");
    }

    #[test]
    fn equivalent_programs_pass() {
        // Guarded mkdir ≡ its expansion (paper §4.3).
        let a = p("/a");
        let e1 = Expr::if_then(Pred::is_dir(a).not(), Expr::mkdir(a));
        let e2 = Expr::if_(
            Pred::does_not_exist(a),
            Expr::mkdir(a),
            Expr::if_(Pred::is_file(a), Expr::ERROR, Expr::SKIP),
        );
        let c = Content::intern("z");
        check_equiv_brute_force(e1, e2, &[FsPath::root(), a], &[c]).expect("equivalent");
    }

    #[test]
    fn inequivalent_programs_yield_counterexample() {
        // The paper's emptydir?-vs-dir? example (§4.1): distinguishable only
        // by a state with a child inside /a.
        let a = p("/a");
        let child = p("/a/x");
        let e1 = Expr::if_(Pred::is_empty_dir(a), Expr::SKIP, Expr::ERROR);
        let e2 = Expr::if_(Pred::is_dir(a), Expr::SKIP, Expr::ERROR);
        let c = Content::intern("w");
        let cex = check_equiv_brute_force(e1, e2, &[a, child], &[c]).expect_err("inequivalent");
        assert!(cex.is_dir(a));
        assert!(!cex.not_exists(child), "counterexample must populate /a");
    }

    #[test]
    fn order_of_conflicting_writes_matters() {
        let f = p("/f");
        let c1 = Content::intern("one");
        let c2 = Content::intern("two");
        let w1 = Expr::create_file(f, c1);
        let w2 = Expr::create_file(f, c2);
        let e12 = w1.seq(w2);
        let e21 = w2.seq(w1);
        // Both orders always error (second creat sees existing file), so the
        // sequential compositions are in fact equivalent...
        check_equiv_brute_force(e12, e21, &[FsPath::root(), f], &[c1, c2])
            .expect("both orders error");
        // ...but guarded overwrite-style writes differ by order.
        let g1 = Expr::if_(
            Pred::does_not_exist(f),
            Expr::create_file(f, c1),
            Expr::SKIP,
        );
        let g2 = Expr::if_(
            Pred::does_not_exist(f),
            Expr::create_file(f, c2),
            Expr::SKIP,
        );
        let a = g1.seq(g2);
        let b = g2.seq(g1);
        let cex = check_equiv_brute_force(a, b, &[FsPath::root(), f], &[c1, c2])
            .expect_err("results differ when /f absent");
        assert!(cex.not_exists(f));
    }
}
