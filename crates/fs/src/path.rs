//! Interned filesystem paths.
//!
//! Paths form the trie rooted at `/`. Every path is an interned handle, so
//! equality, hashing, parent lookup, and ancestor tests are cheap — these
//! operations dominate the determinacy analysis.

use crate::intern::with_store;
use std::fmt;

/// An interned absolute filesystem path.
///
/// # Examples
///
/// ```
/// use rehearsal_fs::FsPath;
/// let etc = FsPath::parse("/etc").unwrap();
/// let conf = etc.join("apache2").join("apache2.conf");
/// assert_eq!(conf.to_string(), "/etc/apache2/apache2.conf");
/// assert!(etc.is_ancestor_of(conf));
/// assert_eq!(conf.parent().unwrap().to_string(), "/etc/apache2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FsPath(u32);

/// An error from [`FsPath::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    input: String,
    message: &'static str,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path {:?}: {}", self.input, self.message)
    }
}

impl std::error::Error for ParsePathError {}

impl FsPath {
    /// The root path `/`.
    pub fn root() -> FsPath {
        FsPath(0)
    }

    /// Parses an absolute path such as `/etc/hosts`.
    ///
    /// Consecutive and trailing slashes are rejected, as are relative paths,
    /// `.`/`..` segments, and empty input.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePathError`] on malformed input.
    pub fn parse(text: &str) -> Result<FsPath, ParsePathError> {
        let err = |message| ParsePathError {
            input: text.to_string(),
            message,
        };
        if text.is_empty() {
            return Err(err("empty path"));
        }
        if !text.starts_with('/') {
            return Err(err("path must be absolute"));
        }
        if text == "/" {
            return Ok(FsPath::root());
        }
        let mut current = FsPath::root();
        for segment in text[1..].split('/') {
            if segment.is_empty() {
                return Err(err("empty path segment"));
            }
            if segment == "." || segment == ".." {
                return Err(err("'.' and '..' segments are not supported"));
            }
            current = current.join(segment);
        }
        Ok(current)
    }

    /// Appends one component to this path.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains `/`.
    pub fn join(self, name: &str) -> FsPath {
        assert!(
            !name.is_empty() && !name.contains('/'),
            "path component must be a non-empty segment without '/': {name:?}"
        );
        FsPath(with_store(|s| s.intern_child(self.0, name)))
    }

    /// The parent directory, or `None` for the root.
    pub fn parent(self) -> Option<FsPath> {
        with_store(|s| s.paths[self.0 as usize].parent.map(FsPath))
    }

    /// The last component, or `None` for the root.
    pub fn basename(self) -> Option<String> {
        if self == FsPath::root() {
            return None;
        }
        Some(with_store(|s| s.paths[self.0 as usize].name.to_string()))
    }

    /// The number of components (0 for the root).
    pub fn depth(self) -> usize {
        with_store(|s| s.paths[self.0 as usize].depth as usize)
    }

    /// Whether `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(self, other: FsPath) -> bool {
        if self == other {
            return false;
        }
        with_store(|s| {
            let mut cur = s.paths[other.0 as usize].parent;
            while let Some(p) = cur {
                if p == self.0 {
                    return true;
                }
                cur = s.paths[p as usize].parent;
            }
            false
        })
    }

    /// Whether `self` is the immediate parent of `other`.
    pub fn is_parent_of(self, other: FsPath) -> bool {
        other.parent() == Some(self)
    }

    /// All strict ancestors from the immediate parent up to the root.
    pub fn ancestors(self) -> Vec<FsPath> {
        let mut out = Vec::new();
        let mut cur = self.parent();
        while let Some(p) = cur {
            out.push(p);
            cur = p.parent();
        }
        out
    }

    /// The components of this path from the root down.
    pub fn components(self) -> Vec<String> {
        let mut out = Vec::new();
        with_store(|s| {
            let mut cur = self.0;
            while let Some(parent) = s.paths[cur as usize].parent {
                out.push(s.paths[cur as usize].name.to_string());
                cur = parent;
            }
        });
        out.reverse();
        out
    }

    /// The raw interned index (stable for the process lifetime).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == FsPath::root() {
            return write!(f, "/");
        }
        for c in self.components() {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for FsPath {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<FsPath, ParsePathError> {
        FsPath::parse(s)
    }
}

/// Interned file contents (a string).
///
/// # Examples
///
/// ```
/// use rehearsal_fs::Content;
/// let a = Content::intern("syntax on");
/// let b = Content::intern("syntax on");
/// assert_eq!(a, b);
/// assert_eq!(a.to_string(), "syntax on");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Content(u32);

impl Content {
    /// Interns a content string.
    pub fn intern(text: &str) -> Content {
        Content(with_store(|s| s.intern_string(text)))
    }

    /// The raw interned index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Recovers the string.
    pub fn as_string(self) -> String {
        with_store(|s| s.strings[self.0 as usize].to_string())
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let r = FsPath::root();
        assert_eq!(r.to_string(), "/");
        assert_eq!(r.parent(), None);
        assert_eq!(r.basename(), None);
        assert_eq!(r.depth(), 0);
        assert!(r.ancestors().is_empty());
    }

    #[test]
    fn parse_and_display() {
        let p = FsPath::parse("/usr/bin/vim").unwrap();
        assert_eq!(p.to_string(), "/usr/bin/vim");
        assert_eq!(p.depth(), 3);
        assert_eq!(p.basename().as_deref(), Some("vim"));
        assert_eq!(p.parent().unwrap().to_string(), "/usr/bin");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FsPath::parse("").is_err());
        assert!(FsPath::parse("etc/hosts").is_err());
        assert!(FsPath::parse("/etc//hosts").is_err());
        assert!(FsPath::parse("/etc/").is_err());
        assert!(FsPath::parse("/a/../b").is_err());
    }

    #[test]
    fn interning_is_stable() {
        let a = FsPath::parse("/etc/hosts").unwrap();
        let b = FsPath::root().join("etc").join("hosts");
        assert_eq!(a, b);
    }

    #[test]
    fn ancestor_relations() {
        let etc = FsPath::parse("/etc").unwrap();
        let apache = FsPath::parse("/etc/apache2").unwrap();
        let conf = FsPath::parse("/etc/apache2/apache2.conf").unwrap();
        assert!(etc.is_ancestor_of(conf));
        assert!(apache.is_ancestor_of(conf));
        assert!(!conf.is_ancestor_of(etc));
        assert!(!etc.is_ancestor_of(etc));
        assert!(apache.is_parent_of(conf));
        assert!(!etc.is_parent_of(conf));
        assert!(FsPath::root().is_ancestor_of(etc));
        assert_eq!(conf.ancestors(), vec![apache, etc, FsPath::root()]);
    }

    #[test]
    fn components_roundtrip() {
        let p = FsPath::parse("/home/carol/.vimrc").unwrap();
        assert_eq!(p.components(), vec!["home", "carol", ".vimrc"]);
    }

    #[test]
    fn content_interning() {
        let a = Content::intern("x");
        let b = Content::intern("x");
        let c = Content::intern("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(c.as_string(), "y");
    }

    #[test]
    #[should_panic]
    fn join_rejects_slash() {
        FsPath::root().join("a/b");
    }
}
