//! Concrete filesystem states.
//!
//! A filesystem (`σ` in the paper) is a finite map from paths to file
//! states. Absent paths "do not exist"; present paths are directories or
//! files with interned content. Every present path additionally carries a
//! [`Meta`] triple (owner, group, mode) whose fields default to
//! [`Unmanaged`](crate::MetaValue::Unmanaged) — so states built without
//! metadata compare exactly as they did in the metadata-free model.

use crate::meta::{Meta, MetaField};
use crate::path::{Content, FsPath};
use std::collections::BTreeMap;
use std::fmt;

/// The state of one path: a directory or a file with contents, plus its
/// metadata triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FileState {
    /// A directory.
    Dir(Meta),
    /// A regular file with the given content.
    File(Content, Meta),
}

impl FileState {
    /// A directory with unmanaged metadata (the common case).
    pub const DIR: FileState = FileState::Dir(Meta::UNMANAGED);

    /// A file with unmanaged metadata.
    pub fn file(content: Content) -> FileState {
        FileState::File(content, Meta::UNMANAGED)
    }

    /// This state's metadata triple.
    pub fn meta(self) -> Meta {
        match self {
            FileState::Dir(m) | FileState::File(_, m) => m,
        }
    }

    /// A copy with the metadata replaced.
    #[must_use]
    pub fn with_meta(self, meta: Meta) -> FileState {
        match self {
            FileState::Dir(_) => FileState::Dir(meta),
            FileState::File(c, _) => FileState::File(c, meta),
        }
    }
}

impl fmt::Display for FileState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let meta = self.meta();
        match self {
            FileState::Dir(_) => write!(f, "dir")?,
            FileState::File(c, _) => write!(f, "file({:?})", c.as_string())?,
        }
        if !meta.is_unmanaged() {
            write!(f, " [{meta}]")?;
        }
        Ok(())
    }
}

/// A concrete filesystem: a finite map from paths to [`FileState`]s.
///
/// # Examples
///
/// ```
/// use rehearsal_fs::{FileSystem, FileState, FsPath, Content};
/// let etc = FsPath::parse("/etc")?;
/// let fs = FileSystem::with_root().set(etc, FileState::DIR);
/// assert!(fs.is_dir(etc));
/// assert!(fs.is_empty_dir(etc));
/// assert!(fs.not_exists(etc.join("hosts")));
/// # Ok::<(), rehearsal_fs::ParsePathError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileSystem {
    entries: BTreeMap<FsPath, FileState>,
}

impl FileSystem {
    /// An empty filesystem — even the root is absent.
    pub fn new() -> FileSystem {
        FileSystem::default()
    }

    /// A filesystem containing only the root directory.
    pub fn with_root() -> FileSystem {
        FileSystem::new().set(FsPath::root(), FileState::DIR)
    }

    /// Returns a copy with `path` set to `state` (builder style).
    #[must_use]
    pub fn set(mut self, path: FsPath, state: FileState) -> FileSystem {
        self.entries.insert(path, state);
        self
    }

    /// In-place insert.
    pub fn insert(&mut self, path: FsPath, state: FileState) {
        self.entries.insert(path, state);
    }

    /// In-place removal.
    pub fn remove(&mut self, path: FsPath) {
        self.entries.remove(&path);
    }

    /// The state of `path`, if present.
    pub fn get(&self, path: FsPath) -> Option<FileState> {
        self.entries.get(&path).copied()
    }

    /// The metadata of `path`, if present.
    pub fn meta(&self, path: FsPath) -> Option<Meta> {
        self.get(path).map(FileState::meta)
    }

    /// Manages one metadata field of an existing path in place. Returns
    /// `false` (and does nothing) when the path is absent.
    pub fn set_meta_field(&mut self, path: FsPath, field: MetaField, value: Content) -> bool {
        match self.entries.get_mut(&path) {
            Some(state) => {
                *state = state.with_meta(state.meta().with(field, value));
                true
            }
            None => false,
        }
    }

    /// `file?(p)`.
    pub fn is_file(&self, path: FsPath) -> bool {
        matches!(self.get(path), Some(FileState::File(_, _)))
    }

    /// `dir?(p)`.
    pub fn is_dir(&self, path: FsPath) -> bool {
        matches!(self.get(path), Some(FileState::Dir(_)))
    }

    /// `none?(p)`.
    pub fn not_exists(&self, path: FsPath) -> bool {
        self.get(path).is_none()
    }

    /// `emptydir?(p)`: a directory with no children anywhere in the map.
    pub fn is_empty_dir(&self, path: FsPath) -> bool {
        self.is_dir(path) && !self.entries.keys().any(|&q| path.is_parent_of(q))
    }

    /// Iterates over `(path, state)` entries in path order.
    pub fn iter(&self) -> impl Iterator<Item = (FsPath, FileState)> + '_ {
        self.entries.iter().map(|(&p, &s)| (p, s))
    }

    /// Number of present paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no path is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Restricts this filesystem to the given set of paths (used when
    /// comparing states over a bounded domain).
    #[must_use]
    pub fn restrict(&self, paths: &std::collections::BTreeSet<FsPath>) -> FileSystem {
        FileSystem {
            entries: self
                .entries
                .iter()
                .filter(|(p, _)| paths.contains(p))
                .map(|(&p, &s)| (p, s))
                .collect(),
        }
    }
}

impl FromIterator<(FsPath, FileState)> for FileSystem {
    fn from_iter<T: IntoIterator<Item = (FsPath, FileState)>>(iter: T) -> FileSystem {
        FileSystem {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(FsPath, FileState)> for FileSystem {
    fn extend<T: IntoIterator<Item = (FsPath, FileState)>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

impl fmt::Display for FileSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "⟨")?;
        for (p, s) in &self.entries {
            writeln!(f, "  {p} = {s}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn basic_queries() {
        let fs = FileSystem::with_root()
            .set(p("/etc"), FileState::DIR)
            .set(p("/etc/hosts"), FileState::file(Content::intern("hosts")));
        assert!(fs.is_dir(p("/etc")));
        assert!(fs.is_file(p("/etc/hosts")));
        assert!(fs.not_exists(p("/usr")));
        assert!(!fs.is_empty_dir(p("/etc")));
        assert!(!fs.is_empty_dir(p("/etc/hosts")));
    }

    #[test]
    fn empty_dir_detection() {
        let fs = FileSystem::with_root().set(p("/tmp"), FileState::DIR);
        assert!(fs.is_empty_dir(p("/tmp")));
        let fs2 = fs.set(p("/tmp/x"), FileState::DIR);
        assert!(!fs2.is_empty_dir(p("/tmp")));
        // A grandchild alone does not affect emptiness of the grandparent's
        // *immediate* children check, but /tmp still has child /tmp/x.
        assert!(fs2.is_empty_dir(p("/tmp/x")));
    }

    #[test]
    fn restrict_drops_other_paths() {
        let fs = FileSystem::with_root()
            .set(p("/a"), FileState::DIR)
            .set(p("/b"), FileState::DIR);
        let keep: std::collections::BTreeSet<FsPath> = [p("/a")].into_iter().collect();
        let r = fs.restrict(&keep);
        assert_eq!(r.len(), 1);
        assert!(r.is_dir(p("/a")));
        assert!(r.not_exists(p("/b")));
    }

    #[test]
    fn display_contains_entries() {
        let fs = FileSystem::with_root();
        assert!(fs.to_string().contains("/ = dir"));
    }

    #[test]
    fn meta_defaults_to_unmanaged_and_compares() {
        let fs = FileSystem::with_root().set(p("/f"), FileState::file(Content::intern("x")));
        assert!(fs.meta(p("/f")).unwrap().is_unmanaged());
        let mut chowned = fs.clone();
        assert!(chowned.set_meta_field(p("/f"), MetaField::Owner, Content::intern("root")));
        assert_ne!(fs, chowned, "managed metadata is observable");
        assert!(!chowned.set_meta_field(p("/missing"), MetaField::Owner, Content::intern("x")));
    }

    #[test]
    fn display_shows_managed_meta() {
        let fs = FileSystem::with_root().set(
            p("/d"),
            FileState::Dir(Meta::UNMANAGED.with(MetaField::Mode, Content::intern("0755"))),
        );
        assert!(fs.to_string().contains("dir [mode=0755]"), "{fs}");
    }
}
