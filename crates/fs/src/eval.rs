//! The concrete big-step semantics of FS (paper fig. 5).
//!
//! This evaluator is the ground truth that the symbolic encoder in
//! `rehearsal-core` must agree with; property tests enforce the agreement.

use crate::ast::{Expr, ExprNode, Pred, PredNode};
use crate::state::{FileState, FileSystem};
use std::fmt;

/// The error outcome `err` of an FS program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExecError;

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fs program halted with err")
    }
}

impl std::error::Error for ExecError {}

/// Evaluates a predicate on a filesystem.
pub fn eval_pred(pred: Pred, fs: &FileSystem) -> bool {
    match pred.node() {
        PredNode::True => true,
        PredNode::False => false,
        PredNode::DoesNotExist(p) => fs.not_exists(p),
        PredNode::IsFile(p) => fs.is_file(p),
        PredNode::IsDir(p) => fs.is_dir(p),
        PredNode::IsEmptyDir(p) => fs.is_empty_dir(p),
        PredNode::And(a, b) => eval_pred(a, fs) && eval_pred(b, fs),
        PredNode::Or(a, b) => eval_pred(a, fs) || eval_pred(b, fs),
        PredNode::Not(a) => !eval_pred(a, fs),
    }
}

/// Evaluates an expression on a filesystem, producing either a new
/// filesystem or [`ExecError`] (the paper's `err`).
///
/// # Errors
///
/// Returns [`ExecError`] exactly when the paper's semantics step to `err`:
/// preconditions of `mkdir`/`creat`/`rm`/`cp` are violated or `err` is
/// reached.
///
/// # Examples
///
/// ```
/// use rehearsal_fs::{eval, Expr, FileSystem, FsPath};
/// let a = FsPath::parse("/a")?;
/// let fs = FileSystem::with_root();
/// let fs2 = eval(Expr::mkdir(a), &fs).expect("root exists");
/// assert!(fs2.is_dir(a));
/// assert!(eval(Expr::mkdir(a), &fs2).is_err(), "a exists now");
/// # Ok::<(), rehearsal_fs::ParsePathError>(())
/// ```
pub fn eval(expr: Expr, fs: &FileSystem) -> Result<FileSystem, ExecError> {
    match expr.node() {
        ExprNode::Skip => Ok(fs.clone()),
        ExprNode::Error => Err(ExecError),
        ExprNode::Mkdir(p) => {
            let parent = p.parent().ok_or(ExecError)?;
            if fs.is_dir(parent) && fs.not_exists(p) {
                Ok(fs.clone().set(p, FileState::Dir))
            } else {
                Err(ExecError)
            }
        }
        ExprNode::CreateFile(p, content) => {
            let parent = p.parent().ok_or(ExecError)?;
            if fs.is_dir(parent) && fs.not_exists(p) {
                Ok(fs.clone().set(p, FileState::File(content)))
            } else {
                Err(ExecError)
            }
        }
        ExprNode::Rm(p) => {
            if fs.is_file(p) || fs.is_empty_dir(p) {
                let mut out = fs.clone();
                out.remove(p);
                Ok(out)
            } else {
                Err(ExecError)
            }
        }
        ExprNode::Cp(src, dst) => {
            let dst_parent = dst.parent().ok_or(ExecError)?;
            match fs.get(src) {
                Some(FileState::File(content)) if fs.not_exists(dst) && fs.is_dir(dst_parent) => {
                    Ok(fs.clone().set(dst, FileState::File(content)))
                }
                _ => Err(ExecError),
            }
        }
        ExprNode::Seq(a, b) => {
            let mid = eval(a, fs)?;
            eval(b, &mid)
        }
        ExprNode::If(pred, then_, else_) => {
            if eval_pred(pred, fs) {
                eval(then_, fs)
            } else {
                eval(else_, fs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{Content, FsPath};

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn c(s: &str) -> Content {
        Content::intern(s)
    }

    #[test]
    fn skip_is_identity() {
        let fs = FileSystem::with_root();
        assert_eq!(eval(Expr::SKIP, &fs).unwrap(), fs);
    }

    #[test]
    fn error_halts() {
        assert!(eval(Expr::ERROR, &FileSystem::with_root()).is_err());
    }

    #[test]
    fn mkdir_requires_parent_dir() {
        let fs = FileSystem::with_root();
        assert!(eval(Expr::mkdir(p("/a/b")), &fs).is_err(), "no /a yet");
        let fs2 = eval(Expr::mkdir(p("/a")), &fs).unwrap();
        let fs3 = eval(Expr::mkdir(p("/a/b")), &fs2).unwrap();
        assert!(fs3.is_dir(p("/a/b")));
    }

    #[test]
    fn mkdir_rejects_existing() {
        let fs = FileSystem::with_root().set(p("/a"), FileState::File(c("x")));
        assert!(eval(Expr::mkdir(p("/a")), &fs).is_err());
    }

    #[test]
    fn mkdir_root_errors() {
        assert!(eval(Expr::mkdir(FsPath::root()), &FileSystem::new()).is_err());
    }

    #[test]
    fn creat_writes_content() {
        let fs = FileSystem::with_root();
        let e = Expr::create_file(p("/f"), c("hello"));
        let fs2 = eval(e, &fs).unwrap();
        assert_eq!(fs2.get(p("/f")), Some(FileState::File(c("hello"))));
        assert!(eval(e, &fs2).is_err(), "creat on existing path errors");
    }

    #[test]
    fn rm_file_and_empty_dir() {
        let fs = FileSystem::with_root()
            .set(p("/f"), FileState::File(c("x")))
            .set(p("/d"), FileState::Dir)
            .set(p("/d2"), FileState::Dir)
            .set(p("/d2/inner"), FileState::Dir);
        assert!(eval(Expr::rm(p("/f")), &fs).unwrap().not_exists(p("/f")));
        assert!(eval(Expr::rm(p("/d")), &fs).unwrap().not_exists(p("/d")));
        assert!(eval(Expr::rm(p("/d2")), &fs).is_err(), "non-empty dir");
        assert!(eval(Expr::rm(p("/missing")), &fs).is_err());
    }

    #[test]
    fn cp_copies_content() {
        let fs = FileSystem::with_root().set(p("/src"), FileState::File(c("data")));
        let fs2 = eval(Expr::cp(p("/src"), p("/dst")), &fs).unwrap();
        assert_eq!(fs2.get(p("/dst")), Some(FileState::File(c("data"))));
        // Copy onto existing destination errors.
        assert!(eval(Expr::cp(p("/src"), p("/dst")), &fs2).is_err());
        // Copy from a directory errors.
        let fs3 = FileSystem::with_root().set(p("/srcdir"), FileState::Dir);
        assert!(eval(Expr::cp(p("/srcdir"), p("/y")), &fs3).is_err());
    }

    #[test]
    fn seq_threads_state_and_short_circuits() {
        let fs = FileSystem::with_root();
        let e = Expr::mkdir(p("/a")).seq(Expr::mkdir(p("/a/b")));
        assert!(eval(e, &fs).unwrap().is_dir(p("/a/b")));
        let bad = Expr::ERROR.seq(Expr::mkdir(p("/a")));
        assert!(eval(bad, &fs).is_err());
    }

    #[test]
    fn conditional_branches() {
        let fs = FileSystem::with_root();
        let e = Expr::if_(Pred::is_dir(p("/a")), Expr::SKIP, Expr::mkdir(p("/a")));
        let fs2 = eval(e, &fs).unwrap();
        assert!(fs2.is_dir(p("/a")));
        // Second run takes the other branch; state unchanged.
        assert_eq!(eval(e, &fs2).unwrap(), fs2);
    }

    #[test]
    fn paper_example_copy_then_delete_is_not_idempotent() {
        // file{"/dst": source => "/src"}; file{"/src": ensure => absent}
        let fs = FileSystem::with_root().set(p("/src"), FileState::File(c("s")));
        let e = Expr::cp(p("/src"), p("/dst")).seq(Expr::rm(p("/src")));
        let once = eval(e, &fs).unwrap();
        assert!(once.is_file(p("/dst")) && once.not_exists(p("/src")));
        assert!(eval(e, &once).is_err(), "second run fails: /src is gone");
    }

    #[test]
    fn emptydir_pred_sees_unrelated_children() {
        let fs = FileSystem::with_root().set(p("/d"), FileState::Dir);
        assert!(eval_pred(Pred::is_empty_dir(p("/d")), &fs));
        let fs2 = fs.set(p("/d/child"), FileState::File(c("x")));
        assert!(!eval_pred(Pred::is_empty_dir(p("/d")), &fs2));
    }

    #[test]
    fn boolean_connectives() {
        let fs = FileSystem::with_root().set(p("/f"), FileState::File(c("x")));
        let pr = Pred::is_file(p("/f")).and(Pred::is_dir(FsPath::root()));
        assert!(eval_pred(pr, &fs));
        let pr2 = Pred::is_dir(p("/f")).or(Pred::is_file(p("/f")));
        assert!(eval_pred(pr2, &fs));
        assert!(!eval_pred(Pred::is_file(p("/f")).not(), &fs));
    }
}
