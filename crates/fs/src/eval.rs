//! The concrete big-step semantics of FS (paper fig. 5).
//!
//! This evaluator is the ground truth that the symbolic encoder in
//! `rehearsal-core` must agree with; property tests enforce the agreement.

use crate::ast::{Expr, ExprNode, Pred, PredNode};
use crate::meta::MetaValue;
use crate::state::{FileState, FileSystem};
use std::fmt;

/// The error outcome `err` of an FS program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExecError;

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fs program halted with err")
    }
}

impl std::error::Error for ExecError {}

/// Evaluates a predicate on a filesystem.
pub fn eval_pred(pred: Pred, fs: &FileSystem) -> bool {
    match pred.node() {
        PredNode::True => true,
        PredNode::False => false,
        PredNode::DoesNotExist(p) => fs.not_exists(p),
        PredNode::IsFile(p) => fs.is_file(p),
        PredNode::IsDir(p) => fs.is_dir(p),
        PredNode::IsEmptyDir(p) => fs.is_empty_dir(p),
        PredNode::MetaIs(p, field, v) => fs
            .meta(p)
            .map(|m| m.get(field) == MetaValue::Set(v))
            .unwrap_or(false),
        PredNode::And(a, b) => eval_pred(a, fs) && eval_pred(b, fs),
        PredNode::Or(a, b) => eval_pred(a, fs) || eval_pred(b, fs),
        PredNode::Not(a) => !eval_pred(a, fs),
    }
}

/// Evaluates an expression on a filesystem, producing either a new
/// filesystem or [`ExecError`] (the paper's `err`).
///
/// # Errors
///
/// Returns [`ExecError`] exactly when the paper's semantics step to `err`:
/// preconditions of `mkdir`/`creat`/`rm`/`cp` are violated or `err` is
/// reached.
///
/// # Examples
///
/// ```
/// use rehearsal_fs::{eval, Expr, FileSystem, FsPath};
/// let a = FsPath::parse("/a")?;
/// let fs = FileSystem::with_root();
/// let fs2 = eval(Expr::mkdir(a), &fs).expect("root exists");
/// assert!(fs2.is_dir(a));
/// assert!(eval(Expr::mkdir(a), &fs2).is_err(), "a exists now");
/// # Ok::<(), rehearsal_fs::ParsePathError>(())
/// ```
pub fn eval(expr: Expr, fs: &FileSystem) -> Result<FileSystem, ExecError> {
    match expr.node() {
        ExprNode::Skip => Ok(fs.clone()),
        ExprNode::Error => Err(ExecError),
        ExprNode::Mkdir(p) => {
            let parent = p.parent().ok_or(ExecError)?;
            if fs.is_dir(parent) && fs.not_exists(p) {
                Ok(fs.clone().set(p, FileState::DIR))
            } else {
                Err(ExecError)
            }
        }
        ExprNode::CreateFile(p, content) => {
            let parent = p.parent().ok_or(ExecError)?;
            if fs.is_dir(parent) && fs.not_exists(p) {
                Ok(fs.clone().set(p, FileState::file(content)))
            } else {
                Err(ExecError)
            }
        }
        ExprNode::Rm(p) => {
            if fs.is_file(p) || fs.is_empty_dir(p) {
                let mut out = fs.clone();
                out.remove(p);
                Ok(out)
            } else {
                Err(ExecError)
            }
        }
        ExprNode::Cp(src, dst) => {
            let dst_parent = dst.parent().ok_or(ExecError)?;
            match fs.get(src) {
                Some(FileState::File(content, _))
                    if fs.not_exists(dst) && fs.is_dir(dst_parent) =>
                {
                    // A fresh copy starts with unmanaged metadata, like any
                    // other newly created path.
                    Ok(fs.clone().set(dst, FileState::file(content)))
                }
                _ => Err(ExecError),
            }
        }
        ExprNode::ChMeta(p, field, v) => {
            let mut out = fs.clone();
            if out.set_meta_field(p, field, v) {
                Ok(out)
            } else {
                Err(ExecError)
            }
        }
        ExprNode::Seq(a, b) => {
            let mid = eval(a, fs)?;
            eval(b, &mid)
        }
        ExprNode::If(pred, then_, else_) => {
            if eval_pred(pred, fs) {
                eval(then_, fs)
            } else {
                eval(else_, fs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{Content, FsPath};

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn c(s: &str) -> Content {
        Content::intern(s)
    }

    #[test]
    fn skip_is_identity() {
        let fs = FileSystem::with_root();
        assert_eq!(eval(Expr::SKIP, &fs).unwrap(), fs);
    }

    #[test]
    fn error_halts() {
        assert!(eval(Expr::ERROR, &FileSystem::with_root()).is_err());
    }

    #[test]
    fn mkdir_requires_parent_dir() {
        let fs = FileSystem::with_root();
        assert!(eval(Expr::mkdir(p("/a/b")), &fs).is_err(), "no /a yet");
        let fs2 = eval(Expr::mkdir(p("/a")), &fs).unwrap();
        let fs3 = eval(Expr::mkdir(p("/a/b")), &fs2).unwrap();
        assert!(fs3.is_dir(p("/a/b")));
    }

    #[test]
    fn mkdir_rejects_existing() {
        let fs = FileSystem::with_root().set(p("/a"), FileState::file(c("x")));
        assert!(eval(Expr::mkdir(p("/a")), &fs).is_err());
    }

    #[test]
    fn mkdir_root_errors() {
        assert!(eval(Expr::mkdir(FsPath::root()), &FileSystem::new()).is_err());
    }

    #[test]
    fn creat_writes_content() {
        let fs = FileSystem::with_root();
        let e = Expr::create_file(p("/f"), c("hello"));
        let fs2 = eval(e, &fs).unwrap();
        assert_eq!(fs2.get(p("/f")), Some(FileState::file(c("hello"))));
        assert!(eval(e, &fs2).is_err(), "creat on existing path errors");
    }

    #[test]
    fn rm_file_and_empty_dir() {
        let fs = FileSystem::with_root()
            .set(p("/f"), FileState::file(c("x")))
            .set(p("/d"), FileState::DIR)
            .set(p("/d2"), FileState::DIR)
            .set(p("/d2/inner"), FileState::DIR);
        assert!(eval(Expr::rm(p("/f")), &fs).unwrap().not_exists(p("/f")));
        assert!(eval(Expr::rm(p("/d")), &fs).unwrap().not_exists(p("/d")));
        assert!(eval(Expr::rm(p("/d2")), &fs).is_err(), "non-empty dir");
        assert!(eval(Expr::rm(p("/missing")), &fs).is_err());
    }

    #[test]
    fn cp_copies_content() {
        let fs = FileSystem::with_root().set(p("/src"), FileState::file(c("data")));
        let fs2 = eval(Expr::cp(p("/src"), p("/dst")), &fs).unwrap();
        assert_eq!(fs2.get(p("/dst")), Some(FileState::file(c("data"))));
        // Copy onto existing destination errors.
        assert!(eval(Expr::cp(p("/src"), p("/dst")), &fs2).is_err());
        // Copy from a directory errors.
        let fs3 = FileSystem::with_root().set(p("/srcdir"), FileState::DIR);
        assert!(eval(Expr::cp(p("/srcdir"), p("/y")), &fs3).is_err());
    }

    #[test]
    fn seq_threads_state_and_short_circuits() {
        let fs = FileSystem::with_root();
        let e = Expr::mkdir(p("/a")).seq(Expr::mkdir(p("/a/b")));
        assert!(eval(e, &fs).unwrap().is_dir(p("/a/b")));
        let bad = Expr::ERROR.seq(Expr::mkdir(p("/a")));
        assert!(eval(bad, &fs).is_err());
    }

    #[test]
    fn conditional_branches() {
        let fs = FileSystem::with_root();
        let e = Expr::if_(Pred::is_dir(p("/a")), Expr::SKIP, Expr::mkdir(p("/a")));
        let fs2 = eval(e, &fs).unwrap();
        assert!(fs2.is_dir(p("/a")));
        // Second run takes the other branch; state unchanged.
        assert_eq!(eval(e, &fs2).unwrap(), fs2);
    }

    #[test]
    fn paper_example_copy_then_delete_is_not_idempotent() {
        // file{"/dst": source => "/src"}; file{"/src": ensure => absent}
        let fs = FileSystem::with_root().set(p("/src"), FileState::file(c("s")));
        let e = Expr::cp(p("/src"), p("/dst")).seq(Expr::rm(p("/src")));
        let once = eval(e, &fs).unwrap();
        assert!(once.is_file(p("/dst")) && once.not_exists(p("/src")));
        assert!(eval(e, &once).is_err(), "second run fails: /src is gone");
    }

    #[test]
    fn emptydir_pred_sees_unrelated_children() {
        let fs = FileSystem::with_root().set(p("/d"), FileState::DIR);
        assert!(eval_pred(Pred::is_empty_dir(p("/d")), &fs));
        let fs2 = fs.set(p("/d/child"), FileState::file(c("x")));
        assert!(!eval_pred(Pred::is_empty_dir(p("/d")), &fs2));
    }

    #[test]
    fn chmeta_requires_existence_and_is_idempotent() {
        use crate::meta::MetaValue;
        let f = p("/perm/f");
        let fs = FileSystem::with_root()
            .set(p("/perm"), FileState::DIR)
            .set(f, FileState::file(c("x")));
        // chown/chgrp/chmod on a missing path error.
        assert!(eval(Expr::chown(p("/missing"), c("root")), &fs).is_err());
        // On an existing file they manage the field and are idempotent.
        let owned = eval(Expr::chown(f, c("root")), &fs).unwrap();
        assert_eq!(owned.meta(f).unwrap().owner, MetaValue::Set(c("root")));
        assert_eq!(eval(Expr::chown(f, c("root")), &owned).unwrap(), owned);
        // Directories take metadata too.
        let dmode = eval(Expr::chmod(p("/perm"), c("0755")), &fs).unwrap();
        assert_eq!(
            dmode.meta(p("/perm")).unwrap().mode,
            MetaValue::Set(c("0755"))
        );
        // Fields are independent.
        let both = eval(Expr::chgrp(f, c("www")), &owned).unwrap();
        let m = both.meta(f).unwrap();
        assert_eq!(m.owner, MetaValue::Set(c("root")));
        assert_eq!(m.group, MetaValue::Set(c("www")));
        assert_eq!(m.mode, MetaValue::Unmanaged);
    }

    #[test]
    fn meta_is_observes_managed_fields_only() {
        use crate::meta::MetaField;
        let f = p("/mi/f");
        let fs = FileSystem::with_root()
            .set(p("/mi"), FileState::DIR)
            .set(f, FileState::file(c("x")));
        let is_root = Pred::meta_is(f, MetaField::Owner, c("root"));
        assert!(!eval_pred(is_root, &fs), "unmanaged owner is not 'root'");
        let owned = eval(Expr::chown(f, c("root")), &fs).unwrap();
        assert!(eval_pred(is_root, &owned));
        assert!(!eval_pred(
            Pred::meta_is(f, MetaField::Owner, c("carol")),
            &owned
        ));
        // Absent paths satisfy no meta_is.
        assert!(!eval_pred(
            Pred::meta_is(p("/mi/gone"), MetaField::Owner, c("root")),
            &owned
        ));
    }

    #[test]
    fn creation_resets_metadata_to_unmanaged() {
        let f = p("/reset/f");
        let fs = FileSystem::with_root().set(p("/reset"), FileState::DIR);
        let made = eval(Expr::create_file(f, c("v")), &fs).unwrap();
        let owned = eval(Expr::chown(f, c("root")), &made).unwrap();
        // rm then creat: the fresh file starts unmanaged again.
        let recreated = eval(Expr::rm(f).seq(Expr::create_file(f, c("v"))), &owned).unwrap();
        assert!(recreated.meta(f).unwrap().is_unmanaged());
        assert_eq!(recreated, made);
        // cp does not copy the source's metadata.
        let copied = eval(Expr::cp(f, p("/reset/g")), &owned).unwrap();
        assert!(copied.meta(p("/reset/g")).unwrap().is_unmanaged());
    }

    #[test]
    fn chmod_order_matters_on_same_path() {
        let f = p("/order/f");
        let fs = FileSystem::with_root()
            .set(p("/order"), FileState::DIR)
            .set(f, FileState::file(c("x")));
        let a = eval(
            Expr::chmod(f, c("0644")).seq(Expr::chmod(f, c("0755"))),
            &fs,
        )
        .unwrap();
        let b = eval(
            Expr::chmod(f, c("0755")).seq(Expr::chmod(f, c("0644"))),
            &fs,
        )
        .unwrap();
        assert_ne!(a, b, "last chmod wins — orders are observable");
    }

    #[test]
    fn boolean_connectives() {
        let fs = FileSystem::with_root().set(p("/f"), FileState::file(c("x")));
        let pr = Pred::is_file(p("/f")).and(Pred::is_dir(FsPath::root()));
        assert!(eval_pred(pr, &fs));
        let pr2 = Pred::is_dir(p("/f")).or(Pred::is_file(p("/f")));
        assert!(eval_pred(pr2, &fs));
        assert!(!eval_pred(Pred::is_file(p("/f")).not(), &fs));
    }
}
